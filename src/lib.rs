//! Umbrella crate for the AERO reproduction workspace.
//!
//! Re-exports the public crates so integration tests and examples at the
//! repository root can reach every subsystem through one dependency.

pub use aero_baselines as baselines;
pub use aero_core as core;
pub use aero_datagen as datagen;
pub use aero_eval as eval;
pub use aero_evt as evt;
pub use aero_nn as nn;
pub use aero_tensor as tensor;
pub use aero_timeseries as timeseries;
