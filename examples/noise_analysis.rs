//! Concurrent-noise analysis: inspect the window-wise graphs AERO learns
//! (paper Fig. 8) and how the two stages treat noise vs. true anomalies
//! (paper Fig. 9), on a small synthetic sky.
//!
//! Run with: `cargo run --release --example noise_analysis`

use aero_repro::core::{Aero, AeroConfig, Detector};
use aero_repro::datagen::SyntheticConfig;

fn main() {
    let dataset = SyntheticConfig::tiny(77).build();
    let mut config = AeroConfig::tiny();
    config.max_epochs = 8;
    config.train_stride = 10;
    config.lr = 2e-3;
    let mut aero = Aero::new(config).expect("config");
    aero.fit(&dataset.train).expect("fit");

    // Pick a window centred on a noise event, if any; otherwise the last.
    let w = aero.config().window;
    let end = dataset
        .test_noise
        .segments()
        .first()
        .map(|s| (s.start + s.len() / 2).max(w).min(dataset.test.len() - 1))
        .unwrap_or(dataset.test.len() - 1);

    let adj = aero.window_graph(&dataset.test, end).expect("graph");
    println!("window-wise adjacency at test index {end} (cosine of stage-1 errors):");
    for m in 0..adj.rows() {
        let row: Vec<String> = (0..adj.cols())
            .map(|k| format!("{:+.2}", adj.get(m, k)))
            .collect();
        println!("  star {m:2}: [{}]", row.join(" "));
    }

    // Strongest off-diagonal edge → likely a concurrently-affected pair.
    let mut best = (0, 1, f32::MIN);
    for m in 0..adj.rows() {
        for k in 0..adj.cols() {
            if m != k && adj.get(m, k) > best.2 {
                best = (m, k, adj.get(m, k));
            }
        }
    }
    println!(
        "\nstrongest error-pattern link: stars {} and {} (similarity {:+.3})",
        best.0, best.1, best.2
    );
    let both_noisy = dataset.test_noise.get(best.0, end) && dataset.test_noise.get(best.1, end);
    println!("both under concurrent noise at this window: {both_noisy}");

    let (e1, e2) = aero.stage_scores(&dataset.test).expect("scores");
    let warm = aero.warmup();
    let mean = |m: &aero_repro::tensor::Matrix, v: usize| -> f32 {
        let row = &m.row(v)[warm..];
        row.iter().sum::<f32>() / row.len() as f32
    };
    println!("\nper-star mean error, stage 1 vs final (noise-affected stars should drop):");
    for v in 0..dataset.num_variates() {
        let noisy = dataset.test_noise.row(v).iter().any(|&b| b);
        println!(
            "  star {v:2}{} stage1 {:.4} → final {:.4}",
            if noisy { " (noise)" } else { "        " },
            mean(&e1, v),
            mean(&e2, v)
        );
    }
}
