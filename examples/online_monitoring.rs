//! Online monitoring: the operational mode of Algorithm 2 — frames arrive
//! one at a time, each star gets an immediate verdict, and flagged points
//! accumulate into a ranked event catalog for the morning review.
//!
//! Run with: `cargo run --release --example online_monitoring`

use aero_repro::core::online::OnlineAero;
use aero_repro::core::{build_catalog, render_catalog, Aero, AeroConfig, Detector};
use aero_repro::datagen::SyntheticConfig;
use aero_repro::evt::PotConfig;
use aero_repro::tensor::Matrix;
use aero_repro::timeseries::LabelGrid;

fn main() {
    let dataset = SyntheticConfig::tiny(314).build();
    let n = dataset.num_variates();

    // Offline phase: train on the calibration night.
    let mut config = AeroConfig::tiny();
    config.max_epochs = 8;
    config.train_stride = 10;
    config.lr = 2e-3;
    let mut model = Aero::new(config).expect("config");
    model.fit(&dataset.train).expect("fit");
    let mut online =
        OnlineAero::new(model, &dataset.train, PotConfig { level: 0.95, q: 1e-2 }).expect("wrap online");
    println!(
        "online detector armed: threshold {:.4} ({} calibration peaks)",
        online.threshold().threshold,
        online.threshold().peaks
    );

    // Night shift: stream every test frame.
    let base = *dataset.train.timestamps().last().unwrap() + 1.0;
    let mut flags = LabelGrid::new(n, dataset.test.len());
    let mut scores = Matrix::zeros(n, dataset.test.len());
    let mut alerts = 0usize;
    for t in 0..dataset.test.len() {
        let frame: Vec<f32> = (0..n).map(|v| dataset.test.get(v, t)).collect();
        let verdict = online.push(base + t as f64, &frame).expect("frame");
        for (v, s) in verdict.stars.iter().enumerate() {
            scores.set(v, t, s.score);
            if s.anomalous {
                flags.set(v, t, true);
                alerts += 1;
            }
        }
        if verdict.any_anomalous() && alerts <= 5 {
            println!("frame {t}: ALERT on stars {:?}", verdict.flagged());
        }
    }
    println!("\nnight summary: {alerts} flagged points over {} frames", dataset.test.len());
    println!("pipeline health: {}", online.health());

    // Morning review: the ranked event catalog.
    let catalog = build_catalog(&flags, &scores, 3);
    println!("\n{}", render_catalog(&catalog, dataset.test.timestamps(), 10));

    // Compare against ground truth for the demo.
    let truth = dataset.test_labels.segments();
    println!("ground truth had {} true event segments:", truth.len());
    for s in truth {
        println!("  star {} at [{}, {}]", s.variate, s.start, s.end);
    }
}
