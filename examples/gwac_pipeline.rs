//! GWAC pipeline: the workload the paper's introduction motivates — a night
//! of wide-angle camera observations with atmospheric interference, scanned
//! for rare celestial events.
//!
//! Builds a simulated Astroset (irregular sampling, field-wide cloud/dawn
//! noise, two rare flare events), trains AERO, runs online detection, and
//! reports which ground-truth events were caught and how many false alarms
//! the noise caused — with and without the concurrent-noise module.
//!
//! Run with: `cargo run --release --example gwac_pipeline`

use aero_repro::core::{run_detection, Aero, AeroConfig};
use aero_repro::datagen::AstrosetConfig;
use aero_repro::eval::{point_adjust, threshold_scores};
use aero_repro::evt::PotConfig;

fn main() {
    let mut cfg = AstrosetConfig::tiny(2024);
    cfg.train_len = 700;
    cfg.test_len = 500;
    cfg.variates = 12;
    let dataset = cfg.build();
    println!(
        "night: {} stars, {} calibration frames, {} survey frames",
        dataset.num_variates(),
        dataset.train.len(),
        dataset.test.len()
    );
    println!(
        "ground truth: {} celestial events, {:.1}% of points under atmospheric noise",
        dataset.test_labels.segments().len(),
        dataset.test_noise.fraction() * 100.0
    );

    let mut model_cfg = AeroConfig::tiny();
    model_cfg.max_epochs = 10;
    model_cfg.train_stride = 10;
    model_cfg.lr = 2e-3;

    // Full AERO.
    let mut aero = Aero::new(model_cfg.clone()).expect("config");
    let outcome = run_detection(&mut aero, &dataset, PotConfig { level: 0.95, q: 1e-2 }).expect("pipeline");

    // Ablated AERO without the noise module, for contrast.
    let mut ablated_cfg = model_cfg;
    ablated_cfg.use_noise_module = false;
    let mut ablated = Aero::new(ablated_cfg).expect("config");
    let ablated_outcome =
        run_detection(&mut ablated, &dataset, PotConfig { level: 0.95, q: 1e-2 }).expect("pipeline");

    for (label, out) in [("AERO (full)", &outcome), ("w/o noise module", &ablated_outcome)] {
        let pred = threshold_scores(&out.scores, out.threshold.threshold);
        let adjusted = point_adjust(&pred, &dataset.test_labels);
        let caught = dataset
            .test_labels
            .segments()
            .iter()
            .filter(|s| (s.start..=s.end).any(|t| adjusted.get(s.variate, t)))
            .count();
        println!(
            "\n{label}: caught {caught}/{} events | precision {:.1}% recall {:.1}% F1 {:.1}%",
            dataset.test_labels.segments().len(),
            out.metrics.precision * 100.0,
            out.metrics.recall * 100.0,
            out.metrics.f1 * 100.0
        );
        println!(
            "  false alarms: {} points flagged outside true events",
            out.metrics.fp
        );
    }
}
