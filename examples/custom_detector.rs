//! Extending the library: implement your own [`Detector`] and run it
//! through the same POT + point-adjust pipeline as AERO and the baselines.
//!
//! The example detector is a robust z-score ("how many MADs from the
//! training median is this point?") — simple, fast, and a sensible first
//! baseline on any new dataset.
//!
//! Run with: `cargo run --release --example custom_detector`

use aero_repro::core::{run_detection, Detector, DetectorError, DetectorResult};
use aero_repro::datagen::SyntheticConfig;
use aero_repro::evt::PotConfig;
use aero_repro::tensor::Matrix;
use aero_repro::timeseries::MultivariateSeries;

/// Robust z-score detector: per-variate median and MAD from training.
struct RobustZScore {
    medians: Vec<f32>,
    mads: Vec<f32>,
}

impl RobustZScore {
    fn new() -> Self {
        Self { medians: Vec::new(), mads: Vec::new() }
    }

    fn median(values: &mut [f32]) -> f32 {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values[values.len() / 2]
    }
}

impl Detector for RobustZScore {
    fn name(&self) -> String {
        "RobustZ".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.medians.clear();
        self.mads.clear();
        for v in 0..train.num_variates() {
            let mut vals = train.values().row(v).to_vec();
            let med = Self::median(&mut vals);
            let mut devs: Vec<f32> = vals.iter().map(|x| (x - med).abs()).collect();
            let mad = Self::median(&mut devs).max(1e-6);
            self.medians.push(med);
            self.mads.push(mad);
        }
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if self.medians.len() != series.num_variates() {
            return Err(DetectorError::Invalid("variate count mismatch".into()));
        }
        let mut out = Matrix::zeros(series.num_variates(), series.len());
        for v in 0..series.num_variates() {
            let (med, mad) = (self.medians[v], self.mads[v]);
            for (dst, &x) in out.row_mut(v).iter_mut().zip(series.values().row(v)) {
                *dst = (x - med).abs() / mad;
            }
        }
        Ok(out)
    }
}

fn main() {
    let dataset = SyntheticConfig::tiny(99).build();
    let mut detector = RobustZScore::new();
    let out = run_detection(&mut detector, &dataset, PotConfig { level: 0.95, q: 1e-2 }).expect("pipeline");
    println!(
        "{}: precision {:.1}%  recall {:.1}%  F1 {:.1}%  (threshold {:.3})",
        detector.name(),
        out.metrics.precision * 100.0,
        out.metrics.recall * 100.0,
        out.metrics.f1 * 100.0,
        out.threshold.threshold
    );
    println!("\nThat is the whole integration: implement `fit` and `score`,");
    println!("and the shared pipeline handles normalization-free thresholding");
    println!("(POT), point-adjusted metrics, and the experiment harnesses.");
}
