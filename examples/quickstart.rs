//! Quickstart: generate a small astronomical dataset, train AERO, and
//! detect anomalies with the paper's POT + point-adjust protocol.
//!
//! Run with: `cargo run --release --example quickstart`

use aero_repro::core::{run_detection, Aero, AeroConfig};
use aero_repro::datagen::SyntheticConfig;
use aero_repro::evt::PotConfig;

fn main() {
    // 1. A small synthetic dataset: 8 stars, concurrent noise on 6 of them,
    //    2 injected celestial events in the test split.
    let dataset = SyntheticConfig::tiny(42).build();
    println!(
        "dataset: {} stars, {} train / {} test points, {} anomaly segments",
        dataset.num_variates(),
        dataset.train.len(),
        dataset.test.len(),
        dataset.test_labels.segments().len()
    );

    // 2. AERO with a small-but-sufficient configuration (use
    //    AeroConfig::paper() for the paper's exact hyperparameters).
    let mut config = AeroConfig::tiny();
    config.max_epochs = 10;
    config.train_stride = 10;
    config.lr = 2e-3;
    let mut model = Aero::new(config).expect("valid config");

    // 3. The full protocol: unsupervised training on the nominal split,
    //    POT threshold calibration on training scores, test scoring.
    //    The paper's POT settings (level 0.99, q 1e-3) assume thousands of
    //    calibration points; this demo's tiny split calibrates on a few
    //    hundred, so use a proportionally looser tail.
    let pot = PotConfig { level: 0.95, q: 1e-2 };
    let outcome = run_detection(&mut model, &dataset, pot).expect("detection pipeline");

    println!(
        "stage 1 trained {} epochs (final loss {:.5})",
        model.stage1_history.epochs(),
        model.stage1_history.final_loss().unwrap_or(f32::NAN)
    );
    println!(
        "POT threshold: {:.4} (γ = {:.3}, σ = {:.3}, {} peaks)",
        outcome.threshold.threshold,
        outcome.threshold.gamma,
        outcome.threshold.sigma,
        outcome.threshold.peaks
    );
    println!(
        "precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        outcome.metrics.precision * 100.0,
        outcome.metrics.recall * 100.0,
        outcome.metrics.f1 * 100.0
    );
}
