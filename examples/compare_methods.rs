//! Method comparison on one dataset: AERO against representative baselines
//! from each family (statistical, VAE, Transformer, GNN), with the paper's
//! POT + point-adjust protocol.
//!
//! Run with: `cargo run --release --example compare_methods`

use aero_repro::baselines::{Gdn, NnConfig, SpectralResidual, SpotDetector, TranAd};
use aero_repro::core::{run_detection, Aero, AeroConfig, Detector};
use aero_repro::datagen::SyntheticConfig;
use aero_repro::eval::ResultTable;
use aero_repro::evt::PotConfig;

fn main() {
    let dataset = SyntheticConfig::tiny(2025).build();
    println!(
        "dataset {}: {} stars, {} test points\n",
        dataset.name,
        dataset.num_variates(),
        dataset.test.len()
    );

    let nn = NnConfig::tiny();
    let mut methods: Vec<Box<dyn Detector>> = vec![
        Box::new(SpectralResidual::default()),
        Box::new(SpotDetector::new()),
        Box::new(TranAd::new(nn.clone())),
        Box::new(Gdn::new(nn)),
        Box::new({
            let mut cfg = AeroConfig::tiny();
            cfg.max_epochs = 8;
            cfg.train_stride = 10;
            cfg.lr = 2e-3;
            Aero::new(cfg).expect("config")
        }),
    ];

    let mut table = ResultTable::new();
    for method in methods.iter_mut() {
        let name = method.name();
        match run_detection(method.as_mut(), &dataset, PotConfig { level: 0.95, q: 1e-2 }) {
            Ok(out) => table.push(name, dataset.name.clone(), out.metrics),
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
    println!("{}", table.render());
}
