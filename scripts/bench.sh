#!/usr/bin/env sh
# Reproducible benchmark of the parallel execution substrate and the
# runtime-dispatched kernel layer.
#
# Builds the release binary and emits BENCH_parallel.json at the repo root.
# Every row is a measured wall-clock median, never synthesized:
#   - GEMM kernel ladder: naive vs blocked-scalar vs blocked-SIMD at one
#     thread (separate scalar and simd rows, with the host's CPU features
#     and the dispatch choice recorded alongside), then blocked at N threads
#   - fit / score / end-to-end detect at 1 thread vs N
#   - steady-state heap allocations per streamed OnlineAero::push, with the
#     tensor workspace-pool miss counters (both must read zero)
#   - per-frame streaming push latency with the write-ahead log off /
#     fsync-never / fsync-every-segment, and the degradation-ladder rungs
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_parallel.json
#   scripts/bench.sh --smoke    # tiny sizes, writes a throwaway report
#                               # (tier-1 uses this to keep the harness wired)
# Extra flags (--threads N, --out PATH) pass through to the binary.
set -eu

cd "$(dirname "$0")/.."

SMOKE=0
for arg in "$@"; do
    [ "$arg" = "--smoke" ] && SMOKE=1
done

if [ "$SMOKE" = 1 ]; then
    exec cargo run --release -q -p bench --bin bench_parallel -- \
        --out /tmp/BENCH_parallel_smoke.json "$@"
else
    exec cargo run --release -q -p bench --bin bench_parallel -- "$@"
fi
