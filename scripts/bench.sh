#!/usr/bin/env sh
# Reproducible benchmark of the parallel execution substrate.
#
# Builds the release binary and emits BENCH_parallel.json at the repo root
# (measured wall-clock medians: blocked GEMM vs naive, fit / score /
# end-to-end detect at 1 thread vs N, and per-frame streaming push latency
# with the write-ahead log off / fsync-never / fsync-every-segment).
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_parallel.json
#   scripts/bench.sh --smoke    # tiny sizes, writes a throwaway report
#                               # (tier-1 uses this to keep the harness wired)
# Extra flags (--threads N, --out PATH) pass through to the binary.
set -eu

cd "$(dirname "$0")/.."

SMOKE=0
for arg in "$@"; do
    [ "$arg" = "--smoke" ] && SMOKE=1
done

if [ "$SMOKE" = 1 ]; then
    exec cargo run --release -q -p bench --bin bench_parallel -- \
        --out /tmp/BENCH_parallel_smoke.json "$@"
else
    exec cargo run --release -q -p bench --bin bench_parallel -- "$@"
fi
