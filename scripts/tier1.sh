#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md).
#
# Jobs:
#   1. release build of the whole workspace
#   2. full test suite
#   3. streaming-robustness integration suite (fault injection, degraded
#      input, crash-safe persistence) — explicitly, so a filtered test run
#      can't silently skip it
#   4. crash-recovery chaos suite: kill-and-resume must be bitwise
#      identical to an uninterrupted run; panicking/deadline-blown shards
#      quarantine their star while the rest of the frame keeps streaming
#   5. thread-count determinism: fit + score bitwise identical at 1 vs 4
#      worker threads, plus blocked-GEMM == naive-reference property tests
#   6. kernel equivalence: SIMD backends (AVX2/AVX-512/NEON, whichever the
#      host supports) bitwise identical to the scalar fallback across every
#      dispatched kernel, plus the AERO_FORCE_SCALAR env override
#   7. scalar-fallback pass: the tensor suite re-runs with
#      AERO_FORCE_SCALAR=1 so the scalar dispatch path stays green even on
#      hosts where detection would always pick SIMD
#   8. streaming allocation gate: steady-state OnlineAero::push serves every
#      tensor buffer and graph tape from the workspace pool (zero misses,
#      counting-allocator harness)
#   9. overload smoke: seeded 4x-realtime bursts keep queue depth and the
#      work budget bounded, shed accounting reconciles, suspects are never
#      shed, and the governed verdict stream is bitwise identical across
#      thread counts and WAL kill-resume
#  10. fleet isolation: the shared-nothing shard suite (chaos kill mid-night,
#      bitwise shard resume, WAL identity rejection, deterministic
#      routing/rebalancing) plus a 4-shard CLI burst smoke with one injected
#      shard kill — the killed shard must restart from its own WAL while the
#      other shards keep streaming
#  11. live migration: the WAL-fenced two-phase star-handoff chaos suite
#      (kill -9 at every phase boundary — pre-fence, post-fence, pre-commit,
#      post-commit — followed by --resume must be bitwise identical to an
#      uninterrupted night), plus a 4-shard CLI smoke: --migrate-live with a
#      mid-night simulated crash, then --resume to finish the night, then
#      `aero wal verify` scrubbing every surviving shard directory
#  12. batched equivalence: the batched cross-star Stage-1 path is bitwise
#      identical to the per-star path across star counts, thread counts,
#      kernel backends, and score-mode mixes; the pipelined push emits a
#      verdict stream, WAL bytes, and health bitwise identical to
#      sequential pushes (kill-resume included); plus one governed stream
#      smoke with batching forced on
#  13. resident service: wire-codec adversarial property suite (garbage,
#      torn frames, flipped bits, hostile lengths — typed errors, bounded
#      allocation), then real-process end-to-end runs of `aero serve` +
#      `aero loadgen` over loopback TCP — kill -9 mid-night + --resume must
#      be bitwise identical to an uninterrupted run, seeded wire faults
#      across concurrent tenant connections must never poison the detector,
#      and the status/drain endpoints must answer on the same wire
#  14. quantization equivalence: the opt-in int8 degraded-rung path stays
#      within tolerance of f32 on seeded nights and engages only under a
#      per-thread scope (kernel property suite), the shared-backbone
#      reassembly is bitwise identical to the monolithic model, and with
#      quantization off (the default) all-Full scoring stays bitwise
#      pinned even when the opt-in is armed
#  15. benchmark harness smoke run (keeps scripts/bench.sh wired)
#  16. clippy -D warnings on the full workspace (the streaming modules
#      additionally deny unwrap/expect via their own inner lint attrs)
set -eu

cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace tests"
cargo test -q

echo "==> tier-1: streaming robustness"
cargo test -q -p aero-core --test fault_injection --test persistence_robustness

echo "==> tier-1: crash recovery"
cargo test -q -p aero-core --test crash_recovery

echo "==> tier-1: thread-count determinism"
cargo test -q -p aero-core --test determinism
cargo test -q -p aero-tensor --test gemm_equivalence

echo "==> tier-1: kernel equivalence (SIMD == scalar, bitwise)"
cargo test -q -p aero-tensor --test kernel_equivalence --test force_scalar_env

echo "==> tier-1: scalar-fallback pass (AERO_FORCE_SCALAR=1)"
AERO_FORCE_SCALAR=1 cargo test -q -p aero-tensor

echo "==> tier-1: streaming allocation gate (workspace pool, zero misses)"
cargo test -q -p bench --test alloc_streaming

echo "==> tier-1: overload smoke (burst admission, shedding, ladder)"
cargo test -q -p aero-core --test overload

echo "==> tier-1: fleet isolation (shard chaos, bitwise resume, routing)"
cargo test -q -p aero-core --test fleet
fleet_tmp="$(mktemp -d)"
trap 'rm -rf "$fleet_tmp"' EXIT
cargo run --release -q -p aero-cli --bin aero -- generate \
    --preset tiny --seed 41 --out "$fleet_tmp/data" > /dev/null
cargo run --release -q -p aero-cli --bin aero -- stream \
    --data "$fleet_tmp/data" --shards 4 --burst 41 \
    --wal "$fleet_tmp/wal" --rebalance-every 64 \
    --kill-shard 2 --kill-after 40 --probe-after 4 > /dev/null

echo "==> tier-1: live migration (two-phase handoff chaos + CLI smoke)"
cargo test -q -p aero-core --test migration
cargo run --release -q -p aero-cli --bin aero -- stream \
    --data "$fleet_tmp/data" --shards 4 --burst 23 \
    --wal "$fleet_tmp/wal_migrate" --rebalance-every 48 \
    --kill-after 120 --migrate-live > /dev/null
cargo run --release -q -p aero-cli --bin aero -- stream \
    --data "$fleet_tmp/data" --shards 4 --burst 23 \
    --wal "$fleet_tmp/wal_migrate" --rebalance-every 48 \
    --resume --migrate-live > "$fleet_tmp/migrate_summary.json"
grep -q '"stars_moved"' "$fleet_tmp/migrate_summary.json"
grep -q '"migrations_rolled_back"' "$fleet_tmp/migrate_summary.json"
for shard_dir in "$fleet_tmp"/wal_migrate/shard-*; do
    cargo run --release -q -p aero-cli --bin aero -- \
        wal verify "$shard_dir" > /dev/null
done

echo "==> tier-1: batched equivalence (batched == per-star, pipelined == sequential)"
cargo test -q -p aero-core --test batched --test pipelined
AERO_BATCHED=1 cargo run --release -q -p aero-cli --bin aero -- stream \
    --data "$fleet_tmp/data" --shards 2 --burst 17 \
    --wal "$fleet_tmp/wal_batched" > /dev/null

echo "==> tier-1: resident serve (wire codec + kill -9 resume + wire faults)"
cargo test -q -p aero-core --test wire_codec
cargo test -q -p aero-cli --test serve

echo "==> tier-1: quantization equivalence (int8 rung tolerance, backbone reassembly bitwise)"
cargo test -q -p aero-tensor --test quant_equivalence
cargo test -q -p aero-core --test backbone

echo "==> tier-1: benchmark harness smoke"
sh scripts/bench.sh --smoke > /dev/null

echo "==> tier-1: lint gate"
cargo clippy -q --workspace -- -D warnings

echo "==> tier-1: OK"
