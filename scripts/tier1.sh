#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md).
#
# Jobs:
#   1. release build of the whole workspace
#   2. full test suite
#   3. streaming-robustness integration suite (fault injection, degraded
#      input, crash-safe persistence) — explicitly, so a filtered test run
#      can't silently skip it
#   4. clippy -D warnings on the streaming/robustness crates
set -eu

cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace tests"
cargo test -q

echo "==> tier-1: streaming robustness"
cargo test -q -p aero-core --test fault_injection --test persistence_robustness

echo "==> tier-1: lint gate"
cargo clippy -q -p aero-core -p aero-nn -p aero-evt -p aero-datagen -p aero-cli -- -D warnings

echo "==> tier-1: OK"
