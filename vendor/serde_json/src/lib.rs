//! Minimal offline stand-in for `serde_json` (API subset).
//!
//! Renders the offline `serde` stub's [`serde::Value`] tree to JSON text and
//! parses JSON text back. Floats are written with Rust's shortest-roundtrip
//! `Display`, so `f32`/`f64` values survive a save/load cycle bit-exactly —
//! the property the model-persistence tests rely on.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`, rejecting trailing garbage.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

fn push_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats distinguishable from integers on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no non-finite literals; match serde_json's
                // behaviour of emitting null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                push_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if !fields.is_empty() {
                push_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped) bytes in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = core::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("invalid escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-7, 0.0] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {json}");
        }
        let v = vec![0.123_456_789_f64, -9.87e300];
        let back: Vec<f64> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(String, usize)> = vec![("a".into(), 1), ("b\"x".into(), 2)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, usize)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 garbage").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u8, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
