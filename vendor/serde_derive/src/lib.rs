//! `#[derive(Serialize, Deserialize)]` for the offline `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote`, which are
//! unavailable in hermetic builds) and emits `to_value`/`from_value`
//! implementations keyed by field and variant names. Supports the shapes
//! the workspace actually uses: structs with named fields (with optional
//! `#[serde(default)]` / `#[serde(default = "path")]` field attributes for
//! forward-compatible formats), and enums whose variants are unit or
//! struct-like. Anything else produces a descriptive compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` = unit variant; `Some(fields)` = struct-like variant.
    fields: Option<Vec<Field>>,
}

struct Field {
    name: String,
    /// Deserialization fallback when the field is absent from the input:
    /// `None` = required, `Some(None)` = `Default::default()`
    /// (`#[serde(default)]`), `Some(Some(path))` = call the named function
    /// (`#[serde(default = "path")]`).
    default: Option<Option<String>>,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let code = match parse_item(input) {
        Ok(Item::Struct { name, fields }) => match dir {
            Direction::Serialize => struct_serialize(&name, &fields),
            Direction::Deserialize => struct_deserialize(&name, &fields),
        },
        Ok(Item::Enum { name, variants }) => match dir {
            Direction::Serialize => enum_serialize(&name, &variants),
            Direction::Deserialize => enum_deserialize(&name, &variants),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive: generated code must parse")
}

/// Extracts the item kind, name, and field/variant names from raw tokens.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected item name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generic type `{name}` is not supported"
            ));
        }
    }
    // The body is the next brace group (`where` clauses would need skipping
    // here, but the workspace does not use them on serialized types).
    let body = tokens[i..].iter().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
        _ => None,
    });
    match (kind.as_str(), body) {
        ("struct", Some(body)) => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        ("enum", Some(body)) => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        ("struct", None) => Err(format!(
            "serde stub derive: struct `{name}` must have named fields"
        )),
        _ => Err(format!("serde stub derive: cannot derive for `{name}`")),
    }
}

/// Parses the contents of one `#[serde(...)]` attribute group, returning the
/// field's default policy when the attribute is `default` /
/// `default = "path"`.
fn parse_serde_attr(group: &proc_macro::Group) -> Result<Option<Option<String>>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None), // some other attribute (doc comment, lint, ...)
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Ok(None);
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => match args.get(1) {
            None => Ok(Some(None)),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => match args.get(2) {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    let path = s.trim_matches('"').to_string();
                    if path.is_empty() || path.len() == s.len() {
                        Err(format!("serde stub derive: expected a string path, got {s}"))
                    } else {
                        Ok(Some(Some(path)))
                    }
                }
                _ => Err("serde stub derive: expected `default = \"path\"`".into()),
            },
            _ => Err("serde stub derive: malformed `#[serde(default)]`".into()),
        },
        Some(other) => Err(format!(
            "serde stub derive: unsupported serde attribute `{other}` (only `default` is implemented)"
        )),
        None => Ok(None),
    }
}

/// Field names of a `{ name: Type, ... }` body. Commas inside generic
/// arguments are skipped by tracking `<`/`>` depth (delimited groups arrive
/// as single atomic tokens, so only angle brackets need counting).
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments included) and visibility,
        // harvesting any `#[serde(default...)]` along the way.
        let mut default = None;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(d) = parse_serde_attr(g)? {
                            default = Some(d);
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err("serde stub derive: expected a named field".into());
        };
        fields.push(Field { name: id.to_string(), default });
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde stub derive: tuple fields are not supported".into()),
        }
        // Skip the type until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Variant names (+ field names for struct-like variants) of an enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err("serde stub derive: expected an enum variant".into());
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stub derive: tuple variant `{name}` is not supported"
                ));
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        // Skip to the next comma (covers explicit discriminants).
        while let Some(tt) = tokens.get(i) {
            i += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let entries: String = fields.iter().map(|f| field_deserialize(f, "v")).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok(Self {{ {entries} }})\n\
             }}\n\
         }}"
    )
}

/// One field's deserialization expression: required fields error when
/// missing, `#[serde(default...)]`-marked fields fall back instead — the
/// forward-compatibility hook versioned formats rely on.
fn field_deserialize(f: &Field, source: &str) -> String {
    let name = &f.name;
    match &f.default {
        None => format!("{name}: ::serde::field({source}, {name:?})?,"),
        Some(None) => format!(
            "{name}: ::serde::field_or({source}, {name:?}, ::std::default::Default::default)?,"
        ),
        Some(Some(path)) => {
            format!("{name}: ::serde::field_or({source}, {name:?}, {path})?,")
        }
    }
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                None => format!(
                    "Self::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                ),
                Some(fields) => {
                    let bindings =
                        fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "Self::{vn} {{ {bindings} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}),\
                             ::serde::Value::Object(::std::vec![{entries}])\
                         )]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| v.fields.is_none())
        .map(|v| format!("{:?} => ::std::result::Result::Ok(Self::{}),", v.name, v.name))
        .collect();
    let struct_arms: String = variants
        .iter()
        .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
        .map(|(vn, fields)| {
            let entries: String =
                fields.iter().map(|f| field_deserialize(f, "inner")).collect();
            format!("{vn:?} => ::std::result::Result::Ok(Self::{vn} {{ {entries} }}),")
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError(\n\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                         let (tag, inner) = &tagged[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {struct_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError(\n\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError(\n\
                         ::std::string::String::from(\"expected a {name} variant\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
