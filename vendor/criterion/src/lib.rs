//! Minimal offline stand-in for `criterion` (API subset).
//!
//! Provides just enough of the criterion benchmarking surface for the
//! workspace's `harness = false` bench targets to compile and run in
//! hermetic environments: `Criterion`, `BenchmarkGroup`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! simple mean-of-samples timer printed to stdout — no statistics, plots,
//! or baseline comparisons.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the time budget for measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up duration run before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run(id, sample_size, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("bench {id}: mean {:?} over {} samples", bencher.mean, sample_size);
    }
}

/// A named group sharing configuration (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the measurement budget; accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: core::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(&format!("{}/{id}", self.name), sample_size, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: core::fmt::Display,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run(&format!("{}/{id}", self.name), sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reporting happens per-benchmark).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: core::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: core::fmt::Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Timer handle passed to benchmark closures (mirrors `criterion::Bencher`).
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measure: `sample_size` samples, capped by the measurement budget.
        let mut total = Duration::ZERO;
        let mut samples = 0u32;
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            samples += 1;
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean = total / samples.max(1);
    }
}

/// Opaque value sink preventing the optimiser from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    core::hint::black_box(x)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        targets = sample_bench
    }

    #[test]
    fn group_runs_to_completion() {
        quick();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
