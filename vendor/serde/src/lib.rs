//! Minimal offline stand-in for the `serde` crate (API subset).
//!
//! The workspace builds hermetically with no crates.io access, so this crate
//! provides just the serialization surface the repo uses: the
//! [`Serialize`]/[`Deserialize`] traits (routed through an in-memory
//! [`Value`] tree rather than serde's visitor machinery), implementations
//! for the primitive/container types that appear in the workspace, and the
//! `#[derive(Serialize, Deserialize)]` macros re-exported from
//! `serde_derive`. `serde_json` renders [`Value`] to and from JSON text.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// In-memory serialization tree (the stub's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting a descriptive error on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Helper used by derived code for `#[serde(default)]` /
/// `#[serde(default = "path")]` fields: an absent field yields the fallback
/// instead of an error (the versioned-format forward-compatibility hook); a
/// *present* field that fails to parse still errors.
pub fn field_or<T: Deserialize>(
    v: &Value,
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match v.get_field(name) {
        Some(f) => T::from_value(f).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(default()),
    }
}

/// Helper used by derived code: fetch and deserialize a struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get_field(name) {
        Some(f) => T::from_value(f).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => match v {
            Value::Object(_) => Err(DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                type_name(other)
            ))),
        },
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("integer {u} out of range"))),
                    other => Err(DeError(format!(
                        "expected integer, found {}", type_name(other)
                    ))),
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("integer {u} out of range"))),
                    other => Err(DeError(format!(
                        "expected integer, found {}", type_name(other)
                    ))),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError(format!(
                        "expected number, found {}", type_name(other)
                    ))),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", type_name(other)))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", type_name(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_value(item).map_err(|e| DeError(format!("index {i}: {e}"))))
                .collect(),
            other => Err(DeError(format!("expected array, found {}", type_name(other)))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])
                            .map_err(|e| DeError(format!("tuple index {}: {e}", $idx)))?,)+))
                    }
                    Value::Array(items) => Err(DeError(format!(
                        "expected tuple of length {}, found array of {}", $len, items.len()
                    ))),
                    other => Err(DeError(format!(
                        "expected tuple array, found {}", type_name(other)
                    ))),
                }
            }
        }
    )*};
}
ser_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) of 5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(usize, String)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Int(3)).is_err());
        assert!(field::<u8>(&Value::Object(vec![]), "missing").is_err());
    }
}
