//! Minimal offline stand-in for `proptest` (API subset).
//!
//! Property tests in this workspace draw inputs from simple strategies
//! (numeric ranges, fixed-length vectors, booleans, `prop_map`) and run a
//! configured number of cases. This stub reimplements exactly that surface
//! on top of the offline `rand` stub: each case is generated from a seed
//! derived deterministically from the test name and case index, so failures
//! reproduce across runs. Shrinking is intentionally not implemented — a
//! failing case panics with the case number and the generated inputs are
//! reported by the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Re-export so generated code can name the RNG without depending on `rand`.
pub use rand::SeedableRng;

/// Generates values of an output type from entropy (mirrors
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for vectors of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `proptest::collection::vec` restricted to a fixed length, which is
    /// the only form the workspace uses.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Uniform boolean strategy (mirrors `proptest::bool::ANY`).
    pub struct Any;

    /// Fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }
}

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a over `bytes`; used to give each property its own seed stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::fnv1a(stringify!($name).as_bytes());
                for case in 0..config.cases {
                    let mut rng = <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(
                        base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds; vec strategies honor length.
        fn ranges_and_vecs(x in 0u64..100, y in -1.5f32..1.5, v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert!(x < 100);
            prop_assert!((-1.5..1.5).contains(&y));
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }

        fn prop_map_applies(n in crate::collection::vec(crate::bool::ANY, 9).prop_map(|b| b.len())) {
            prop_assert_eq!(n, 9);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = <crate::__StdRng as crate::SeedableRng>::seed_from_u64(42);
        let mut b = <crate::__StdRng as crate::SeedableRng>::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
