//! Minimal offline stand-in for the `rand` crate (API subset).
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the handful of `rand` APIs the repo uses are reimplemented here:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`], and a
//! seedable [`rngs::StdRng`] (xoshiro256** initialised via SplitMix64).
//!
//! Determinism guarantee: the same seed always yields the same stream for a
//! given binary, which is all the repo's reproducibility tests require. The
//! stream intentionally makes no attempt to bit-match upstream `rand`.

#![forbid(unsafe_code)]

/// Low-level uniform u64 source (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Primitive types uniformly sampleable over a `[start, end)` / `[start, end]`
/// interval (mirrors `rand::distributions::uniform::SampleUniform`). A single
/// generic [`SampleRange`] impl sits on top so type inference can flow from
/// range literals to the sampled type, as it does with upstream `rand`.
pub trait SampleUniform: Sized {
    /// Draws one sample; `inclusive` selects `..=` semantics.
    fn sample_between<R: RngCore + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// Sampling within a range (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from `rng` within the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / denom as f64);
                let v = (start as f64 + (end as f64 - start as f64) * u) as $t;
                // Guard against rounding onto a `..` range's excluded endpoint.
                if !inclusive && v >= end { start } else { v }
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// High-level sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (high statistical quality, tiny implementation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four consecutive zeros, but keep the guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..50).all(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!(v >= f32::EPSILON && v < 1.0);
            let w: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&w));
            let x: f32 = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.01)).count();
        assert!((500..1500).contains(&hits), "hits = {hits}");
    }
}
