//! Criterion benchmark matching Fig. 6's shape: one training epoch and one
//! full test scoring pass per method, on a miniature SyntheticMiddle.

use criterion::{criterion_group, criterion_main, Criterion};

use aero_baselines::{Donut, Gdn, NnConfig, SpectralResidual, TranAd};
use aero_core::{Aero, AeroConfig, Detector};
use aero_datagen::SyntheticConfig;

fn mini_dataset() -> aero_timeseries::Dataset {
    SyntheticConfig::tiny(99).build()
}

fn bench_training(c: &mut Criterion) {
    let ds = mini_dataset();
    let mut group = c.benchmark_group("fig6_train");
    group.sample_size(10);

    group.bench_function("AERO", |b| {
        b.iter(|| {
            let mut cfg = AeroConfig::tiny();
            cfg.max_epochs = 1;
            let mut m = Aero::new(cfg).unwrap();
            m.fit(&ds.train).unwrap()
        })
    });
    group.bench_function("Donut", |b| {
        b.iter(|| {
            let mut cfg = NnConfig::tiny();
            cfg.epochs = 1;
            let mut m = Donut::new(cfg);
            m.fit(&ds.train).unwrap()
        })
    });
    group.bench_function("TranAD", |b| {
        b.iter(|| {
            let mut cfg = NnConfig::tiny();
            cfg.epochs = 1;
            let mut m = TranAd::new(cfg);
            m.fit(&ds.train).unwrap()
        })
    });
    group.bench_function("GDN", |b| {
        b.iter(|| {
            let mut cfg = NnConfig::tiny();
            cfg.epochs = 1;
            cfg.stride = 25;
            let mut m = Gdn::new(cfg);
            m.fit(&ds.train).unwrap()
        })
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let ds = mini_dataset();
    let mut group = c.benchmark_group("fig6_test");
    group.sample_size(10);

    let mut cfg = AeroConfig::tiny();
    cfg.max_epochs = 1;
    let mut aero = Aero::new(cfg).unwrap();
    aero.fit(&ds.train).unwrap();
    group.bench_function("AERO", |b| b.iter(|| aero.score(&ds.test).unwrap()));

    let mut sr = SpectralResidual::default();
    sr.fit(&ds.train).unwrap();
    group.bench_function("SR", |b| b.iter(|| sr.score(&ds.test).unwrap()));

    let mut dcfg = NnConfig::tiny();
    dcfg.epochs = 1;
    let mut donut = Donut::new(dcfg);
    donut.fit(&ds.train).unwrap();
    group.bench_function("Donut", |b| b.iter(|| donut.score(&ds.test).unwrap()));
    group.finish();
}

criterion_group! {
    name = methods;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training, bench_scoring
}
criterion_main!(methods);
