//! Criterion benchmark matching Fig. 7's shape: AERO scoring cost versus
//! star count N (linear growth expected).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aero_core::{Aero, AeroConfig, Detector};
use aero_datagen::SyntheticConfig;

fn bench_inference_vs_stars(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_inference");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        let mut dcfg = SyntheticConfig::tiny(7);
        dcfg.variates = n;
        dcfg.noise_variates = (2 * n) / 3;
        let ds = dcfg.build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 1;
        let mut aero = Aero::new(cfg).unwrap();
        aero.fit(&ds.train).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| aero.score(&ds.test).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = scalability;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inference_vs_stars
}
criterion_main!(scalability);
