//! Benchmarks of the parallel execution substrate: blocked GEMM kernels,
//! Stage-1 per-variate training, window scoring, and end-to-end detection,
//! each at 1 worker thread vs. the pool default.
//!
//! These complement `scripts/bench.sh` (which emits `BENCH_parallel.json`
//! for the repo's performance record): criterion gives statistically solid
//! per-kernel numbers, the script gives reproducible wall-clock totals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aero_core::{Aero, AeroConfig, Detector};
use aero_datagen::SyntheticConfig;
use aero_tensor::Matrix;
use aero_timeseries::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// Thread counts exercised by every group: serial baseline and pool default.
fn thread_counts() -> Vec<usize> {
    let pool = aero_parallel::max_threads();
    if pool > 1 {
        vec![1, pool]
    } else {
        vec![1]
    }
}

fn middle_scaled() -> Dataset {
    let mut cfg = SyntheticConfig::middle();
    cfg.train_len = 200;
    cfg.test_len = 200;
    cfg.build()
}

fn bench_model() -> AeroConfig {
    let mut cfg = AeroConfig::tiny();
    cfg.max_epochs = 1;
    cfg
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(11);
    // 256³ stays below the threading threshold (blocked kernel only);
    // 384³ ≈ 56 M MACs crosses it and engages the pool.
    for &n in &[256usize, 384] {
        let a = rand_matrix(&mut rng, n, n);
        let b = rand_matrix(&mut rng, n, n);
        for threads in thread_counts() {
            aero_parallel::set_max_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(&format!("{n}x{n}"), format!("{threads}t")),
                &n,
                |bch, _| bch.iter(|| a.matmul(&b).unwrap()),
            );
        }
    }
    aero_parallel::set_max_threads(1);
    group.finish();
}

fn bench_fit_stage1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_stage1");
    group.sample_size(10);
    let ds = middle_scaled();
    for threads in thread_counts() {
        aero_parallel::set_max_threads(threads);
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |bch| {
            bch.iter(|| {
                let mut model = Aero::new(bench_model()).unwrap();
                model.fit(&ds.train).unwrap()
            })
        });
    }
    aero_parallel::set_max_threads(1);
    group.finish();
}

fn bench_score_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_window");
    group.sample_size(10);
    let ds = middle_scaled();
    let mut model = Aero::new(bench_model()).unwrap();
    model.fit(&ds.train).unwrap();
    for threads in thread_counts() {
        aero_parallel::set_max_threads(threads);
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |bch| {
            bch.iter(|| model.score(&ds.test).unwrap())
        });
    }
    aero_parallel::set_max_threads(1);
    group.finish();
}

fn bench_e2e_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_detect");
    group.sample_size(10);
    let ds = middle_scaled();
    for threads in thread_counts() {
        aero_parallel::set_max_threads(threads);
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |bch| {
            bch.iter(|| {
                let mut model = Aero::new(bench_model()).unwrap();
                model.fit(&ds.train).unwrap();
                model.score(&ds.test).unwrap()
            })
        });
    }
    aero_parallel::set_max_threads(1);
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_fit_stage1,
    bench_score_window,
    bench_e2e_detect
);
criterion_main!(benches);
