//! Criterion benchmarks of the end-to-end pipeline stages plus the DESIGN.md
//! §5 ablation micro-benches: Grimshaw MLE vs method-of-moments GPD fitting,
//! and cosine vs dot-product window graphs.

use criterion::{criterion_group, criterion_main, Criterion};

use aero_core::window_adjacency;
use aero_evt::{fit_gpd, fit_moments};
use aero_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_gpd_fit_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pot_fit");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(8);
    let peaks: Vec<f64> = (0..1000)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            1.0 / 0.2 * (u.powf(-0.2) - 1.0)
        })
        .collect();
    group.bench_function("grimshaw_mle", |b| b.iter(|| fit_gpd(&peaks).unwrap()));
    group.bench_function("method_of_moments", |b| {
        b.iter(|| fit_moments(&peaks).unwrap())
    });
    group.finish();
}

fn dot_product_adjacency(e: &Matrix) -> Matrix {
    let n = e.rows();
    let mut adj = Matrix::zeros(n, n);
    for m in 0..n {
        for k in 0..n {
            let dot: f32 = e.row(m).iter().zip(e.row(k)).map(|(a, b)| a * b).sum();
            adj.set(m, k, dot);
        }
    }
    adj
}

fn bench_graph_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_graph_similarity");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(9);
    let e = Matrix::from_fn(54, 60, |_, _| rng.gen_range(-1.0..1.0));
    group.bench_function("cosine", |b| b.iter(|| window_adjacency(&e)));
    group.bench_function("dot_product", |b| b.iter(|| dot_product_adjacency(&e)));
    group.finish();
}

fn bench_end_to_end_window(c: &mut Criterion) {
    use aero_core::{Aero, AeroConfig, Detector};
    use aero_datagen::SyntheticConfig;
    let ds = SyntheticConfig::tiny(42).build();
    let mut cfg = AeroConfig::tiny();
    cfg.max_epochs = 1;
    let mut aero = Aero::new(cfg).unwrap();
    aero.fit(&ds.train).unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("aero_score_test_split", |b| {
        b.iter(|| aero.score(&ds.test).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gpd_fit_ablation, bench_graph_ablation, bench_end_to_end_window
}
criterion_main!(pipeline);
