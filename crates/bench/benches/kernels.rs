//! Criterion micro-benchmarks of the computational kernels every experiment
//! rests on: matmul, softmax, layer norm, attention, FFT, GPD fitting, and
//! window-wise graph learning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aero_core::window_adjacency;
use aero_evt::{fit_gpd, pot_threshold, PotConfig};
use aero_nn::MultiHeadAttention;
use aero_tensor::{Graph, Matrix, ParamStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[32usize, 128] {
        let a = rand_matrix(&mut rng, n, n);
        let b = rand_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_softmax_layernorm(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowwise");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let x = rand_matrix(&mut rng, 200, 64);
    group.bench_function("softmax_200x64", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            g.softmax_rows(xn).unwrap()
        })
    });
    let gamma = Matrix::ones(1, 64);
    let beta = Matrix::zeros(1, 64);
    group.bench_function("layernorm_200x64", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            let gn = g.constant(gamma.clone());
            let bn = g.constant(beta.clone());
            g.layer_norm_rows(xn, gn, bn, 1e-5).unwrap()
        })
    });
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "b", 32, 4, &mut rng).unwrap();
    let x = rand_matrix(&mut rng, 200, 32);
    group.bench_function("mha_seq200_d32_h4", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            mha.forward(&mut g, &store, xn, xn, xn).unwrap()
        })
    });
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(4);
    let signal: Vec<f32> = (0..4096).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    group.bench_function("rfft_4096", |bch| {
        bch.iter(|| aero_baselines::fft::rfft(&signal))
    });
    group.finish();
}

fn bench_evt(c: &mut Criterion) {
    let mut group = c.benchmark_group("evt");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let peaks: Vec<f64> = (0..500).map(|_| -(rng.gen_range(1e-9f64..1.0)).ln()).collect();
    group.bench_function("grimshaw_fit_500", |bch| {
        bch.iter(|| fit_gpd(&peaks).unwrap())
    });
    let scores: Vec<f32> = (0..20000).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    group.bench_function("pot_threshold_20k", |bch| {
        bch.iter(|| pot_threshold(&scores, PotConfig::default()))
    });
    group.finish();
}

fn bench_graph_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(6);
    for &n in &[24usize, 96] {
        let e = rand_matrix(&mut rng, n, 60);
        group.bench_with_input(BenchmarkId::new("window_adjacency", n), &n, |bch, _| {
            bch.iter(|| window_adjacency(&e))
        });
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_softmax_layernorm, bench_attention, bench_fft, bench_evt, bench_graph_learning
}
criterion_main!(kernels);
