//! Steady-state allocation gate for the streaming scoring path.
//!
//! After warm-up, `OnlineAero::push` must perform **zero** heap allocations
//! in tensor ops: every `Matrix` output and every `Graph` tape comes out of
//! the `aero_tensor::workspace` pool. Two independent witnesses:
//!
//! 1. the pool's own miss counters (a miss means a tensor buffer or tape was
//!    not served from the pool and had to allocate) must stay at exactly
//!    zero across the measured pushes, and
//! 2. a counting `#[global_allocator]` bounds the *total* per-push
//!    allocation count, proving the measured batches are steady (no growth
//!    between consecutive batches beyond EVT bookkeeping noise).
//!
//! This is a dedicated test binary so the global allocator and the
//! single-thread pool override cannot interfere with sibling tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use aero_core::online::OnlineAero;
use aero_core::{Aero, AeroConfig, Detector};
use aero_datagen::SyntheticConfig;
use aero_evt::PotConfig;
use aero_tensor::workspace;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic increment with no other side effects.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

#[test]
fn steady_state_push_is_tensor_alloc_free() {
    // Single-threaded: pool workers have their own thread-local shards that
    // only become steady after their own warm-up; the zero-miss contract is
    // asserted on the deterministic serial path.
    aero_parallel::set_max_threads(1);

    let mut data_cfg = SyntheticConfig::middle();
    data_cfg.train_len = 160;
    data_cfg.test_len = 400;
    let ds = data_cfg.build();

    let mut model_cfg = AeroConfig::tiny();
    model_cfg.max_epochs = 1;
    let mut model = Aero::new(model_cfg).unwrap();
    model.fit(&ds.train).unwrap();
    let mut online = OnlineAero::new(model, &ds.train, PotConfig::default()).unwrap();

    let n = ds.test.num_variates();
    let frames: Vec<(f64, Vec<f32>)> = (0..ds.test.len())
        .map(|t| {
            (
                ds.test.timestamps()[t],
                (0..n).map(|v| ds.test.get(v, t)).collect(),
            )
        })
        .collect();

    // Warm-up: fills the rolling window and populates the buffer/tape pools
    // with every size class the scoring graph uses.
    let (warm, rest) = frames.split_at(frames.len() / 2);
    for (ts, values) in warm {
        online.push(*ts, values).unwrap();
    }

    // Measured: two consecutive batches over fresh frames.
    let half = rest.len() / 2;
    let mut batch_allocs = [0u64; 2];
    workspace::reset_stats();
    for (i, chunk) in [&rest[..half], &rest[half..]].into_iter().enumerate() {
        let before = allocs();
        for (ts, values) in chunk {
            online.push(*ts, values).unwrap();
        }
        batch_allocs[i] = allocs() - before;
    }

    // Witness 1: the tensor layer never fell back to the system allocator.
    let stats = workspace::stats();
    assert_eq!(
        stats.buffer_misses, 0,
        "steady-state pushes allocated tensor buffers: {stats:?}"
    );
    assert_eq!(
        stats.tape_misses, 0,
        "steady-state pushes allocated graph tapes: {stats:?}"
    );

    // Witness 2: total per-push heap traffic is steady — the second batch
    // allocates no more than the first (amortized EVT/verdict bookkeeping
    // may appear in either batch, but nothing may grow per batch).
    assert!(
        batch_allocs[1] <= batch_allocs[0].max(half as u64),
        "allocation count grew between steady-state batches: {batch_allocs:?} over {half} pushes"
    );

    // Witness 3: a hard per-push ceiling. The pre-batching path sat at
    // ~108 heap allocs/push; batched Stage-1 brought it to ~16, and spine
    // recycling (evicted ring rows, scaled-series timestamps, supervision
    // failures, and the ends/errors/residuals Vecs — see `ScoreScratch`)
    // to 8 (bookkeeping only — every tensor comes from the pool). The
    // ceiling fails loudly if per-push Vec churn or a pooling regression
    // creeps back into the streaming path.
    let ceiling = 8 * half as u64;
    assert!(
        batch_allocs[1] <= ceiling,
        "steady-state heap traffic regressed: {batch_allocs:?} over {half} pushes \
         exceeds the {ceiling} ceiling (8/push)"
    );
    let per_push = batch_allocs[1] as f64 / half.max(1) as f64;
    println!(
        "steady-state: {per_push:.2} heap allocs/push over {half} pushes, \
         pool stats {stats:?}, batches {batch_allocs:?}"
    );
}
