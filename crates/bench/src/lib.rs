//! Experiment harness shared by the `table*`/`fig*` binaries: profile
//! selection (harness-scale vs. paper-scale), the method suite, and the
//! per-dataset runner that applies the paper's protocol to every detector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aero_baselines::{all_baselines, NnConfig};
use aero_core::{run_detection, Aero, AeroConfig, Detector, RunOutcome};
use aero_eval::ResultTable;
use aero_evt::PotConfig;
use aero_timeseries::Dataset;

/// Execution profile for the harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Laptop-scale: truncated training splits, reduced model width,
    /// subsampled training windows. Reproduces the *shape* of each result.
    Fast,
    /// Paper-scale hyperparameters (W=200, ω=60, full training splits).
    Paper,
}

impl Profile {
    /// Parses `--paper` from the process args (default: fast).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Self::Paper
        } else {
            Self::Fast
        }
    }

    /// AERO configuration for this profile.
    pub fn aero_config(self) -> AeroConfig {
        match self {
            Self::Fast => AeroConfig::fast(),
            Self::Paper => AeroConfig::paper(),
        }
    }

    /// Baseline configuration for this profile.
    pub fn nn_config(self) -> NnConfig {
        match self {
            Self::Fast => NnConfig::fast(),
            Self::Paper => NnConfig {
                window: 60,
                hidden: 64,
                latent: 16,
                epochs: 100,
                patience: 5,
                stride: 10,
                ..NnConfig::fast()
            },
        }
    }

    /// Training-split cap applied to datasets under this profile.
    pub fn train_cap(self) -> Option<usize> {
        match self {
            Self::Fast => Some(1500),
            Self::Paper => None,
        }
    }

    /// Applies the training cap to a dataset.
    pub fn prepare(self, dataset: &Dataset) -> Dataset {
        match self.train_cap() {
            Some(cap) => dataset.truncate_train(cap).expect("truncate"),
            None => dataset.clone(),
        }
    }
}

/// The POT configuration used across all methods (paper §IV-B).
pub fn paper_pot() -> PotConfig {
    PotConfig { level: 0.99, q: 1e-3 }
}

/// Builds the 12-method suite (11 baselines + AERO) in the paper's order.
pub fn full_suite(profile: Profile) -> Vec<Box<dyn Detector>> {
    let mut suite = all_baselines(&profile.nn_config());
    suite.push(Box::new(
        Aero::new(profile.aero_config()).expect("valid AERO config"),
    ));
    suite
}

/// One detector run on one prepared dataset; prints progress to stderr.
pub fn run_one(
    detector: &mut dyn Detector,
    dataset: &Dataset,
) -> aero_core::DetectorResult<RunOutcome> {
    eprintln!("  running {:>9} on {} …", detector.name(), dataset.name);
    let out = run_detection(detector, dataset, paper_pot())?;
    let auc = aero_eval::roc_auc(&out.scores, &dataset.test_labels, detector.warmup());
    eprintln!(
        "    P={:.2}% R={:.2}% F1={:.2}% AUC={:.3}  (train {:.1}s, test {:.1}s)",
        out.metrics.precision * 100.0,
        out.metrics.recall * 100.0,
        out.metrics.f1 * 100.0,
        auc,
        out.timing.train_secs,
        out.timing.test_secs
    );
    Ok(out)
}

/// Runs the full suite over `datasets`, collecting a paper-style table.
/// Detector failures become zero rows rather than aborting the sweep.
pub fn run_suite(profile: Profile, datasets: &[Dataset]) -> ResultTable {
    let mut table = ResultTable::new();
    for dataset in datasets {
        let prepared = profile.prepare(dataset);
        for detector in full_suite(profile).iter_mut() {
            match run_one(detector.as_mut(), &prepared) {
                Ok(out) => table.push(detector.name(), dataset.name.clone(), out.metrics),
                Err(e) => {
                    eprintln!("    {} FAILED on {}: {e}", detector.name(), dataset.name);
                    table.push(
                        detector.name(),
                        dataset.name.clone(),
                        aero_eval::Metrics::from_counts(0, 0, 1, 0),
                    );
                }
            }
        }
    }
    table
}

/// Renders an ASCII heat-map of a square matrix (Fig. 8 style): darker
/// characters = larger values.
pub fn ascii_heatmap(m: &aero_tensor::Matrix) -> String {
    const SHADES: [char; 6] = [' ', '.', ':', '+', '#', '@'];
    let max = m.max().unwrap_or(1.0).max(1e-9);
    let mut out = String::new();
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let v = (m.get(r, c).max(0.0) / max * (SHADES.len() - 1) as f32).round() as usize;
            out.push(SHADES[v.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Renders a one-line ASCII sparkline of a series (Fig. 5/9 style).
pub fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|&v| {
            let idx = ((v - lo) / range * (BARS.len() - 1) as f32).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_tensor::Matrix;

    #[test]
    fn profile_configs_are_valid() {
        assert!(Profile::Fast.aero_config().validate().is_ok());
        assert!(Profile::Paper.aero_config().validate().is_ok());
        assert_eq!(Profile::Fast.train_cap(), Some(1500));
        assert_eq!(Profile::Paper.train_cap(), None);
    }

    #[test]
    fn suite_contains_twelve_methods() {
        let suite = full_suite(Profile::Fast);
        assert_eq!(suite.len(), 12);
        assert_eq!(suite.last().unwrap().name(), "AERO");
    }

    #[test]
    fn heatmap_and_sparkline_render() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        let h = ascii_heatmap(&m);
        assert_eq!(h.lines().count(), 3);
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
    }
}
