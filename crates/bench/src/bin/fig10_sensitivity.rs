//! Fig. 10 — parameter sensitivity: short window ω, head count, encoder
//! layers, and long window W, with F1 and train/test time per setting.
//!
//! Usage: `cargo run -p bench --release --bin fig10_sensitivity`
//! (runs on SyntheticMiddle; `--paper` sweeps the paper's exact grids)

use aero_core::Aero;
use aero_datagen::SyntheticConfig;
use bench::{run_one, Profile};

fn main() {
    let profile = Profile::from_args();
    let paper = profile == Profile::Paper;
    let ds = profile.prepare(&SyntheticConfig::middle().build());
    let base = profile.aero_config();

    let sweep = |name: &str, configs: Vec<(String, aero_core::AeroConfig)>| {
        println!("\nFig. 10 — sensitivity to {name}\n");
        println!("{:<12} {:>8} {:>12} {:>12}", name, "F1 (%)", "train (s)", "test (s)");
        for (label, cfg) in configs {
            match Aero::new(cfg) {
                Ok(mut model) => match run_one(&mut model, &ds) {
                    Ok(out) => println!(
                        "{:<12} {:>8.2} {:>12.1} {:>12.1}",
                        label,
                        out.metrics.f1 * 100.0,
                        out.timing.train_secs,
                        out.timing.test_secs
                    ),
                    Err(e) => println!("{label:<12} FAILED: {e}"),
                },
                Err(e) => println!("{label:<12} invalid: {e}"),
            }
        }
    };

    // (a)/(b)/(c): short window size.
    let omegas: Vec<usize> = if paper {
        vec![20, 40, 60, 80, 100]
    } else {
        vec![10, 20, 30, 40, 50]
    };
    sweep(
        "short ω",
        omegas
            .iter()
            .map(|&o| {
                let mut c = base.clone();
                c.short_window = o;
                (format!("ω={o}"), c)
            })
            .collect(),
    );

    // (d): head count.
    sweep(
        "heads",
        [1usize, 2, 4, 8]
            .iter()
            .map(|&h| {
                let mut c = base.clone();
                c.heads = h;
                (format!("h={h}"), c)
            })
            .collect(),
    );

    // (e): encoder layers.
    sweep(
        "layers",
        [1usize, 2, 3]
            .iter()
            .map(|&l| {
                let mut c = base.clone();
                c.encoder_layers = l;
                (format!("L={l}"), c)
            })
            .collect(),
    );

    // (f): long window size.
    let windows: Vec<usize> = if paper {
        vec![100, 150, 200, 250]
    } else {
        vec![60, 80, 100, 120]
    };
    sweep(
        "long W",
        windows
            .iter()
            .map(|&w| {
                let mut c = base.clone();
                c.window = w;
                (format!("W={w}"), c)
            })
            .collect(),
    );
}
