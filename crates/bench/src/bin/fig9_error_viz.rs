//! Fig. 9 — reconstruction errors per stage: the temporal module alone
//! (|Y − Ŷ₁|) flags concurrent noise as anomalous; adding the noise module
//! (|Y − Ŷ₁ − Ŷ₂|) suppresses it while keeping true anomalies.
//!
//! Usage: `cargo run -p bench --release --bin fig9_error_viz`

use aero_core::{Aero, Detector};
use aero_datagen::SyntheticConfig;
use bench::{sparkline, Profile};

fn main() {
    let profile = Profile::from_args();
    let ds = profile.prepare(&SyntheticConfig::middle().build());
    let mut aero = Aero::new(profile.aero_config()).expect("config");
    aero.fit(&ds.train).expect("fit");
    let (e1, e2) = aero.stage_scores(&ds.test).expect("scores");
    let warm = aero.warmup();

    // Pick: two variates with true anomalies, two with concurrent noise.
    let anomaly_vars: Vec<usize> = {
        let mut v: Vec<usize> = ds.test_labels.segments().iter().map(|s| s.variate).collect();
        v.dedup();
        v.into_iter().take(2).collect()
    };
    let noise_vars: Vec<usize> = (0..ds.num_variates())
        .filter(|&v| !anomaly_vars.contains(&v) && ds.test_noise.row(v).iter().any(|&b| b))
        .take(2)
        .collect();

    println!("\nFig. 9 — per-stage reconstruction errors (test split, after warmup)\n");
    let show = |label: &str, v: usize, m: &aero_tensor::Matrix| {
        let row: Vec<f32> = m.row(v)[warm..].iter().step_by(8).copied().collect();
        println!("  {label:<24} {}", sparkline(&row));
    };
    for &v in &anomaly_vars {
        println!("star {v} (TRUE ANOMALY):");
        show("stage 1 |Y−Ŷ1|", v, &e1);
        show("final   |Y−Ŷ1−Ŷ2|", v, &e2);
    }
    for &v in &noise_vars {
        println!("star {v} (CONCURRENT NOISE):");
        show("stage 1 |Y−Ŷ1|", v, &e1);
        show("final   |Y−Ŷ1−Ŷ2|", v, &e2);
    }

    // Quantitative: on noise points the final error should drop vs stage 1;
    // on anomaly points it should not drop (ideally grows).
    let mut noise = (0.0f64, 0.0f64);
    let mut anomaly = (0.0f64, 0.0f64);
    for v in 0..ds.num_variates() {
        for t in warm..ds.test.len() {
            let s1 = e1.get(v, t) as f64;
            let s2 = e2.get(v, t) as f64;
            if ds.test_noise.get(v, t) && !ds.test_labels.get(v, t) {
                noise = (noise.0 + s1, noise.1 + s2);
            } else if ds.test_labels.get(v, t) {
                anomaly = (anomaly.0 + s1, anomaly.1 + s2);
            }
        }
    }
    if noise.0 > 0.0 && anomaly.0 > 0.0 {
        println!(
            "\nmean error retained after stage 2:  noise points {:.2}×,  anomaly points {:.2}×",
            noise.1 / noise.0,
            anomaly.1 / anomaly.0
        );
        println!("(the paper's claim: noise shrinks, anomalies persist/grow)");
    }
}
