//! Table IV — ablation study: the full model against the seven variants on
//! SyntheticMiddle, AstrosetMiddle, and AstrosetLow.
//!
//! Usage: `cargo run -p bench --release --bin table4_ablation [--paper]`

use aero_core::{Aero, AblationVariant};
use aero_datagen::{AstrosetConfig, SyntheticConfig};
use aero_eval::ResultTable;
use bench::{run_one, Profile};

fn main() {
    let profile = Profile::from_args();
    eprintln!("profile: {profile:?}");
    let datasets = vec![
        SyntheticConfig::middle().build(),
        AstrosetConfig::middle().build(),
        AstrosetConfig::low().build(),
    ];
    let base = profile.aero_config();
    let mut table = ResultTable::new();
    for ds in &datasets {
        let prepared = profile.prepare(ds);
        for variant in AblationVariant::ALL {
            let cfg = variant.configure(&base);
            let mut model = Aero::new(cfg).expect("valid variant config");
            match run_one(&mut model, &prepared) {
                Ok(out) => table.push(variant.label(), ds.name.clone(), out.metrics),
                Err(e) => {
                    eprintln!("    {} FAILED: {e}", variant.label());
                    table.push(
                        variant.label(),
                        ds.name.clone(),
                        aero_eval::Metrics::from_counts(0, 0, 1, 0),
                    );
                }
            }
        }
    }
    println!("\nTable IV — ablation study ({profile:?} profile)\n");
    println!("{}", table.render());
}
