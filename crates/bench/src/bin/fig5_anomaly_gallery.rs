//! Fig. 5 — gallery of injected true-anomaly morphologies, rendered as
//! ASCII sparklines.
//!
//! Usage: `cargo run -p bench --release --bin fig5_anomaly_gallery`

use aero_datagen::AnomalyKind;
use bench::sparkline;

fn main() {
    println!("Fig. 5 — injected true-anomaly templates (magnitude vs. time)\n");
    for kind in AnomalyKind::ALL {
        let len = kind.span_range().end.max(8);
        let values: Vec<f32> = (0..len).map(|i| kind.value(i, len, 1.0)).collect();
        println!("{:<14} {}", format!("{kind:?}"), sparkline(&values));
    }
    println!("\nFlare follows Davenport et al. (2014): fast polynomial rise,");
    println!("two-phase exponential decay. The others cover the PLAsTiCC");
    println!("morphology space (dips, steps, spikes, symmetric bumps).");
}
