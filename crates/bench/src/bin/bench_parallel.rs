//! Reproducible wall-clock benchmark of the parallel execution substrate.
//!
//! Emits `BENCH_parallel.json` (repo root, or `--out <path>`) recording,
//! for each stage — blocked GEMM, Stage-1 fit, scoring, end-to-end detect —
//! the median wall-clock at 1 thread vs. the pool default, plus a
//! single-thread naive-vs-blocked GEMM comparison so the kernel win is
//! visible even on single-core hosts.
//!
//! Numbers are **measured, never synthesized**: on a 1-CPU container the
//! multi-thread rows will honestly show ~1× (there is no second core to
//! run on), and the JSON records the host's logical CPU count so readers
//! can interpret them.
//!
//! Flags: `--smoke` (tiny sizes, used by tier-1 to keep the harness wired),
//! `--threads <n>` (parallel variant thread count), `--out <path>`.

use std::time::Instant;

use aero_core::online::OnlineAero;
use aero_core::wal::{FsyncPolicy, WalConfig, WalWriter};
use aero_core::{
    Aero, AeroConfig, Detector, FallbackScorer, LadderLevel, OverloadPolicy, StreamGovernor,
};
use aero_datagen::SyntheticConfig;
use aero_evt::PotConfig;
use aero_tensor::Matrix;
use aero_timeseries::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    benchmark: &'static str,
    mode: &'static str,
    /// Logical CPUs on the host. Thread-scaling speedups are only
    /// meaningful when this exceeds 1 — every number is a measured
    /// wall-clock median, never synthesized.
    host_logical_cpus: usize,
    threads_parallel_variant: usize,
    reps_per_sample: usize,
    gemm: GemmReport,
    fit_stage1: StageReport,
    score_window: StageReport,
    e2e_detect: StageReport,
    wal_overhead: WalReport,
    degradation_ladder: LadderReport,
}

/// Per-frame cost of a governed poll with every star forced onto one
/// ladder rung — the numbers behind the overload model's claim that each
/// rung is materially cheaper than the one above it (DESIGN.md §11).
#[derive(Serialize)]
struct LadderReport {
    frames_per_sample: usize,
    full_aero_secs_per_frame: f64,
    stage1_only_secs_per_frame: f64,
    sr_fallback_secs_per_frame: f64,
    hold_last_secs_per_frame: f64,
    stage1_saving_ratio: f64,
    hold_last_saving_ratio: f64,
}

/// Per-frame `OnlineAero::push` latency with the write-ahead log off vs.
/// attached under two fsync policies. Measured medians, never synthesized.
#[derive(Serialize)]
struct WalReport {
    frames_per_sample: usize,
    push_no_wal_secs_per_frame: f64,
    push_wal_fsync_never_secs_per_frame: f64,
    push_wal_fsync_segment_secs_per_frame: f64,
    wal_never_overhead_ratio: f64,
    wal_segment_overhead_ratio: f64,
}

#[derive(Serialize)]
struct GemmReport {
    size: String,
    naive_1t_secs: f64,
    blocked_1t_secs: f64,
    blocked_nt_secs: f64,
    kernel_speedup_vs_naive_1t: f64,
    thread_speedup: f64,
}

#[derive(Serialize)]
struct StageReport {
    secs_1t: f64,
    secs_nt: f64,
    thread_speedup: f64,
}

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().max(2)),
        out: "BENCH_parallel.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => panic!("unknown flag {other} (expected --smoke | --threads N | --out PATH)"),
        }
    }
    args
}

/// Median-of-`reps` wall-clock seconds for `f`.
fn time_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// Textbook three-loop GEMM — the kernel the blocked one replaced.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0.0f32;
        for p in 0..k {
            acc += a.get(i, p) * b.get(p, j);
        }
        acc
    })
}

fn dataset(smoke: bool) -> Dataset {
    let mut cfg = SyntheticConfig::middle();
    if smoke {
        cfg.train_len = 120;
        cfg.test_len = 120;
    } else {
        cfg.train_len = 600;
        cfg.test_len = 600;
    }
    cfg.build()
}

fn model_config(smoke: bool) -> AeroConfig {
    let mut cfg = AeroConfig::tiny();
    cfg.max_epochs = if smoke { 1 } else { 2 };
    cfg
}

fn main() {
    let args = parse_args();
    let reps = if args.smoke { 1 } else { 3 };
    let logical_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- GEMM: naive vs blocked (1 thread), blocked at 1 vs N threads. ---
    let gemm_n = if args.smoke { 128 } else { 384 };
    let mut rng = StdRng::seed_from_u64(7);
    let a = rand_matrix(&mut rng, gemm_n, gemm_n);
    let b = rand_matrix(&mut rng, gemm_n, gemm_n);

    aero_parallel::set_max_threads(1);
    let gemm_naive = time_secs(reps, || {
        naive_matmul(&a, &b);
    });
    let gemm_blocked_1t = time_secs(reps, || {
        a.matmul(&b).unwrap();
    });
    aero_parallel::set_max_threads(args.threads);
    let gemm_blocked_nt = time_secs(reps, || {
        a.matmul(&b).unwrap();
    });

    // --- Pipeline stages at 1 vs N threads. ---
    let ds = dataset(args.smoke);
    let run_fit = || {
        let mut model = Aero::new(model_config(args.smoke)).unwrap();
        model.fit(&ds.train).unwrap();
        model
    };

    aero_parallel::set_max_threads(1);
    let fit_1t = time_secs(reps, || {
        run_fit();
    });
    let mut model = run_fit();
    let score_1t = time_secs(reps, || {
        model.score(&ds.test).unwrap();
    });
    let e2e_1t = time_secs(reps, || {
        run_fit().score(&ds.test).unwrap();
    });

    aero_parallel::set_max_threads(args.threads);
    let fit_nt = time_secs(reps, || {
        run_fit();
    });
    let score_nt = time_secs(reps, || {
        model.score(&ds.test).unwrap();
    });
    let e2e_nt = time_secs(reps, || {
        run_fit().score(&ds.test).unwrap();
    });
    aero_parallel::set_max_threads(1);

    // --- WAL overhead: per-frame push latency off / never / segment. ---
    let wal_frames = if args.smoke { 30 } else { 150 };
    let n = ds.test.num_variates();
    let frames: Vec<(f64, Vec<f32>)> = (0..wal_frames.min(ds.test.len()))
        .map(|t| {
            (
                ds.test.timestamps()[t],
                (0..n).map(|v| ds.test.get(v, t)).collect(),
            )
        })
        .collect();
    let fresh_online = || {
        let model = run_fit();
        OnlineAero::new(model, &ds.train, PotConfig::default()).unwrap()
    };
    let push_all = |wal: Option<FsyncPolicy>| {
        let mut online = fresh_online();
        let dir = std::env::temp_dir().join(format!(
            "aero_bench_wal_{}_{:?}",
            std::process::id(),
            wal
        ));
        std::fs::remove_dir_all(&dir).ok();
        if let Some(fsync) = wal {
            let config = WalConfig { frames_per_segment: 16, fsync };
            online.attach_wal(WalWriter::create(&dir, config).unwrap());
        }
        // Shift timestamps forward each rep so every rep's frames are
        // fresh arrivals (re-pushing identical timestamps would measure
        // the cheap duplicate-drop path instead of scoring + WAL).
        let span = frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
        let mut offset = 0.0;
        let per_frame = time_secs(reps, || {
            for (ts, values) in &frames {
                online.push(*ts + offset, values).unwrap();
            }
            offset += span;
        }) / frames.len().max(1) as f64;
        std::fs::remove_dir_all(&dir).ok();
        per_frame
    };
    let wal_off = push_all(None);
    let wal_never = push_all(Some(FsyncPolicy::Never));
    let wal_segment = push_all(Some(FsyncPolicy::EverySegment));

    // --- Degradation ladder: governed per-frame cost at each forced rung.
    // The ladder is pinned (an unreachable up-streak) so the drained queue
    // cannot step the stars back up mid-measurement.
    let ladder_cost = |level: LadderLevel| {
        let online = fresh_online();
        let policy = OverloadPolicy { up_streak: usize::MAX, ..OverloadPolicy::default() };
        let mut gov = StreamGovernor::with_policy(online, policy).unwrap();
        gov.set_fallback(Some(FallbackScorer::new(|w: &[f32]| {
            w.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
        })));
        gov.force_ladder_level(level);
        let span = frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
        let mut offset = 0.0;
        time_secs(reps, || {
            for (ts, values) in &frames {
                gov.offer(*ts + offset, values).unwrap();
                gov.poll().unwrap();
            }
            offset += span;
        }) / frames.len().max(1) as f64
    };
    let ladder_full = ladder_cost(LadderLevel::FullAero);
    let ladder_stage1 = ladder_cost(LadderLevel::Stage1Only);
    let ladder_sr = ladder_cost(LadderLevel::SrFallback);
    let ladder_hold = ladder_cost(LadderLevel::HoldLast);

    let speedup = |one: f64, many: f64| if many > 0.0 { one / many } else { 0.0 };
    let stage = |one: f64, many: f64| StageReport {
        secs_1t: one,
        secs_nt: many,
        thread_speedup: speedup(one, many),
    };
    let report = Report {
        benchmark: "parallel substrate + blocked GEMM",
        mode: if args.smoke { "smoke" } else { "full" },
        host_logical_cpus: logical_cpus,
        threads_parallel_variant: args.threads,
        reps_per_sample: reps,
        gemm: GemmReport {
            size: format!("{gemm_n}x{gemm_n}x{gemm_n}"),
            naive_1t_secs: gemm_naive,
            blocked_1t_secs: gemm_blocked_1t,
            blocked_nt_secs: gemm_blocked_nt,
            kernel_speedup_vs_naive_1t: speedup(gemm_naive, gemm_blocked_1t),
            thread_speedup: speedup(gemm_blocked_1t, gemm_blocked_nt),
        },
        fit_stage1: stage(fit_1t, fit_nt),
        score_window: stage(score_1t, score_nt),
        e2e_detect: stage(e2e_1t, e2e_nt),
        wal_overhead: WalReport {
            frames_per_sample: frames.len(),
            push_no_wal_secs_per_frame: wal_off,
            push_wal_fsync_never_secs_per_frame: wal_never,
            push_wal_fsync_segment_secs_per_frame: wal_segment,
            wal_never_overhead_ratio: speedup(wal_never, wal_off),
            wal_segment_overhead_ratio: speedup(wal_segment, wal_off),
        },
        degradation_ladder: LadderReport {
            frames_per_sample: frames.len(),
            full_aero_secs_per_frame: ladder_full,
            stage1_only_secs_per_frame: ladder_stage1,
            sr_fallback_secs_per_frame: ladder_sr,
            hold_last_secs_per_frame: ladder_hold,
            stage1_saving_ratio: speedup(ladder_full, ladder_stage1),
            hold_last_saving_ratio: speedup(ladder_full, ladder_hold),
        },
    };
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&args.out, format!("{pretty}\n")).expect("writing the benchmark report");
    println!("{pretty}");
    eprintln!("wrote {}", args.out);
}
