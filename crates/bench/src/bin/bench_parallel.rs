//! Reproducible wall-clock benchmark of the parallel execution substrate
//! and the runtime-dispatched kernel layer.
//!
//! Emits `BENCH_parallel.json` (repo root, or `--out <path>`) recording,
//! for each stage — GEMM, Stage-1 fit, scoring, end-to-end detect — the
//! median wall-clock at 1 thread vs. the pool default. The GEMM section
//! compares three single-thread kernels (textbook naive, blocked scalar
//! dispatch, blocked SIMD dispatch on the detected backend) so both the
//! blocking win and the SIMD win are visible separately, and the report
//! records the host's CPU features plus the dispatch choice. A final
//! section profiles steady-state heap allocations per streamed
//! `OnlineAero::push` with a counting global allocator alongside the
//! tensor workspace-pool miss counters.
//!
//! Numbers are **measured, never synthesized**: on a 1-CPU container the
//! multi-thread rows will honestly show ~1×, on a CPU without AVX2/AVX-512
//! the SIMD rows are `null`, and the JSON records enough host facts
//! (logical CPUs, features, backend) to interpret every row.
//!
//! Flags: `--smoke` (tiny sizes, used by tier-1 to keep the harness wired),
//! `--threads <n>` (parallel variant thread count), `--out <path>`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use std::sync::Arc;

use aero_core::fleet::{FleetConfig, FleetCoordinator, ShardAssignment, ShardFactory, StarCatalog};
use aero_core::online::{DegradePolicy, OnlineAero};
use aero_core::wal::{FsyncPolicy, WalConfig, WalWriter};
use aero_core::{
    Aero, AeroConfig, Detector, FallbackScorer, LadderLevel, OverloadPolicy, ScoreMode,
    StreamGovernor,
};
use aero_datagen::SyntheticConfig;
use aero_evt::PotConfig;
use aero_tensor::{workspace, Backend, Matrix};
use aero_timeseries::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic increment with no other side effects.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

#[derive(Serialize)]
struct Report {
    benchmark: &'static str,
    mode: &'static str,
    /// Logical CPUs on the host. Thread-scaling speedups are only
    /// meaningful when this exceeds 1 — every number is a measured
    /// wall-clock median, never synthesized.
    host_logical_cpus: usize,
    threads_parallel_variant: usize,
    reps_per_sample: usize,
    cpu: CpuReport,
    gemm: GemmReport,
    fit_stage1: StageReport,
    score_window: StageReport,
    e2e_detect: StageReport,
    batched_inference: BatchedReport,
    pipelined_push: PipelinedReport,
    streaming_allocs: AllocReport,
    memory_at_scale: MemoryAtScaleReport,
    wal_overhead: WalReport,
    degradation_ladder: LadderReport,
    fleet_scaling: FleetScalingReport,
    migration_pause: MigrationPauseReport,
    serve_throughput: ServeThroughputReport,
}

/// Wire-level ingest throughput of the resident `aero serve` loop
/// (DESIGN.md §15): real TCP sockets on loopback, one-frame Ingest batches,
/// admission latency measured client-side from write to Ack/Reject. The
/// detector stays single-threaded by design, so more connections buy
/// concurrency of arrival, not scoring parallelism — the interesting
/// numbers are the p99 under contention and that throughput does not
/// collapse.
#[derive(Serialize)]
struct ServeThroughputReport {
    frames_per_connection: usize,
    rows: Vec<ServeThroughputRow>,
}

#[derive(Serialize)]
struct ServeThroughputRow {
    connections: usize,
    frames_sent: usize,
    frames_admitted: usize,
    frames_per_sec: f64,
    p50_admission_latency_secs: f64,
    p99_admission_latency_secs: f64,
}

/// Batched cross-star Stage-1 (one stacked `(N·W)×d` GEMM per layer) vs the
/// per-star path (N small GEMMs + tape bookkeeping) over the same streamed
/// frames. Both runs are single-threaded, so the speedup is the GEMM shape
/// and the tape-free forward, not parallelism — it is meaningful on any
/// host. `stage1` rows force `ScoreMode::Stage1` to isolate the rewritten
/// path; `full` rows run the whole push (Stage-2 GCN included) to show the
/// end-to-end effect.
#[derive(Serialize)]
struct BatchedReport {
    stars: usize,
    frames_per_sample: usize,
    per_star_stage1_secs_per_frame: f64,
    batched_stage1_secs_per_frame: f64,
    stage1_speedup: f64,
    per_star_full_secs_per_frame: f64,
    batched_full_secs_per_frame: f64,
    full_speedup: f64,
}

/// Sequential `push` vs `push_pipelined` (frame `t`'s Stage-1 overlapping
/// frame `t−1`'s Stage-2 on the worker pool) at the parallel-variant thread
/// count. The overlap needs a second core: on a 1-CPU host the join runs
/// sequentially, the speedup is honestly ~1×, and the row is marked
/// `skipped_single_cpu`.
#[derive(Serialize)]
struct PipelinedReport {
    frames_per_sample: usize,
    host_logical_cpus: usize,
    threads: usize,
    sequential_secs_per_frame: f64,
    pipelined_secs_per_frame: f64,
    overlap_speedup: Option<f64>,
    note: Option<&'static str>,
}

/// Fleet-coordinator streaming throughput vs shard count (one pool shard
/// per fleet shard, no WAL). On a 1-CPU host the rows will honestly show
/// ~flat frames/sec; the shared-nothing win is isolation, and the
/// throughput win appears only with real cores to spread shards across.
#[derive(Serialize)]
struct FleetScalingReport {
    frames_per_sample: usize,
    stars: usize,
    rows: Vec<FleetScalingRow>,
}

#[derive(Serialize)]
struct FleetScalingRow {
    shards: usize,
    /// Logical CPUs on the host — multi-shard rows only show a throughput
    /// win when this exceeds the shard count being spread.
    host_logical_cpus: usize,
    secs_per_frame: f64,
    frames_per_sec: f64,
    note: Option<&'static str>,
}

/// Cost of a live WAL-fenced star handoff (DESIGN.md §16): one
/// migrate-live night whose starting assignment deliberately mis-homes one
/// star pair, so the first epoch-boundary plan rehomes exactly that pair.
/// Every offer+poll tick is timed individually; the tick whose poll
/// executes the handoff (fence + snapshot + destination rebuild + commit)
/// is reported against the steady-state tick distribution. The pause is
/// dominated by retraining the destination shards' models — measured, not
/// synthesized, so it honestly scales with model size.
#[derive(Serialize)]
struct MigrationPauseReport {
    frames_per_sample: usize,
    stars: usize,
    shards: usize,
    epoch_frames: usize,
    stars_moved: usize,
    steady_p50_tick_secs: f64,
    steady_p99_tick_secs: f64,
    handoff_tick_secs: f64,
    pause_ratio_vs_steady_p50: f64,
    note: Option<&'static str>,
}

/// CPU features the dispatcher probes and the backend choice it made, so
/// every kernel row in this report can be attributed to the code path that
/// actually ran.
#[derive(Serialize)]
struct CpuReport {
    arch: &'static str,
    avx2: bool,
    avx512f: bool,
    neon: bool,
    force_scalar_env: bool,
    detected_backend: &'static str,
    active_backend: &'static str,
}

/// Steady-state heap-allocation profile of `OnlineAero::push` after
/// warm-up. The workspace-pool miss counters must read zero (every tensor
/// buffer and graph tape is served from the pool); `heap_allocs_per_push`
/// is the remaining non-tensor bookkeeping (verdicts, EVT state).
#[derive(Serialize)]
struct AllocReport {
    warmup_pushes: usize,
    measured_pushes: usize,
    heap_allocs_per_push: f64,
    tensor_buffer_misses: u64,
    graph_tape_misses: u64,
}

/// Resident memory of a detector fleet under the shared frozen backbone
/// (DESIGN.md §17): one `Arc`-shared trunk plus per-star adapter deltas,
/// versus each star owning a full model copy. The headline numbers are
/// **measured** via `Aero::resident_bytes` with an `Arc`-pointer dedup set;
/// the curve extrapolates with the closed-form model that the measured rows
/// (and the ±15% unit gate in `aero-core::memory`) validate.
#[derive(Serialize)]
struct MemoryAtScaleReport {
    stars_measured: usize,
    /// Measured resident bytes of one fleet sharing a single backbone.
    shared_total_bytes_measured: usize,
    /// Measured resident bytes of one single-star full model, counted with
    /// a fresh dedup set (what each of N independent models would pin).
    per_star_full_model_bytes_measured: usize,
    shared_bytes_per_star: f64,
    /// `per_star_full_model_bytes / shared_bytes_per_star` at
    /// `stars_measured` — the ISSUE gate requires ≥ 4 at N = 256.
    bytes_per_star_reduction: f64,
    /// Second fleet measured behind the same dedup set: only delta bytes.
    second_fleet_marginal_bytes_measured: usize,
    /// Closed-form estimate vs the measured shared arm.
    model_vs_measured_rel_err: f64,
    memory_curve: Vec<MemoryCurveRow>,
    quantized_rung: QuantRungReport,
}

#[derive(Serialize)]
struct MemoryCurveRow {
    stars: usize,
    /// Measured where a fleet of this size is cheap to assemble (≤ 1024);
    /// `null` above that — the modeled column extends the curve.
    shared_total_bytes_measured: Option<usize>,
    shared_total_bytes_modeled: usize,
    per_star_full_total_bytes_modeled: usize,
    shared_bytes_per_star_modeled: f64,
}

/// Per-frame cost of the degraded `Stage1` rung with the f32 path vs the
/// opt-in int8 per-row-absmax quantized GEMMs, plus the measured score
/// drift envelope of a mixed Full/Stage1 frame (the equivalence gates in
/// `aero-core/tests/backbone.rs` pin all-Full scoring bitwise).
#[derive(Serialize)]
struct QuantRungReport {
    frames_per_sample: usize,
    stage1_f32_secs_per_frame: f64,
    stage1_int8_secs_per_frame: f64,
    int8_saving_ratio: f64,
    mixed_frame_worst_abs_drift: f32,
    mixed_frame_mean_abs_drift: f64,
}

/// Per-frame cost of a governed poll with every star forced onto one
/// ladder rung — the numbers behind the overload model's claim that each
/// rung is materially cheaper than the one above it (DESIGN.md §11).
#[derive(Serialize)]
struct LadderReport {
    frames_per_sample: usize,
    full_aero_secs_per_frame: f64,
    stage1_only_secs_per_frame: f64,
    sr_fallback_secs_per_frame: f64,
    hold_last_secs_per_frame: f64,
    stage1_saving_ratio: f64,
    hold_last_saving_ratio: f64,
}

/// Per-frame `OnlineAero::push` latency with the write-ahead log off vs.
/// attached under two fsync policies. Measured medians, never synthesized.
#[derive(Serialize)]
struct WalReport {
    frames_per_sample: usize,
    push_no_wal_secs_per_frame: f64,
    push_wal_fsync_never_secs_per_frame: f64,
    push_wal_fsync_segment_secs_per_frame: f64,
    wal_never_overhead_ratio: f64,
    wal_segment_overhead_ratio: f64,
}

/// Single-thread GEMM ladder: textbook naive loop → blocked scalar
/// dispatch → blocked SIMD dispatch (detected backend), then the blocked
/// kernel at N threads. SIMD rows are `null` when the host has no SIMD
/// backend (or `AERO_FORCE_SCALAR=1` pinned dispatch to scalar).
#[derive(Serialize)]
struct GemmReport {
    size: String,
    naive_1t_secs: f64,
    scalar_1t_secs: f64,
    simd_backend: &'static str,
    simd_1t_secs: Option<f64>,
    blocked_nt_secs: f64,
    scalar_speedup_vs_naive_1t: f64,
    simd_speedup_vs_scalar_1t: Option<f64>,
    /// Logical CPUs on the host — a sub-1.0 "speedup" on a 1-CPU host is
    /// pool overhead, not a regression, so the ratio is withheld there.
    host_logical_cpus: usize,
    thread_speedup: Option<f64>,
    note: Option<&'static str>,
}

#[derive(Serialize)]
struct StageReport {
    /// Logical CPUs on the host (see [`GemmReport::host_logical_cpus`]).
    host_logical_cpus: usize,
    secs_1t: f64,
    secs_nt: f64,
    thread_speedup: Option<f64>,
    note: Option<&'static str>,
}

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().max(2)),
        out: "BENCH_parallel.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => panic!("unknown flag {other} (expected --smoke | --threads N | --out PATH)"),
        }
    }
    args
}

fn speedup_ratio(one: f64, many: f64) -> f64 {
    if many > 0.0 {
        one / many
    } else {
        0.0
    }
}

/// Median-of-`reps` wall-clock seconds for `f`.
fn time_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Minimal blocking wire client for the serve-throughput section: framed
/// handshake, send, and one-reply recv over a loopback socket.
struct ServeClient {
    stream: std::net::TcpStream,
    decoder: aero_core::serve::Decoder,
}

impl ServeClient {
    fn connect(addr: std::net::SocketAddr, tenant: u32) -> Self {
        use aero_core::serve::{WireMsg, DEFAULT_MAX_PAYLOAD, WIRE_PROTOCOL};
        let stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut client = Self { stream, decoder: aero_core::serve::Decoder::new(DEFAULT_MAX_PAYLOAD) };
        client.send(&WireMsg::Hello { tenant, protocol: WIRE_PROTOCOL });
        match client.recv() {
            WireMsg::HelloAck { .. } => client,
            other => panic!("handshake failed: {other:?}"),
        }
    }

    fn send(&mut self, msg: &aero_core::serve::WireMsg) {
        use std::io::Write;
        self.stream.write_all(&aero_core::serve::encode(msg)).unwrap();
    }

    fn recv(&mut self) -> aero_core::serve::WireMsg {
        use std::io::Read;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(msg) = self.decoder.next().unwrap() {
                return msg;
            }
            let got = self.stream.read(&mut chunk).unwrap();
            assert!(got > 0, "server closed the connection mid-reply");
            self.decoder.extend(&chunk[..got]);
        }
    }
}

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// Textbook three-loop GEMM — the kernel the blocked one replaced.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0.0f32;
        for p in 0..k {
            acc += a.get(i, p) * b.get(p, j);
        }
        acc
    })
}

fn dataset(smoke: bool) -> Dataset {
    let mut cfg = SyntheticConfig::middle();
    if smoke {
        cfg.train_len = 120;
        cfg.test_len = 120;
    } else {
        cfg.train_len = 600;
        cfg.test_len = 600;
    }
    cfg.build()
}

fn model_config(smoke: bool) -> AeroConfig {
    let mut cfg = AeroConfig::tiny();
    cfg.max_epochs = if smoke { 1 } else { 2 };
    cfg
}

fn main() {
    let args = parse_args();
    let reps = if args.smoke { 1 } else { 3 };
    let logical_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Backend: honor AERO_FORCE_SCALAR, otherwise run on the detected
    // SIMD backend; flip to scalar only for the explicit scalar GEMM rows.
    let detected = aero_tensor::detected_backend();
    let active = if aero_tensor::force_scalar_env() { Backend::Scalar } else { detected };
    assert!(aero_tensor::set_backend(active));
    let simd = (active != Backend::Scalar).then_some(active);

    // --- GEMM ladder: naive vs blocked-scalar vs blocked-SIMD (1 thread),
    // then blocked at N threads on the active backend. ---
    let gemm_n = if args.smoke { 128 } else { 384 };
    let mut rng = StdRng::seed_from_u64(7);
    let a = rand_matrix(&mut rng, gemm_n, gemm_n);
    let b = rand_matrix(&mut rng, gemm_n, gemm_n);

    aero_parallel::set_max_threads(1);
    let gemm_naive = time_secs(reps, || {
        naive_matmul(&a, &b);
    });
    assert!(aero_tensor::set_backend(Backend::Scalar));
    let gemm_scalar_1t = time_secs(reps, || {
        a.matmul(&b).unwrap();
    });
    let gemm_simd_1t = simd.map(|backend| {
        assert!(aero_tensor::set_backend(backend));
        time_secs(reps, || {
            a.matmul(&b).unwrap();
        })
    });
    assert!(aero_tensor::set_backend(active));
    let gemm_blocked_1t = gemm_simd_1t.unwrap_or(gemm_scalar_1t);
    aero_parallel::set_max_threads(args.threads);
    let gemm_blocked_nt = time_secs(reps, || {
        a.matmul(&b).unwrap();
    });

    // --- Pipeline stages at 1 vs N threads. ---
    let ds = dataset(args.smoke);
    let run_fit = || {
        let mut model = Aero::new(model_config(args.smoke)).unwrap();
        model.fit(&ds.train).unwrap();
        model
    };

    aero_parallel::set_max_threads(1);
    let fit_1t = time_secs(reps, || {
        run_fit();
    });
    let mut model = run_fit();
    let score_1t = time_secs(reps, || {
        model.score(&ds.test).unwrap();
    });
    let e2e_1t = time_secs(reps, || {
        run_fit().score(&ds.test).unwrap();
    });

    aero_parallel::set_max_threads(args.threads);
    let fit_nt = time_secs(reps, || {
        run_fit();
    });
    let score_nt = time_secs(reps, || {
        model.score(&ds.test).unwrap();
    });
    let e2e_nt = time_secs(reps, || {
        run_fit().score(&ds.test).unwrap();
    });
    aero_parallel::set_max_threads(1);

    // --- WAL overhead: per-frame push latency off / never / segment. ---
    let wal_frames = if args.smoke { 30 } else { 150 };
    let n = ds.test.num_variates();
    let frames: Vec<(f64, Vec<f32>)> = (0..wal_frames.min(ds.test.len()))
        .map(|t| {
            (
                ds.test.timestamps()[t],
                (0..n).map(|v| ds.test.get(v, t)).collect(),
            )
        })
        .collect();
    let fresh_online = || {
        let model = run_fit();
        OnlineAero::new(model, &ds.train, PotConfig::default()).unwrap()
    };
    let push_all = |wal: Option<FsyncPolicy>| {
        let mut online = fresh_online();
        let dir = std::env::temp_dir().join(format!(
            "aero_bench_wal_{}_{:?}",
            std::process::id(),
            wal
        ));
        std::fs::remove_dir_all(&dir).ok();
        if let Some(fsync) = wal {
            let config = WalConfig { frames_per_segment: 16, fsync, identity: None };
            online.attach_wal(WalWriter::create(&dir, config).unwrap());
        }
        // Shift timestamps forward each rep so every rep's frames are
        // fresh arrivals (re-pushing identical timestamps would measure
        // the cheap duplicate-drop path instead of scoring + WAL).
        let span = frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
        let mut offset = 0.0;
        let per_frame = time_secs(reps, || {
            for (ts, values) in &frames {
                online.push(*ts + offset, values).unwrap();
            }
            offset += span;
        }) / frames.len().max(1) as f64;
        std::fs::remove_dir_all(&dir).ok();
        per_frame
    };
    let wal_off = push_all(None);
    let wal_never = push_all(Some(FsyncPolicy::Never));
    let wal_segment = push_all(Some(FsyncPolicy::EverySegment));

    // --- Degradation ladder: governed per-frame cost at each forced rung.
    // The ladder is pinned (an unreachable up-streak) so the drained queue
    // cannot step the stars back up mid-measurement.
    let ladder_cost = |level: LadderLevel| {
        let online = fresh_online();
        let policy = OverloadPolicy { up_streak: usize::MAX, ..OverloadPolicy::default() };
        let mut gov = StreamGovernor::with_policy(online, policy).unwrap();
        gov.set_fallback(Some(FallbackScorer::new(|w: &[f32]| {
            w.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
        })));
        gov.force_ladder_level(level);
        let span = frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
        let mut offset = 0.0;
        time_secs(reps, || {
            for (ts, values) in &frames {
                gov.offer(*ts + offset, values).unwrap();
                gov.poll().unwrap();
            }
            offset += span;
        }) / frames.len().max(1) as f64
    };
    let ladder_full = ladder_cost(LadderLevel::FullAero);
    let ladder_stage1 = ladder_cost(LadderLevel::Stage1Only);
    let ladder_sr = ladder_cost(LadderLevel::SrFallback);
    let ladder_hold = ladder_cost(LadderLevel::HoldLast);

    // --- Batched cross-star Stage-1 vs per-star over the same streamed
    // frames, single thread (the speedup is the stacked GEMM shape and the
    // tape-free forward, not parallelism). Stage1 modes isolate the
    // rewritten path; the full rows add the (unchanged) Stage-2 GCN. ---
    let span = frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
    let stage1_modes = vec![ScoreMode::Stage1; n];
    let stream_cost = |batched: bool, modes: Option<&[ScoreMode]>| {
        let mut online = fresh_online();
        online.set_batched_inference(batched);
        let mut offset = 0.0;
        time_secs(reps, || {
            for (ts, values) in &frames {
                match modes {
                    Some(m) => online.push_with_modes(*ts + offset, values, m).unwrap(),
                    None => online.push(*ts + offset, values).unwrap(),
                };
            }
            offset += span;
        }) / frames.len().max(1) as f64
    };
    let batched_report = {
        let per_star_stage1 = stream_cost(false, Some(&stage1_modes));
        let batched_stage1 = stream_cost(true, Some(&stage1_modes));
        let per_star_full = stream_cost(false, None);
        let batched_full = stream_cost(true, None);
        BatchedReport {
            stars: n,
            frames_per_sample: frames.len(),
            per_star_stage1_secs_per_frame: per_star_stage1,
            batched_stage1_secs_per_frame: batched_stage1,
            stage1_speedup: speedup_ratio(per_star_stage1, batched_stage1),
            per_star_full_secs_per_frame: per_star_full,
            batched_full_secs_per_frame: batched_full,
            full_speedup: speedup_ratio(per_star_full, batched_full),
        }
    };

    // --- Pipelined push: Stage-1 of frame t overlapping Stage-2 of t−1 on
    // the worker pool, vs sequential pushes at the same thread count. ---
    let pipelined_report = {
        aero_parallel::set_max_threads(args.threads);
        let sequential = stream_cost(true, None);
        let pipelined = {
            let mut online = fresh_online();
            let mut offset = 0.0;
            time_secs(reps, || {
                for (ts, values) in &frames {
                    online.push_pipelined(*ts + offset, values).unwrap();
                }
                online.flush().unwrap();
                offset += span;
            }) / frames.len().max(1) as f64
        };
        aero_parallel::set_max_threads(1);
        PipelinedReport {
            frames_per_sample: frames.len(),
            host_logical_cpus: logical_cpus,
            threads: args.threads,
            sequential_secs_per_frame: sequential,
            pipelined_secs_per_frame: pipelined,
            overlap_speedup: (logical_cpus > 1)
                .then(|| speedup_ratio(sequential, pipelined)),
            note: (logical_cpus <= 1).then_some("skipped_single_cpu"),
        }
    };

    // --- Steady-state allocation profile of the streaming scoring path
    // (single thread; pool warm-up is two full passes over the frames). ---
    let streaming_allocs = {
        let mut online = fresh_online();
        let span = frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
        let mut offset = 0.0;
        for _ in 0..2 {
            for (ts, values) in &frames {
                online.push(*ts + offset, values).unwrap();
            }
            offset += span;
        }
        workspace::reset_stats();
        let before = allocs_now();
        for (ts, values) in &frames {
            online.push(*ts + offset, values).unwrap();
        }
        let heap_delta = allocs_now() - before;
        let stats = workspace::stats();
        AllocReport {
            warmup_pushes: frames.len() * 2,
            measured_pushes: frames.len(),
            heap_allocs_per_push: heap_delta as f64 / frames.len().max(1) as f64,
            tensor_buffer_misses: stats.buffer_misses,
            graph_tape_misses: stats.tape_misses,
        }
    };

    // --- Fleet scaling: coordinator offer+poll throughput vs shard count.
    // Each shard trains its own model over exactly its member stars (the
    // shared-nothing contract), so the per-count setup cost is one full
    // catalog's training split across the shards; only streaming is timed.
    aero_parallel::set_max_threads(args.threads);
    let fleet_rows: Vec<FleetScalingRow> = [1usize, 2, 4, 8]
        .iter()
        .filter(|&&shards| shards <= n)
        .map(|&shards| {
            let catalog = StarCatalog::sequential(n);
            let assignment = ShardAssignment::partition(&catalog, shards, 7).unwrap();
            let train = ds.train.clone();
            let smoke = args.smoke;
            let factory: ShardFactory = Arc::new(move |members: &[usize]| {
                let slice = train
                    .select_variates(members)
                    .map_err(|e| aero_core::DetectorError::Invalid(e.to_string()))?;
                let mut model = Aero::new(model_config(smoke))?;
                model.fit(&slice)?;
                // A 3-star shard's short calibration slice has too few tail
                // peaks for the default 0.99 POT level; throughput, not
                // detection quality, is what this section measures.
                let pot = PotConfig { level: 0.95, ..PotConfig::default() };
                OnlineAero::with_policy(model, &slice, pot, DegradePolicy::default())
            });
            let config = FleetConfig { seed: 7, ..FleetConfig::default() };
            let mut fleet =
                FleetCoordinator::new(catalog, assignment, factory, None, config).unwrap();
            let span =
                frames.last().map_or(1.0, |f| f.0) - frames.first().map_or(0.0, |f| f.0) + 1.0;
            let mut offset = 0.0;
            let secs_per_frame = time_secs(reps, || {
                for (ts, values) in &frames {
                    fleet.offer(*ts + offset, values).unwrap();
                    fleet.poll().unwrap();
                }
                fleet.drain().unwrap();
                offset += span;
            }) / frames.len().max(1) as f64;
            FleetScalingRow {
                shards,
                host_logical_cpus: logical_cpus,
                secs_per_frame,
                frames_per_sec: if secs_per_frame > 0.0 { 1.0 / secs_per_frame } else { 0.0 },
                note: (logical_cpus <= 1 && shards > 1).then_some("skipped_single_cpu"),
            }
        })
        .collect();
    aero_parallel::set_max_threads(1);

    // --- Migration pause: a migrate-live night starting from the epoch-1
    // LPT plan with one star pair swapped between shards 0 and 1, so the
    // first epoch boundary executes a real two-phase handoff. Each
    // offer+poll tick is timed; the handoff tick is spotted by the
    // stars_moved counter advancing across it. ---
    aero_parallel::set_max_threads(args.threads);
    let migration_pause = {
        let shards = 2usize;
        let catalog = StarCatalog::sequential(n);
        let uniform = vec![1u64; n];
        let planned = ShardAssignment::rebalance(&catalog, shards, 7, &uniform, 1).unwrap();
        let mut shard_of = planned.shard_map().to_vec();
        let a = shard_of.iter().position(|&s| s == 0).unwrap();
        let b = shard_of.iter().position(|&s| s == 1).unwrap();
        shard_of.swap(a, b);
        let assignment = ShardAssignment::from_plan(&catalog, shards, shard_of, 0).unwrap();
        let train = ds.train.clone();
        let smoke = args.smoke;
        let factory: ShardFactory = Arc::new(move |members: &[usize]| {
            let slice = train
                .select_variates(members)
                .map_err(|e| aero_core::DetectorError::Invalid(e.to_string()))?;
            let mut model = Aero::new(model_config(smoke))?;
            model.fit(&slice)?;
            let pot = PotConfig { level: 0.95, ..PotConfig::default() };
            OnlineAero::with_policy(model, &slice, pot, DegradePolicy::default())
        });
        let wal_root =
            std::env::temp_dir().join(format!("aero_bench_migrate_{}", std::process::id()));
        std::fs::remove_dir_all(&wal_root).ok();
        let epoch_frames = frames.len() / 2;
        let config = FleetConfig {
            seed: 7,
            epoch_frames,
            wal_root: Some(wal_root.clone()),
            wal: WalConfig { frames_per_segment: 64, fsync: FsyncPolicy::Never, identity: None },
            migrate_live: true,
            ..FleetConfig::default()
        };
        let mut fleet =
            FleetCoordinator::new(catalog, assignment, factory, None, config).unwrap();
        let mut ticks: Vec<(f64, bool)> = Vec::with_capacity(frames.len());
        for (ts, values) in &frames {
            let moved_before = fleet.stars_moved();
            let t0 = Instant::now();
            fleet.offer(*ts, values).unwrap();
            fleet.poll().unwrap();
            let secs = t0.elapsed().as_secs_f64();
            ticks.push((secs, fleet.stars_moved() != moved_before));
        }
        fleet.drain().unwrap();
        let stars_moved = fleet.stars_moved();
        drop(fleet);
        std::fs::remove_dir_all(&wal_root).ok();
        let mut steady: Vec<f64> =
            ticks.iter().filter(|&&(_, handoff)| !handoff).map(|&(secs, _)| secs).collect();
        steady.sort_by(f64::total_cmp);
        let pct = |p: f64| {
            let idx = ((steady.len().max(1) - 1) as f64 * p).round() as usize;
            steady.get(idx).copied().unwrap_or(0.0)
        };
        let handoff_secs =
            ticks.iter().filter(|&&(_, h)| h).map(|&(s, _)| s).fold(0.0f64, f64::max);
        let p50 = pct(0.50);
        MigrationPauseReport {
            frames_per_sample: frames.len(),
            stars: n,
            shards,
            epoch_frames,
            stars_moved,
            steady_p50_tick_secs: p50,
            steady_p99_tick_secs: pct(0.99),
            handoff_tick_secs: handoff_secs,
            pause_ratio_vs_steady_p50: if p50 > 0.0 { handoff_secs / p50 } else { 0.0 },
            note: (stars_moved == 0).then_some("no_migration_executed"),
        }
    };
    aero_parallel::set_max_threads(1);

    // --- Resident-service wire throughput: the `aero serve` loop behind a
    // real loopback listener, driven by 1 / 4 / 16 concurrent connections
    // sending one-frame Ingest batches. Quotas are opened wide so admission
    // control is not the bottleneck being measured. ---
    aero_parallel::set_max_threads(args.threads);
    let serve_frames = frames.clone();
    let serve_rows: Vec<ServeThroughputRow> = [1usize, 4, 16]
        .iter()
        .map(|&conns| {
            use aero_core::serve::{self, WireFrame, WireMsg};
            let policy = OverloadPolicy {
                queue_capacity: 256,
                high_watermark: 128,
                low_watermark: 32,
                tenant_quota: Some(aero_core::TenantQuota {
                    burst: 4096,
                    refill_per_poll: 64,
                }),
                ..OverloadPolicy::default()
            };
            let mut gov = StreamGovernor::with_policy(fresh_online(), policy).unwrap();
            gov.set_fallback(Some(FallbackScorer::new(|w: &[f32]| {
                w.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
            })));
            let core =
                serve::ServeCore::new(gov, serve::ServeOptions { verdict_log: None }).unwrap();
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let server = std::thread::spawn(move || {
                serve::serve(listener, core, serve::ServeConfig::default(), shutdown).unwrap()
            });

            let span =
                serve_frames.last().map_or(1.0, |f| f.0) - serve_frames.first().map_or(0.0, |f| f.0)
                    + 1.0;
            let t0 = Instant::now();
            let clients: Vec<_> = (0..conns)
                .map(|c| {
                    let frames = serve_frames.clone();
                    std::thread::spawn(move || {
                        let mut client = ServeClient::connect(addr, c as u32);
                        let mut latencies = Vec::with_capacity(frames.len());
                        let mut admitted = 0usize;
                        // Distinct timestamp lanes per connection so every
                        // admitted frame is a fresh arrival, not a duplicate.
                        let offset = span * (c + 1) as f64;
                        for (seq, (ts, values)) in frames.iter().enumerate() {
                            let msg = WireMsg::Ingest {
                                seq: seq as u64,
                                frames: vec![WireFrame {
                                    timestamp: *ts + offset,
                                    values: values.clone(),
                                }],
                            };
                            let sent = Instant::now();
                            client.send(&msg);
                            match client.recv() {
                                WireMsg::Ack { admitted: a, .. } => admitted += a as usize,
                                WireMsg::Reject { admitted: a, .. } => admitted += a as usize,
                                other => panic!("unexpected reply: {other:?}"),
                            }
                            latencies.push(sent.elapsed().as_secs_f64());
                        }
                        (latencies, admitted)
                    })
                })
                .collect();
            let mut latencies = Vec::new();
            let mut admitted = 0usize;
            for c in clients {
                let (l, a) = c.join().unwrap();
                latencies.extend(l);
                admitted += a;
            }
            let elapsed = t0.elapsed().as_secs_f64();

            let mut drainer = ServeClient::connect(addr, 0);
            drainer.send(&WireMsg::Drain);
            match drainer.recv() {
                WireMsg::DrainAck(_) => {}
                other => panic!("expected DrainAck, got {other:?}"),
            }
            server.join().unwrap();

            latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
            let sent = serve_frames.len() * conns;
            ServeThroughputRow {
                connections: conns,
                frames_sent: sent,
                frames_admitted: admitted,
                frames_per_sec: if elapsed > 0.0 { sent as f64 / elapsed } else { 0.0 },
                p50_admission_latency_secs: pct(0.50),
                p99_admission_latency_secs: pct(0.99),
            }
        })
        .collect();
    aero_parallel::set_max_threads(1);

    // --- Memory at scale: shared frozen backbone + per-star deltas vs one
    // full model per star (DESIGN.md §17). Runs last so the process-global
    // int8 opt-in flipped for the quantized-rung rows cannot leak into the
    // timing sections above (it is reset afterwards regardless). ---
    let memory_at_scale = {
        use std::collections::HashSet;

        let mut cfg = model_config(args.smoke);
        cfg.adapter_rank = 2;
        let mut mono = Aero::new(cfg.clone()).unwrap();
        mono.fit(&ds.train).unwrap();
        let backbone = mono.backbone().unwrap();
        let n_train = ds.train.num_variates();
        let deltas_for = |stars: usize| -> Vec<aero_core::StarDelta> {
            (0..stars).map(|v| mono.star_delta(v % n_train).unwrap()).collect()
        };

        let fleet_stars = 256usize;
        let deltas = deltas_for(fleet_stars);
        // Shared arm: the trunk's Arc'd matrices count once for the fleet.
        let shared = Aero::from_backbone(&backbone, &deltas).unwrap();
        let shared_total = shared.resident_bytes(&mut HashSet::new());
        // Per-star arm: a fresh dedup set per detector counts the trunk
        // once per detector — what N independent full models would pin.
        let single = Aero::from_backbone(&backbone, &deltas[..1]).unwrap();
        let per_star_full = single.resident_bytes(&mut HashSet::new());
        // Dedup witness: a second fleet behind the *same* set adds deltas
        // only.
        let mut seen = HashSet::new();
        let _first = shared.resident_bytes(&mut seen);
        let second_fleet = Aero::from_backbone(&backbone, &deltas).unwrap();
        let marginal = second_fleet.resident_bytes(&mut seen);

        let shared_per_star = shared_total as f64 / fleet_stars as f64;
        let estimate = aero_core::shared_fleet_memory(&cfg, fleet_stars);
        let rel_err = (estimate.total_bytes() as f64 - shared_total as f64).abs()
            / shared_total.max(1) as f64;

        let full_model_bytes = aero_core::aero_inference_memory(&cfg, 1).total_bytes();
        let memory_curve = [64usize, 256, 1024, 16_384, 262_144, 1_000_000]
            .iter()
            .map(|&stars| {
                let modeled = aero_core::shared_fleet_memory(&cfg, stars);
                let measured = (stars <= 1024).then(|| {
                    Aero::from_backbone(&backbone, &deltas_for(stars))
                        .unwrap()
                        .resident_bytes(&mut HashSet::new())
                });
                MemoryCurveRow {
                    stars,
                    shared_total_bytes_measured: measured,
                    shared_total_bytes_modeled: modeled.total_bytes(),
                    per_star_full_total_bytes_modeled: full_model_bytes.saturating_mul(stars),
                    shared_bytes_per_star_modeled: modeled.bytes_per_star(),
                }
            })
            .collect();

        // Quantized rung: per-frame cost of an all-Stage1 frame, f32 vs
        // int8, over the same streamed frames as the ladder rows.
        let rung_cost = |quant: bool| {
            let mut online = fresh_online();
            online.set_quantized_rungs(quant);
            let mut offset = 0.0;
            time_secs(reps, || {
                for (ts, values) in &frames {
                    online.push_with_modes(*ts + offset, values, &stage1_modes).unwrap();
                }
                offset += span;
            }) / frames.len().max(1) as f64
        };
        let f32_rung = rung_cost(false);
        let int8_rung = rung_cost(true);
        // The int8 rung flipped the process-wide opt-in; drop it before the
        // drift arms so the f32 reference stays on the pinned path.
        aero_tensor::set_quant(false);

        // Drift envelope of a mixed Full/Stage1 frame, int8 vs f32 (the
        // backbone.rs gates assert all-Full stays bitwise; this records the
        // measured Stage1 envelope the 0.2/0.02 gates bound).
        let mut mixed = vec![ScoreMode::Full; n];
        for (v, m) in mixed.iter_mut().enumerate() {
            if v % 2 == 1 {
                *m = ScoreMode::Stage1;
            }
        }
        let small = deltas_for(n);
        let mut f32_arm = Aero::from_backbone(&backbone, &small).unwrap();
        f32_arm.set_quantized(false);
        let reference = f32_arm.score_with_modes(&ds.test, &mixed).unwrap();
        let mut int8_arm = Aero::from_backbone(&backbone, &small).unwrap();
        int8_arm.set_quantized(true);
        let got = int8_arm.score_with_modes(&ds.test, &mixed).unwrap();
        aero_tensor::set_quant(false);
        let mut worst = 0.0f32;
        let mut sum = 0.0f64;
        for (a, b) in reference.as_slice().iter().zip(got.as_slice()) {
            let d = (a - b).abs();
            worst = worst.max(d);
            sum += f64::from(d);
        }
        let mean = sum / reference.as_slice().len().max(1) as f64;

        MemoryAtScaleReport {
            stars_measured: fleet_stars,
            shared_total_bytes_measured: shared_total,
            per_star_full_model_bytes_measured: per_star_full,
            shared_bytes_per_star: shared_per_star,
            bytes_per_star_reduction: per_star_full as f64 / shared_per_star.max(1.0),
            second_fleet_marginal_bytes_measured: marginal,
            model_vs_measured_rel_err: rel_err,
            memory_curve,
            quantized_rung: QuantRungReport {
                frames_per_sample: frames.len(),
                stage1_f32_secs_per_frame: f32_rung,
                stage1_int8_secs_per_frame: int8_rung,
                int8_saving_ratio: speedup_ratio(f32_rung, int8_rung),
                mixed_frame_worst_abs_drift: worst,
                mixed_frame_mean_abs_drift: mean,
            },
        }
    };

    let speedup = speedup_ratio;
    let single_cpu = logical_cpus <= 1;
    let cpu_note = single_cpu.then_some("skipped_single_cpu");
    let stage = |one: f64, many: f64| StageReport {
        host_logical_cpus: logical_cpus,
        secs_1t: one,
        secs_nt: many,
        thread_speedup: (!single_cpu).then(|| speedup_ratio(one, many)),
        note: cpu_note,
    };
    let report = Report {
        benchmark: "parallel substrate + blocked GEMM",
        mode: if args.smoke { "smoke" } else { "full" },
        host_logical_cpus: logical_cpus,
        threads_parallel_variant: args.threads,
        reps_per_sample: reps,
        cpu: CpuReport {
            arch: std::env::consts::ARCH,
            avx2: Backend::Avx2.is_supported(),
            avx512f: Backend::Avx512.is_supported(),
            neon: Backend::Neon.is_supported(),
            force_scalar_env: aero_tensor::force_scalar_env(),
            detected_backend: detected.name(),
            active_backend: aero_tensor::backend().name(),
        },
        gemm: GemmReport {
            size: format!("{gemm_n}x{gemm_n}x{gemm_n}"),
            naive_1t_secs: gemm_naive,
            scalar_1t_secs: gemm_scalar_1t,
            simd_backend: simd.map_or("none", Backend::name),
            simd_1t_secs: gemm_simd_1t,
            blocked_nt_secs: gemm_blocked_nt,
            scalar_speedup_vs_naive_1t: speedup(gemm_naive, gemm_scalar_1t),
            simd_speedup_vs_scalar_1t: gemm_simd_1t.map(|s| speedup(gemm_scalar_1t, s)),
            host_logical_cpus: logical_cpus,
            thread_speedup: (!single_cpu).then(|| speedup_ratio(gemm_blocked_1t, gemm_blocked_nt)),
            note: cpu_note,
        },
        fit_stage1: stage(fit_1t, fit_nt),
        score_window: stage(score_1t, score_nt),
        e2e_detect: stage(e2e_1t, e2e_nt),
        batched_inference: batched_report,
        pipelined_push: pipelined_report,
        streaming_allocs,
        memory_at_scale,
        wal_overhead: WalReport {
            frames_per_sample: frames.len(),
            push_no_wal_secs_per_frame: wal_off,
            push_wal_fsync_never_secs_per_frame: wal_never,
            push_wal_fsync_segment_secs_per_frame: wal_segment,
            wal_never_overhead_ratio: speedup(wal_never, wal_off),
            wal_segment_overhead_ratio: speedup(wal_segment, wal_off),
        },
        degradation_ladder: LadderReport {
            frames_per_sample: frames.len(),
            full_aero_secs_per_frame: ladder_full,
            stage1_only_secs_per_frame: ladder_stage1,
            sr_fallback_secs_per_frame: ladder_sr,
            hold_last_secs_per_frame: ladder_hold,
            stage1_saving_ratio: speedup(ladder_full, ladder_stage1),
            hold_last_saving_ratio: speedup(ladder_full, ladder_hold),
        },
        fleet_scaling: FleetScalingReport {
            frames_per_sample: frames.len(),
            stars: n,
            rows: fleet_rows,
        },
        migration_pause,
        serve_throughput: ServeThroughputReport {
            frames_per_connection: frames.len(),
            rows: serve_rows,
        },
    };
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&args.out, format!("{pretty}\n")).expect("writing the benchmark report");
    println!("{pretty}");
    eprintln!("wrote {}", args.out);
}
