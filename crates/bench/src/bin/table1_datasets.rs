//! Table I — dataset statistics for all six benchmark datasets.
//!
//! Usage: `cargo run -p bench --release --bin table1_datasets`
//! (add `--skip-astrosets` to only build the three synthetic sets).

use aero_datagen::{astroset_suite, synthetic_suite};

fn main() {
    let skip_astro = std::env::args().any(|a| a == "--skip-astrosets");

    println!("Table I — dataset statistics (paper values in DESIGN.md / EXPERIMENTS.md)");
    println!(
        "{:<17} {:>7} {:>7} {:>5} {:>10} {:>8} {:>7} {:>9} {:>8}",
        "Dataset", "#train", "#test", "#var", "Anomaly(%)", "Noise(%)", "A/N", "#Segments", "NoiseVar"
    );
    println!("{}", "-".repeat(90));

    let mut datasets = synthetic_suite();
    if !skip_astro {
        datasets.extend(astroset_suite());
    }
    for ds in &datasets {
        ds.validate().expect("dataset invariants");
        let s = ds.stats();
        println!(
            "{:<17} {:>7} {:>7} {:>5} {:>10.3} {:>8.3} {:>7.3} {:>9} {:>8}",
            s.name,
            s.train_len,
            s.test_len,
            s.variates,
            s.anomaly_pct,
            s.noise_pct,
            s.a_n_ratio,
            s.anomaly_segments,
            s.noise_variates
        );
    }
}
