//! Fig. 8 — visualization of learned window-wise graph structures against
//! the ground-truth concurrent-noise co-occurrence graph.
//!
//! Trains AERO on SyntheticMiddle, then renders (a)–(c) learned adjacency
//! matrices at three timestamps and (d) the ground-truth graph (stars m, n
//! connected iff concurrent noise ever hits both simultaneously).
//!
//! Usage: `cargo run -p bench --release --bin fig8_graph_viz`

use aero_core::{Aero, Detector};
use aero_datagen::SyntheticConfig;
use aero_tensor::Matrix;
use bench::{ascii_heatmap, Profile};

fn main() {
    let profile = Profile::from_args();
    let ds = profile.prepare(&SyntheticConfig::middle().build());
    let n = ds.num_variates();

    let mut aero = Aero::new(profile.aero_config()).expect("config");
    aero.fit(&ds.train).expect("fit");

    // Pick three window ends centred on noise events in the test split.
    let noise_segments = ds.test_noise.segments();
    let w = aero.config().window;
    let mut picks: Vec<usize> = noise_segments
        .iter()
        .map(|s| (s.start + s.len() / 2).max(w).min(ds.test.len() - 1))
        .collect();
    picks.sort_unstable();
    picks.dedup();
    let picks: Vec<usize> = picks.into_iter().take(3).collect();

    println!("\nFig. 8 — window-wise graphs (learned) vs ground truth\n");
    for (i, &end) in picks.iter().enumerate() {
        let adj = aero.window_graph(&ds.test, end).expect("graph");
        println!("({}) learned graph at test timestamp {end}:", (b'a' + i as u8) as char);
        println!("{}", ascii_heatmap(&adj));
    }

    // Ground truth: edge (m, n) = 1 iff some timestamp has noise on both.
    let mut truth = Matrix::zeros(n, n);
    for t in 0..ds.test.len() {
        for m in 0..n {
            if !ds.test_noise.get(m, t) {
                continue;
            }
            for k in 0..n {
                if k != m && ds.test_noise.get(k, t) {
                    truth.set(m, k, 1.0);
                }
            }
        }
    }
    println!("(d) ground-truth concurrent-noise co-occurrence graph:");
    println!("{}", ascii_heatmap(&truth));

    // Quantitative check: mean learned similarity on true-noise pairs vs
    // non-noise pairs at the picked windows.
    let mut on = (0.0f64, 0usize);
    let mut off = (0.0f64, 0usize);
    for &end in &picks {
        let adj = aero.window_graph(&ds.test, end).expect("graph");
        for m in 0..n {
            for k in 0..n {
                if m == k {
                    continue;
                }
                let both_noisy = ds.test_noise.get(m, end) && ds.test_noise.get(k, end);
                let v = adj.get(m, k) as f64;
                if both_noisy {
                    on = (on.0 + v, on.1 + 1);
                } else {
                    off = (off.0 + v, off.1 + 1);
                }
            }
        }
    }
    if on.1 > 0 && off.1 > 0 {
        println!(
            "mean learned similarity: noise-pairs {:.3} vs other pairs {:.3}",
            on.0 / on.1 as f64,
            off.0 / off.1 as f64
        );
    }
}
