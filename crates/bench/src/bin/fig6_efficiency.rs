//! Fig. 6 — model efficiency: training time per epoch and total test time
//! for every learned method on SyntheticMiddle. (SR is excluded from the
//! paper's training plot because it does not train; we report its test time
//! only, as the paper does.)
//!
//! Usage: `cargo run -p bench --release --bin fig6_efficiency [--paper]`

use aero_datagen::SyntheticConfig;
use bench::{full_suite, run_one, Profile};

fn main() {
    let profile = Profile::from_args();
    eprintln!("profile: {profile:?}");
    let dataset = profile.prepare(&SyntheticConfig::middle().build());

    println!("\nFig. 6 — efficiency on SyntheticMiddle ({profile:?} profile)\n");
    println!("{:<10} {:>14} {:>14}", "Method", "train (s)", "test (s)");
    println!("{}", "-".repeat(40));
    let mut rows = Vec::new();
    for detector in full_suite(profile).iter_mut() {
        let name = detector.name();
        match run_one(detector.as_mut(), &dataset) {
            Ok(out) => {
                println!(
                    "{:<10} {:>14.2} {:>14.2}",
                    name, out.timing.train_secs, out.timing.test_secs
                );
                rows.push((name, out.timing));
            }
            Err(e) => println!("{name:<10} FAILED: {e}"),
        }
    }
    if let Some(fastest) = rows
        .iter()
        .filter(|(n, _)| n != "SR" && n != "TM" && n != "SPOT" && n != "FluxEV")
        .min_by(|a, b| a.1.train_secs.partial_cmp(&b.1.train_secs).unwrap())
    {
        println!("\nfastest learned trainer: {}", fastest.0);
    }
}
