//! Internal diagnostic: separates AERO's score quality from POT
//! thresholding on SyntheticMiddle (not a paper artifact).

use aero_core::{Aero, Detector};
use aero_datagen::SyntheticConfig;
use aero_eval::{best_f1_threshold, evaluate_point_adjusted, threshold_scores};
use aero_evt::pot_threshold;
use bench::{paper_pot, Profile};

fn main() {
    let profile = Profile::from_args();
    let base = if std::env::args().any(|a| a == "--low") {
        SyntheticConfig::low()
    } else {
        SyntheticConfig::middle()
    };
    let ds = profile.prepare(&base.build());
    let mut aero = Aero::new(profile.aero_config()).expect("config");
    let t0 = std::time::Instant::now();
    let fit_prefix = ds.train.split_at(ds.train.len() - ds.train.len() / 5).expect("split").0;
    aero.fit(&fit_prefix).expect("fit");
    eprintln!("fit in {:.1}s; stage1 {:?}", t0.elapsed().as_secs_f64(), aero.stage1_history.epoch_losses);
    eprintln!("stage2 {:?}", aero.stage2_history.epoch_losses);

    let calib = aero.score(&ds.train).expect("calib");
    let warm = aero.warmup();
    // Mimic run_detection's holdout: calibrate on the last 20% only.
    let split = if std::env::args().any(|a| a == "--full-calib") { 0 } else { ds.train.len() - ds.train.len() / 5 };
    let mut flat: Vec<f32> = Vec::new();
    for r in 0..calib.rows() { flat.extend_from_slice(&calib.row(r)[split.max(warm)..]); }
    let pot = pot_threshold(&flat, paper_pot()).expect("POT calibration");
    eprintln!("POT: u={:.4} z={:.4} gamma={:.3} peaks={}", pot.initial, pot.threshold, pot.gamma, pot.peaks);

    let (e1, _) = aero.stage_scores(&ds.test).expect("scores");
    let e2 = aero.score(&ds.test).expect("score");
    for (label, scores) in [("stage1-only", &e1), ("final", &e2)] {
        let pred = threshold_scores(scores, pot.threshold);
        let m = evaluate_point_adjusted(&pred, &ds.test_labels);
        let (bt, bm) = best_f1_threshold(scores, &ds.test_labels, 200);
        eprintln!("{label}: POT F1={:.2}% (P={:.2} R={:.2}) | best-F1={:.2}% at thr {:.4}",
            m.f1*100.0, m.precision*100.0, m.recall*100.0, bm.f1*100.0, bt);
    }

    // Train-vs-test normal score distribution shift.
    let mut train_scores: Vec<f32> = flat.clone();
    train_scores.sort_by(|a,b| a.partial_cmp(b).unwrap());
    let q = |v: &Vec<f32>, p: f64| v[((v.len()-1) as f64 * p) as usize];
    let mut test_normal: Vec<f32> = Vec::new();
    for v in 0..ds.num_variates() {
        for t in warm..ds.test.len() {
            if !ds.test_labels.get(v,t) && !ds.test_noise.get(v,t) {
                test_normal.push(e2.get(v,t));
            }
        }
    }
    test_normal.sort_by(|a,b| a.partial_cmp(b).unwrap());
    // Per-quarter mean of test scores (drift with position?).
    let quarters: Vec<f32> = (0..4).map(|qi| {
        let lo = warm.max(qi * ds.test.len() / 4);
        let hi = (qi + 1) * ds.test.len() / 4;
        let mut acc = (0.0f64, 0usize);
        for v in 0..ds.num_variates() {
            for t in lo..hi { acc = (acc.0 + e2.get(v, t) as f64, acc.1 + 1); }
        }
        (acc.0 / acc.1.max(1) as f64) as f32
    }).collect();
    eprintln!("test score mean by quarter: {quarters:?}");
    eprintln!("holdout scores: mean {:.4} q50 {:.4} q99 {:.4} q999 {:.4}",
        train_scores.iter().sum::<f32>()/train_scores.len() as f32,
        q(&train_scores,0.5), q(&train_scores,0.99), q(&train_scores,0.999));
    eprintln!("test normal : mean {:.4} q50 {:.4} q99 {:.4} q999 {:.4}",
        test_normal.iter().sum::<f32>()/test_normal.len() as f32,
        q(&test_normal,0.5), q(&test_normal,0.99), q(&test_normal,0.999));

    // FP census at the POT threshold.
    let thr = pot.threshold as f32;
    let (mut fp_noise, mut fp_normal) = (0usize, 0usize);
    for v in 0..ds.num_variates() {
        for t in warm..ds.test.len() {
            if e2.get(v, t) >= thr && !ds.test_labels.get(v, t) {
                if ds.test_noise.get(v, t) { fp_noise += 1; } else { fp_normal += 1; }
            }
        }
    }
    eprintln!("FP census: {fp_noise} on noise points, {fp_normal} on normal points");

    // Are high normal scores concentrated in noise-carrying windows?
    let omega = aero.config().effective_short_window();
    let mut in_noise_win: Vec<f32> = Vec::new();
    let mut clean_win: Vec<f32> = Vec::new();
    for t in warm..ds.test.len() {
        let block = (t / omega) * omega;
        let block_end = (block + omega).min(ds.test.len());
        let window_has_noise = (0..ds.num_variates())
            .any(|v| (block..block_end).any(|u| ds.test_noise.get(v, u)));
        for v in 0..ds.num_variates() {
            if ds.test_labels.get(v, t) || ds.test_noise.get(v, t) { continue; }
            if window_has_noise { in_noise_win.push(e2.get(v, t)); }
            else { clean_win.push(e2.get(v, t)); }
        }
    }
    let sortq = |v: &mut Vec<f32>, p: f64| { v.sort_by(|a,b| a.partial_cmp(b).unwrap()); v[((v.len()-1) as f64 * p) as usize] };
    let (mut a, mut b) = (in_noise_win, clean_win);
    eprintln!("normal scores in noise windows: n={} q99={:.4} q999={:.4}", a.len(), sortq(&mut a, 0.99), sortq(&mut a, 0.999));
    eprintln!("normal scores in clean windows: n={} q99={:.4} q999={:.4}", b.len(), sortq(&mut b, 0.99), sortq(&mut b, 0.999));

    // Mean scores by class.
    let mut anom=(0.0f64,0usize); let mut noise=(0.0f64,0usize); let mut normal=(0.0f64,0usize);
    for v in 0..ds.num_variates() {
        for t in warm..ds.test.len() {
            let s = e2.get(v,t) as f64;
            if ds.test_labels.get(v,t) { anom=(anom.0+s,anom.1+1); }
            else if ds.test_noise.get(v,t) { noise=(noise.0+s,noise.1+1); }
            else { normal=(normal.0+s,normal.1+1); }
        }
    }
    eprintln!("mean final score: anomaly {:.4} | noise {:.4} | normal {:.4}",
        anom.0/anom.1 as f64, noise.0/noise.1 as f64, normal.0/normal.1 as f64);
}
