//! Fig. 7 — scalability: memory footprint and inference time versus star
//! count N ∈ {24, 48, 96, 192, 384, 960}.
//!
//! Memory uses the deterministic byte-accounting model (DESIGN.md §1: the
//! paper measured GPU memory; we expose the same growth shapes). Inference
//! time is measured on generated datasets of each size.
//!
//! Usage: `cargo run -p bench --release --bin fig7_scalability`

use aero_core::{aero_memory, baseline_memory, Aero, Detector};
use aero_datagen::SyntheticConfig;
use bench::Profile;

fn main() {
    let profile = Profile::from_args();
    let cfg = profile.aero_config();
    let star_counts = [24usize, 48, 96, 192, 384, 960];

    println!("\nFig. 7a — memory model (MiB) vs number of stars\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "N", "AERO", "TranAD", "ESG", "GDN"
    );
    for &n in &star_counts {
        let mib = |b: usize| b as f64 / (1024.0 * 1024.0);
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            n,
            aero_memory(&cfg, n).total_mib(),
            mib(baseline_memory("TranAD", &cfg, n)),
            mib(baseline_memory("ESG", &cfg, n)),
            mib(baseline_memory("GDN", &cfg, n)),
        );
    }

    println!("\nFig. 7b — AERO inference time (s) vs number of stars\n");
    println!("{:>6} {:>12} {:>16}", "N", "infer (s)", "per star (ms)");
    // Measured inference: small series per N, single quick training.
    let timing_counts = [24usize, 48, 96, 192];
    for &n in &timing_counts {
        let mut dcfg = SyntheticConfig::middle();
        dcfg.variates = n;
        dcfg.noise_variates = (n * 2) / 3;
        dcfg.train_len = 400;
        dcfg.test_len = 400;
        let ds = dcfg.build();
        let mut acfg = profile.aero_config();
        acfg.window = 100.min(acfg.window);
        acfg.short_window = 30.min(acfg.short_window);
        acfg.max_epochs = 1;
        acfg.train_stride = 100;
        let mut aero = Aero::new(acfg).expect("config");
        aero.fit(&ds.train).expect("fit");
        let t0 = std::time::Instant::now();
        let _ = aero.score(&ds.test).expect("score");
        let secs = t0.elapsed().as_secs_f64();
        println!("{:>6} {:>12.2} {:>16.3}", n, secs, secs * 1000.0 / n as f64);
    }
    println!("\n(larger N are extrapolable: inference cost is linear in N;");
    println!(" the paper also stops at 960 and notes real fields stay < 500)");
}
