//! DESIGN.md §5 ablations — the implementation choices this reproduction
//! adds on top of the paper's equations, each evaluated on SyntheticMiddle:
//!
//! * GCN features: stage-1 errors (default) vs. the literal Eq. 14 raw
//!   window;
//! * amplitude matching: on (default) vs. off;
//! * graph edge threshold: 0.5 (default) vs. 0.0;
//! * scoring windows: half-overlap min-combine (default) vs. disjoint
//!   (emulated with score smoothing off / noise iterations 1).
//!
//! Usage: `cargo run -p bench --release --bin design_ablations`

use aero_core::{Aero, AeroConfig, NoiseFeatures};
use aero_datagen::SyntheticConfig;
use aero_eval::ResultTable;
use bench::{run_one, Profile};

fn main() {
    let profile = Profile::from_args();
    let ds = profile.prepare(&SyntheticConfig::middle().build());
    let base = profile.aero_config();

    let variants: Vec<(&str, AeroConfig)> = vec![
        ("default", base.clone()),
        (
            "features=window (literal Eq.14)",
            AeroConfig { noise_features: NoiseFeatures::Window, ..base.clone() },
        ),
        (
            "no amplitude matching",
            AeroConfig { amplitude_matching: false, ..base.clone() },
        ),
        ("edge threshold 0.0", AeroConfig { edge_threshold: 0.0, ..base.clone() }),
        ("single noise iteration", AeroConfig { noise_iterations: 1, ..base.clone() }),
        ("score smoothing w=5", AeroConfig { score_smoothing: 5, ..base.clone() }),
    ];

    let mut table = ResultTable::new();
    for (label, cfg) in variants {
        match Aero::new(cfg) {
            Ok(mut model) => match run_one(&mut model, &ds) {
                Ok(out) => table.push(label, ds.name.clone(), out.metrics),
                Err(e) => eprintln!("{label} failed: {e}"),
            },
            Err(e) => eprintln!("{label} invalid: {e}"),
        }
    }
    println!("\nDESIGN.md §5 ablations on {}\n", ds.name);
    println!("{}", table.render());
}
