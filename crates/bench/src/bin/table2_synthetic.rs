//! Table II — precision/recall/F1 of all 12 methods on the three synthetic
//! datasets (POT thresholding, point-adjust protocol).
//!
//! Usage: `cargo run -p bench --release --bin table2_synthetic [--paper]`
//! `--paper` uses the paper-scale hyperparameters; the default fast profile
//! reproduces the result *shape* at laptop cost.

use aero_datagen::synthetic_suite;
use bench::{run_suite, Profile};

fn main() {
    let profile = Profile::from_args();
    eprintln!("profile: {profile:?}");
    let datasets = synthetic_suite();
    let table = run_suite(profile, &datasets);
    println!("\nTable II — synthetic datasets ({profile:?} profile)\n");
    println!("{}", table.render());
    for method in table.methods() {
        if let Some(f1) = table.mean_f1(&method) {
            println!("mean F1 {:>9}: {:.2}%", method, f1 * 100.0);
        }
    }
    if let Some(path) = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone())
    {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        table.write_json(std::path::Path::new(&path)).expect("write json");
        eprintln!("wrote {path}");
    }
}
