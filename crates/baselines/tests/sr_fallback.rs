//! Wires the spectral-residual baseline into the stream governor's
//! `SrFallback` rung: under overload, stars degraded off the model are
//! scored by SR over their buffered window instead of going dark.
//!
//! Lives in `aero-baselines` because the dependency points this way:
//! `aero-core` cannot name `SpectralResidual`, so the governor takes the
//! scorer as an injected closure ([`FallbackScorer`]).

use aero_baselines::SpectralResidual;
use aero_core::{
    Aero, AeroConfig, Detector, FallbackScorer, LadderLevel, OnlineAero, OverloadPolicy,
    StreamGovernor,
};
use aero_datagen::SyntheticConfig;
use aero_evt::PotConfig;

fn trained_online() -> (OnlineAero, aero_timeseries::Dataset) {
    let ds = SyntheticConfig::tiny(500).build();
    let mut cfg = AeroConfig::tiny();
    cfg.max_epochs = 2;
    let mut model = Aero::new(cfg).unwrap();
    model.fit(&ds.train).unwrap();
    let online = OnlineAero::new(model, &ds.train, PotConfig::default()).unwrap();
    (online, ds)
}

fn sr_fallback() -> FallbackScorer {
    let sr = SpectralResidual::default();
    FallbackScorer::new(move |window| sr.latest_score(window))
}

/// A policy that pins forced ladder levels: the up-streak is unreachably
/// long, so a drained queue cannot step the stars back toward Full.
fn pinned_policy() -> OverloadPolicy {
    OverloadPolicy {
        up_streak: 1_000_000,
        fallback_threshold: f32::INFINITY, // keep SR verdicts non-anomalous
        ..OverloadPolicy::default()
    }
}

#[test]
fn sr_rung_scores_stars_with_the_baseline() {
    let (online, ds) = trained_online();
    let n = ds.num_variates();
    let base = *ds.train.timestamps().last().unwrap();

    let mut gov = StreamGovernor::with_policy(online, pinned_policy()).unwrap();
    gov.set_fallback(Some(sr_fallback()));
    gov.force_ladder_level(LadderLevel::SrFallback);

    let mut served = 0usize;
    for t in 0..6 {
        let frame: Vec<f32> = (0..n).map(|v| ds.test.get(v, t)).collect();
        assert!(gov.offer(base + 1.0 + t as f64, &frame).unwrap().is_accepted());
        let out = gov.poll().unwrap().expect("queued frame must be served");
        served += 1;
        assert!(out.levels.iter().all(|&l| l == LadderLevel::SrFallback));
        // Every non-quarantined star's score must be exactly the SR score
        // of its current buffered window.
        let sr = SpectralResidual::default();
        for v in 0..n {
            let star = out.verdict.stars[v];
            if star.status == aero_core::StarStatus::Quarantined {
                continue;
            }
            let expected = sr.latest_score(&gov.online().star_window(v));
            assert_eq!(
                star.score.to_bits(),
                expected.to_bits(),
                "star {v}: governor SR score {} != recomputed {expected}",
                star.score
            );
            assert!(!star.anomalous, "infinite threshold must suppress alerts");
        }
    }
    let overload = gov.online().health().overload;
    assert_eq!(overload.fallback_scores, served * n);
    assert_eq!(overload.held_verdicts, 0);
    assert_eq!(overload.stars_below_full, n);
}

#[test]
fn without_a_scorer_the_sr_rung_holds_last_verdicts() {
    let (online, ds) = trained_online();
    let n = ds.num_variates();
    let base = *ds.train.timestamps().last().unwrap();

    let mut gov = StreamGovernor::with_policy(online, pinned_policy()).unwrap();
    // No fallback installed; SrFallback must degrade to hold-last behaviour.
    gov.force_ladder_level(LadderLevel::SrFallback);

    // First frame at full pipeline to seed real "last verdicts".
    let frame0: Vec<f32> = (0..n).map(|v| ds.test.get(v, 0)).collect();
    gov.force_ladder_level(LadderLevel::FullAero);
    gov.offer(base + 1.0, &frame0).unwrap();
    let seeded = gov.poll().unwrap().unwrap();
    gov.force_ladder_level(LadderLevel::SrFallback);

    let frame1: Vec<f32> = (0..n).map(|v| ds.test.get(v, 1)).collect();
    gov.offer(base + 2.0, &frame1).unwrap();
    let held = gov.poll().unwrap().unwrap();
    for v in 0..n {
        if held.verdict.stars[v].status == aero_core::StarStatus::Quarantined {
            continue;
        }
        assert_eq!(
            held.verdict.stars[v].score.to_bits(),
            seeded.verdict.stars[v].score.to_bits(),
            "star {v} must re-emit its previous verdict"
        );
    }
    assert!(gov.online().health().overload.held_verdicts > 0);
    assert_eq!(gov.online().health().overload.fallback_scores, 0);
}

#[test]
fn sr_fallback_is_deterministic_across_runs() {
    let run = || {
        let (online, ds) = trained_online();
        let n = ds.num_variates();
        let base = *ds.train.timestamps().last().unwrap();
        let mut gov = StreamGovernor::with_policy(online, pinned_policy()).unwrap();
        gov.set_fallback(Some(sr_fallback()));
        gov.force_ladder_level(LadderLevel::SrFallback);
        let mut bits = Vec::new();
        for t in 0..4 {
            let frame: Vec<f32> = (0..n).map(|v| ds.test.get(v, t)).collect();
            gov.offer(base + 1.0 + t as f64, &frame).unwrap();
            let out = gov.poll().unwrap().unwrap();
            bits.extend(out.verdict.stars.iter().map(|s| s.score.to_bits()));
        }
        bits
    };
    assert_eq!(run(), run());
}
