//! Score-quality tests: every detector must make an obvious injected
//! anomaly *detectable* — its peak score inside the event must beat the
//! 99th percentile of its scores everywhere else (threshold-free, and fair
//! to edge-style detectors like SR/FluxEV/TM that spike at event boundaries
//! rather than across the interior). Reconstruction-style detectors are
//! additionally held to a point-wise ROC-AUC bar.
//!
//! These are smoke tests at tiny training budgets, not the paper's
//! comparison (see `bench`). What they guard against is a detector whose
//! score is decorative: shapes fine, values uninformative.

use aero_baselines::*;
use aero_core::Detector;
use aero_eval::roc_auc;
use aero_tensor::Matrix;
use aero_timeseries::{stats::quantile, LabelGrid, MultivariateSeries};

/// Smooth multi-variate sinusoids + one hard spike segment on star 0.
fn spike_dataset() -> (MultivariateSeries, MultivariateSeries, LabelGrid) {
    let train = MultivariateSeries::regular(Matrix::from_fn(4, 500, |v, t| {
        ((t as f32) * 0.08 + v as f32).sin() * 0.5
    }));
    let mut test_vals = Matrix::from_fn(4, 300, |v, t| ((t as f32) * 0.08 + v as f32).sin() * 0.5);
    for t in 140..150 {
        test_vals.set(0, t, test_vals.get(0, t) + 4.0);
    }
    let test = MultivariateSeries::regular(test_vals);
    let mut labels = LabelGrid::new(4, 300);
    labels.mark_range(0, 140, 149).unwrap();
    (train, test, labels)
}

/// Threshold-free detectability: peak score inside the event beats the
/// 99th percentile of all scores outside it.
fn check_detectable(mut det: Box<dyn Detector>) {
    let (train, test, labels) = spike_dataset();
    let name = det.name();
    det.fit(&train).unwrap_or_else(|e| panic!("{name} fit: {e}"));
    let scores = det.score(&test).unwrap_or_else(|e| panic!("{name} score: {e}"));
    let warm = det.warmup();
    let mut inside = f32::MIN;
    let mut outside = Vec::new();
    for v in 0..scores.rows() {
        for t in warm..scores.cols() {
            let s = scores.get(v, t);
            if labels.get(v, t) {
                inside = inside.max(s);
            } else {
                outside.push(s);
            }
        }
    }
    let q99 = quantile(&outside, 0.99);
    assert!(
        inside > q99,
        "{name}: event peak {inside:.4} does not beat outside q99 {q99:.4}"
    );
}

/// Point-wise ranking bar for reconstruction-style detectors.
fn check(det: Box<dyn Detector>, min_auc: f64) {
    let (train, test, labels) = spike_dataset();
    let mut det = det;
    let name = det.name();
    det.fit(&train).unwrap_or_else(|e| panic!("{name} fit: {e}"));
    let scores = det.score(&test).unwrap_or_else(|e| panic!("{name} score: {e}"));
    let auc = roc_auc(&scores, &labels, det.warmup());
    assert!(auc >= min_auc, "{name}: AUC {auc:.3} below {min_auc}");
}

fn nn() -> NnConfig {
    let mut cfg = NnConfig::tiny();
    cfg.epochs = 3;
    cfg.stride = 12;
    cfg
}

#[test]
fn tm_detects_an_in_library_event() {
    // Template matching only recognizes shapes from its fixed library (the
    // paper's core criticism of it) — test it on a flare, which it holds.
    use aero_datagen::AnomalyKind;
    let train = MultivariateSeries::regular(Matrix::from_fn(2, 400, |v, t| {
        ((t as f32) * 0.05 + v as f32).sin() * 0.3
    }));
    let mut test_vals = Matrix::from_fn(2, 300, |v, t| ((t as f32) * 0.05 + v as f32).sin() * 0.3);
    for i in 0..40 {
        let add = AnomalyKind::Flare.value(i, 40, 3.0);
        test_vals.set(0, 150 + i, test_vals.get(0, 150 + i) + add);
    }
    let test = MultivariateSeries::regular(test_vals);
    let mut tm = TemplateMatching::default();
    tm.fit(&train).unwrap();
    let scores = tm.score(&test).unwrap();
    // Peak correlation inside the flare beats everything outside it.
    let inside = (150..190).map(|t| scores.get(0, t)).fold(f32::MIN, f32::max);
    let mut outside: Vec<f32> = Vec::new();
    for v in 0..2 {
        for t in 0..300 {
            if v != 0 || !(150..190).contains(&t) {
                outside.push(scores.get(v, t));
            }
        }
    }
    let q99 = quantile(&outside, 0.99);
    assert!(inside > q99, "TM flare peak {inside:.3} vs outside q99 {q99:.3}");
}

#[test]
fn sr_event_is_detectable() {
    check_detectable(Box::new(SpectralResidual::default()));
}

#[test]
fn spot_ranks_spike_above_chance() {
    check(Box::new(SpotDetector::new()), 0.9);
}

#[test]
fn fluxev_event_is_detectable() {
    check_detectable(Box::new(FluxEv::default()));
}

#[test]
fn donut_ranks_spike_above_chance() {
    check(Box::new(Donut::new(nn())), 0.7);
}

#[test]
fn omni_ranks_spike_above_chance() {
    check(Box::new(OmniAnomaly::new(nn())), 0.7);
}

#[test]
fn anomaly_transformer_ranks_spike_above_chance() {
    check(Box::new(AnomalyTransformer::new(nn())), 0.7);
}

#[test]
fn tranad_ranks_spike_above_chance() {
    check(Box::new(TranAd::new(nn())), 0.7);
}

#[test]
fn gdn_ranks_spike_above_chance() {
    check(Box::new(Gdn::new(nn())), 0.7);
}

#[test]
fn esg_ranks_spike_above_chance() {
    check(Box::new(Esg::new(nn())), 0.7);
}

#[test]
fn timesnet_ranks_spike_above_chance() {
    check(Box::new(TimesNet::new(nn())), 0.7);
}

#[test]
fn lstm_ndt_ranks_spike_above_chance() {
    check(Box::new(LstmNdt::new(nn())), 0.7);
}

#[test]
fn vae_lstm_ranks_spike_above_chance() {
    check(Box::new(VaeLstm::new(nn())), 0.6);
}
