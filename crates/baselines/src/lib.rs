//! # aero-baselines
//!
//! From-scratch re-implementations of the eleven baselines the AERO paper
//! compares against (§IV-B), all behind the shared
//! [`aero_core::Detector`] interface:
//!
//! | Method | Family | Module |
//! |---|---|---|
//! | Template Matching | supervised template bank | [`template`] |
//! | SR | spectral residual saliency | [`sr`] |
//! | SPOT | EVT on raw values | [`spot_detector`] |
//! | FluxEV | EVT on extracted fluctuations | [`spot_detector`] |
//! | Donut | per-variate window VAE | [`donut`] |
//! | OmniAnomaly | stochastic GRU-VAE | [`omni`] |
//! | AnomalyTransformer | association-discrepancy attention | [`anomaly_transformer`] |
//! | TranAD | self-conditioned Transformer | [`tranad`] |
//! | GDN | static learned graph forecasting | [`gdn`] |
//! | ESG | evolving-graph forecasting | [`esg`] |
//! | TimesNet | period-fold 2-D variation | [`timesnet`] |
//!
//! Each module's docs state exactly which mechanism is kept faithful and
//! what was simplified for this substrate (see DESIGN.md §3).
//!
//! [`lstm_ndt`] (LSTM-NDT, Hundman et al. 2018) and [`vae_lstm`]
//! (VAE-LSTM, Lin et al. 2020) add bonus methods from the paper's related
//! work — not part of the evaluated eleven, so they are excluded from
//! [`all_baselines`] and the table harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly_transformer;
pub mod common;
pub mod donut;
pub mod esg;
pub mod fft;
pub mod gdn;
pub mod lstm_ndt;
pub mod omni;
pub mod spot_detector;
pub mod sr;
pub mod template;
pub mod timesnet;
pub mod tranad;
pub mod vae_lstm;

pub use anomaly_transformer::AnomalyTransformer;
pub use common::NnConfig;
pub use donut::Donut;
pub use esg::Esg;
pub use gdn::Gdn;
pub use lstm_ndt::LstmNdt;
pub use omni::OmniAnomaly;
pub use spot_detector::{FluxEv, SpotDetector};
pub use sr::SpectralResidual;
pub use template::TemplateMatching;
pub use timesnet::TimesNet;
pub use tranad::TranAd;
pub use vae_lstm::VaeLstm;

use aero_core::Detector;

/// Builds the full 11-method baseline suite with a shared neural
/// configuration, in the paper's table order.
pub fn all_baselines(config: &NnConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(TemplateMatching::default()),
        Box::new(SpectralResidual::default()),
        Box::new(SpotDetector::new()),
        Box::new(FluxEv::default()),
        Box::new(Donut::new(config.clone())),
        Box::new(OmniAnomaly::new(config.clone())),
        Box::new(AnomalyTransformer::new(config.clone())),
        Box::new(TranAd::new(config.clone())),
        Box::new(Gdn::new(config.clone())),
        Box::new(Esg::new(config.clone())),
        Box::new(TimesNet::new(config.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_methods_with_unique_names() {
        let suite = all_baselines(&NnConfig::tiny());
        assert_eq!(suite.len(), 11);
        let mut names: Vec<String> = suite.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 11);
    }
}
