//! Spectral Residual (Ren et al., KDD 2019) — univariate saliency-based
//! anomaly detection adapted from the visual-saliency model of Hou & Zhang.
//!
//! Per variate: amplitude spectrum → log → subtract its local average
//! (the spectral residual) → inverse transform with the original phase →
//! saliency map; the final score normalizes saliency by its local mean.

use aero_tensor::Matrix;
use aero_timeseries::MultivariateSeries;

use crate::fft::{irfft, next_pow2, rfft, Complex};
use aero_core::{Detector, DetectorResult};

/// Spectral-residual detector. Training-free (the paper applies it directly
/// in online detection); `fit` is a no-op.
#[derive(Debug, Clone)]
pub struct SpectralResidual {
    /// Moving-average width for the log-amplitude spectrum (paper: q = 3).
    pub spectrum_avg: usize,
    /// Moving-average width for saliency normalization (paper: z = 21).
    pub saliency_avg: usize,
    /// Chunk length for local processing. SR is a *local* saliency model —
    /// the original runs it on sliding windows; applying one FFT to a
    /// multi-thousand-point series lets global structure drown point
    /// anomalies, while too-short chunks cannot contain the multi-hundred-
    /// point events of the Astroset-style data (a sweep over
    /// {128, 256, 512, 1024, 2048} put the optimum at 512 on both synthetic
    /// and simulated-GWAC datasets). Chunks overlap 50% and each point takes
    /// the max saliency over the chunks containing it.
    pub chunk: usize,
}

impl Default for SpectralResidual {
    fn default() -> Self {
        Self { spectrum_avg: 3, saliency_avg: 21, chunk: 512 }
    }
}

impl SpectralResidual {
    /// Saliency map of one univariate series.
    pub fn saliency(&self, signal: &[f32]) -> Vec<f32> {
        let len = signal.len();
        if len < 4 {
            return vec![0.0; len];
        }
        // Extend with the last value to the padded length so the padding does
        // not register as a step edge.
        let n = next_pow2(len);
        let mut extended = signal.to_vec();
        extended.resize(n, *signal.last().unwrap());

        let spec = rfft(&extended);
        let amps: Vec<f32> = spec.iter().map(|c| c.abs().max(1e-9)).collect();
        let log_amps: Vec<f32> = amps.iter().map(|a| a.ln()).collect();
        let avg = moving_average(&log_amps, self.spectrum_avg);
        // Residual spectrum, recombined with the original phase.
        let residual_spec: Vec<Complex> = spec
            .iter()
            .zip(log_amps.iter().zip(&avg))
            .map(|(c, (la, av))| Complex::from_polar((la - av).exp(), c.arg()))
            .collect();
        let sal = irfft(residual_spec, len);
        sal.into_iter().map(|v| v.abs()).collect()
    }

    /// Per-point scores within one chunk: `(S − S̄)/S̄` clamped at 0.
    ///
    /// The divisor is floored at the chunk's mean saliency: the pure
    /// relative form explodes wherever baseline saliency is near zero,
    /// ranking dead-zone jitter above real events.
    fn chunk_scores(&self, signal: &[f32]) -> Vec<f32> {
        let sal = self.saliency(signal);
        let local = moving_average(&sal, self.saliency_avg);
        let chunk_mean = sal.iter().sum::<f32>() / sal.len().max(1) as f32;
        let floor = chunk_mean.max(1e-9);
        sal.iter()
            .zip(&local)
            .map(|(s, m)| ((s - m) / m.max(floor)).max(0.0))
            .collect()
    }

    /// Score of the newest point of a streamed window: the max score over
    /// the window's trailing quarter. A single point's saliency is noisy
    /// (the inverse transform rings at the window edge), so the governor's
    /// hot fallback asks "is anything salient near *now*" rather than
    /// trusting the terminal sample alone. Deterministic — a pure function
    /// of the window contents.
    pub fn latest_score(&self, window: &[f32]) -> f32 {
        if window.is_empty() {
            return 0.0;
        }
        let scores = self.scores(window);
        let tail = scores.len().saturating_sub((scores.len() / 4).max(1));
        scores[tail..].iter().fold(0.0f32, |a, &b| a.max(b))
    }

    /// Final per-point scores: max over half-overlapping local chunks.
    ///
    /// The outer `margin` points of each chunk are discarded — the finite
    /// FFT window rings at its edges and would otherwise plant spurious
    /// saliency peaks at every chunk boundary. Half-overlap guarantees each
    /// interior point is covered by at least one chunk's trusted region.
    pub fn scores(&self, signal: &[f32]) -> Vec<f32> {
        let len = signal.len();
        let chunk = self.chunk.max(16);
        if len <= chunk {
            return self.chunk_scores(signal);
        }
        let hop = chunk / 2;
        let margin = (chunk / 8).min(hop / 2);
        let mut out = vec![0.0f32; len];
        let mut start = 0;
        loop {
            let end = (start + chunk).min(len);
            let begin = end.saturating_sub(chunk);
            let local = self.chunk_scores(&signal[begin..end]);
            // Trusted region: trim ringing margins. True series boundaries
            // ring too (the window is finite there as well), so the first
            // and last `margin` points of the series stay unscored — the
            // same kind of warmup/cooldown every windowed detector has.
            let lo = margin;
            let hi = local.len() - margin;
            for (i, &s) in local.iter().enumerate().take(hi).skip(lo) {
                let t = begin + i;
                if s > out[t] {
                    out[t] = s;
                }
            }
            if end == len {
                break;
            }
            start += hop;
        }
        out
    }
}

fn moving_average(xs: &[f32], w: usize) -> Vec<f32> {
    aero_timeseries::stats::moving_average(xs, w.max(1))
}

impl Detector for SpectralResidual {
    fn name(&self) -> String {
        "SR".into()
    }

    fn fit(&mut self, _train: &MultivariateSeries) -> DetectorResult<()> {
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        let n = series.num_variates();
        let len = series.len();
        // Variates are independent: saliency maps compute in parallel. A
        // panicking shard surfaces as a typed error, never an abort.
        let rows =
            aero_parallel::supervised_map_range(n, |v| self.scores(series.values().row(v)));
        let mut out = Matrix::zeros(n, len);
        for (v, scores) in rows.into_iter().enumerate() {
            out.row_mut(v).copy_from_slice(&scores?);
        }
        Ok(out)
    }

    fn warmup(&self) -> usize {
        self.chunk.max(16) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_dominates_saliency() {
        let mut signal = vec![0.0f32; 256];
        for (i, s) in signal.iter_mut().enumerate() {
            *s = (i as f32 * 0.2).sin() * 0.3;
        }
        signal[100] += 4.0;
        let sr = SpectralResidual::default();
        let scores = sr.scores(&signal);
        let peak = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (98..=102).contains(&peak),
            "saliency peak at {peak}, expected ~100"
        );
    }

    #[test]
    fn smooth_signal_scores_low() {
        let signal: Vec<f32> = (0..200).map(|i| (i as f32 * 0.1).sin()).collect();
        let sr = SpectralResidual::default();
        let scores = sr.scores(&signal);
        let max = scores.iter().cloned().fold(0.0f32, f32::max);
        // Compare against the same signal with a spike.
        let mut spiked = signal.clone();
        spiked[120] += 5.0;
        let smax = sr.scores(&spiked).iter().cloned().fold(0.0f32, f32::max);
        assert!(smax > 1.5 * max, "spiked {smax} vs smooth {max}");
    }

    #[test]
    fn short_series_handled() {
        let sr = SpectralResidual::default();
        assert_eq!(sr.scores(&[1.0, 2.0]), vec![0.0, 0.0]);
        assert_eq!(sr.latest_score(&[]), 0.0);
        assert_eq!(sr.latest_score(&[1.0]), 0.0);
    }

    #[test]
    fn latest_score_reacts_to_recent_spike() {
        let sr = SpectralResidual::default();
        let mut window: Vec<f32> = (0..256).map(|i| (i as f32 * 0.2).sin() * 0.3).collect();
        let quiet = sr.latest_score(&window);
        window[250] += 4.0; // spike near "now"
        let spiked = sr.latest_score(&window);
        assert!(
            spiked > quiet + 0.5,
            "recent spike must raise the latest score: {quiet} -> {spiked}"
        );
        // Determinism: same window, same score bits.
        assert_eq!(spiked.to_bits(), sr.latest_score(&window).to_bits());
    }

    #[test]
    fn detector_interface_shapes() {
        let series = MultivariateSeries::regular(Matrix::from_fn(3, 100, |v, t| {
            ((t + v * 13) as f32 * 0.3).sin()
        }));
        let mut sr = SpectralResidual::default();
        sr.fit(&series).unwrap();
        let m = sr.score(&series).unwrap();
        assert_eq!(m.shape(), (3, 100));
        assert!(!m.has_non_finite());
    }
}
