//! Shared plumbing for the neural-network baselines: a common hyperparameter
//! bundle and block-wise scoring helpers.

use aero_tensor::Matrix;
use aero_timeseries::MultivariateSeries;

use aero_core::{DetectorError, DetectorResult};

/// Hyperparameters shared by the reconstruction/forecasting baselines.
#[derive(Debug, Clone)]
pub struct NnConfig {
    /// Window length fed to the network.
    pub window: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Latent width (VAE-family methods).
    pub latent: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Max training epochs.
    pub epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Stride between training windows.
    pub stride: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NnConfig {
    fn default() -> Self {
        Self::fast()
    }
}

impl NnConfig {
    /// Harness-scale settings (matches `AeroConfig::fast` in spirit).
    pub fn fast() -> Self {
        Self {
            window: 30,
            hidden: 32,
            latent: 8,
            lr: 1e-3,
            epochs: 8,
            patience: 3,
            stride: 30,
            seed: 7,
        }
    }

    /// Tiny settings for unit tests.
    pub fn tiny() -> Self {
        Self {
            window: 12,
            hidden: 12,
            latent: 4,
            lr: 2e-3,
            epochs: 3,
            patience: 2,
            stride: 12,
            seed: 7,
        }
    }
}

/// Window end indices that tile `len` in steps of `w` (first full window,
/// then non-overlapping blocks, plus a final tail window).
pub fn block_ends(len: usize, w: usize) -> Vec<usize> {
    let mut ends = Vec::new();
    if len < w || w == 0 {
        return ends;
    }
    let mut e = w - 1;
    while e < len {
        ends.push(e);
        e += w;
    }
    if *ends.last().unwrap() != len - 1 {
        ends.push(len - 1);
    }
    ends
}

/// Runs `residual_of_window(window_matrix, end)` over every scoring block
/// and writes `|residual|` into the per-point score matrix. The window
/// matrix passed to the closure is `N × w`; the returned residual must have
/// the same shape.
pub fn score_by_blocks(
    series: &MultivariateSeries,
    w: usize,
    mut residual_of_window: impl FnMut(&Matrix, usize) -> DetectorResult<Matrix>,
) -> DetectorResult<Matrix> {
    let n = series.num_variates();
    let len = series.len();
    let mut scores = Matrix::zeros(n, len);
    if len < w {
        return Err(DetectorError::Invalid(format!(
            "series of length {len} shorter than window {w}"
        )));
    }
    for end in block_ends(len, w) {
        let window = series.window(end, w)?;
        let r = residual_of_window(&window, end)?;
        if r.shape() != (n, w) {
            return Err(DetectorError::Invalid(format!(
                "residual shape {:?} != ({n}, {w})",
                r.shape()
            )));
        }
        let start = end + 1 - w;
        for v in 0..n {
            for t in 0..w {
                scores.set(v, start + t, r.get(v, t).abs());
            }
        }
    }
    Ok(scores)
}

/// Standard sinusoidal positional encoding (constant, `len × d`).
pub fn positional_encoding(len: usize, d: usize) -> Matrix {
    Matrix::from_fn(len, d, |pos, j| {
        let freq = 1.0f32 / 10000.0f32.powf((2 * (j / 2)) as f32 / d as f32);
        let angle = pos as f32 * freq;
        if j % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ends_tile_whole_series() {
        assert_eq!(block_ends(10, 4), vec![3, 7, 9]);
        assert_eq!(block_ends(8, 4), vec![3, 7]);
        assert_eq!(block_ends(3, 4), Vec::<usize>::new());
        assert_eq!(block_ends(4, 4), vec![3]);
    }

    #[test]
    fn score_by_blocks_covers_every_point() {
        let series = MultivariateSeries::regular(Matrix::from_fn(2, 10, |v, t| {
            (v * 10 + t) as f32
        }));
        let scores = score_by_blocks(&series, 4, |w, _| Ok(w.clone())).unwrap();
        // Every point's score equals |value| (residual = window itself).
        for v in 0..2 {
            for t in 0..10 {
                assert_eq!(scores.get(v, t), (v * 10 + t) as f32);
            }
        }
    }

    #[test]
    fn score_by_blocks_rejects_bad_residual_shape() {
        let series = MultivariateSeries::regular(Matrix::zeros(2, 10));
        let r = score_by_blocks(&series, 4, |_, _| Ok(Matrix::zeros(1, 1)));
        assert!(r.is_err());
    }

    #[test]
    fn positional_encoding_bounded_and_distinct() {
        let pe = positional_encoding(20, 8);
        assert!(pe.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_ne!(pe.row(0).to_vec(), pe.row(5).to_vec());
    }
}
