//! Donut (Xu et al., WWW 2018) — per-variate window VAE.
//!
//! Faithful to the core mechanism: an MLP encoder to a Gaussian latent,
//! reparameterized sampling, an MLP decoder, and ELBO training (MSE
//! reconstruction + KL). Scoring uses the posterior-mean reconstruction
//! error. Simplifications vs. the original: weights are shared across
//! variates (the original trains one model per KPI) and modified-ELBO
//! missing-data reweighting is omitted — our series have no missing points.

use aero_nn::{kl_standard_normal, Activation, EarlyStopping, GaussianHead, Linear};
use aero_tensor::{Adam, Graph, Matrix, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{score_by_blocks, NnConfig};
use aero_core::{Detector, DetectorError, DetectorResult};

/// Donut detector.
#[derive(Debug)]
pub struct Donut {
    config: NnConfig,
    /// Weight on the KL term.
    pub beta: f32,
    store: ParamStore,
    encoder: Option<(Linear, GaussianHead)>,
    decoder: Option<(Linear, Linear)>,
    scaler: MinMaxScaler,
    trained: bool,
}

impl Donut {
    /// Creates an untrained Donut.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            beta: 0.1,
            store: ParamStore::new(),
            encoder: None,
            decoder: None,
            scaler: MinMaxScaler::new(),
            trained: false,
        }
    }

    fn build(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let w = self.config.window;
        let h = self.config.hidden;
        let z = self.config.latent;
        let mut store = ParamStore::new();
        let enc = Linear::new(&mut store, "donut.enc", w, h, Activation::Relu, &mut rng);
        let head = GaussianHead::new(&mut store, "donut.head", h, z, &mut rng);
        let dec1 = Linear::new(&mut store, "donut.dec1", z, h, Activation::Relu, &mut rng);
        let dec2 = Linear::new(&mut store, "donut.dec2", h, w, Activation::Sigmoid, &mut rng);
        self.store = store;
        self.encoder = Some((enc, head));
        self.decoder = Some((dec1, dec2));
    }

    /// Reconstruction of a batch of windows (`rows × w`), using `eps` noise
    /// (`None` = posterior mean). Returns `(recon, mu, logvar)` node ids.
    fn reconstruct(
        &self,
        g: &mut Graph,
        windows: &Matrix,
        eps: Option<&Matrix>,
    ) -> DetectorResult<(aero_tensor::NodeId, aero_tensor::NodeId, aero_tensor::NodeId)> {
        let (enc, head) = self
            .encoder
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("Donut not built".into()))?;
        let (dec1, dec2) = self.decoder.as_ref().unwrap();
        let x = g.constant(windows.clone());
        let h = enc.forward(g, &self.store, x)?;
        let zero_eps;
        let eps = match eps {
            Some(e) => e,
            None => {
                zero_eps = Matrix::zeros(windows.rows(), self.config.latent);
                &zero_eps
            }
        };
        let (z, mu, logvar) = head.forward_with_eps(g, &self.store, h, eps)?;
        let d = dec1.forward(g, &self.store, z)?;
        let recon = dec2.forward(g, &self.store, d)?;
        Ok((recon, mu, logvar))
    }
}

impl Detector for Donut {
    fn name(&self) -> String {
        "Donut".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build();

        let w = self.config.window;
        let n = scaled.num_variates();
        let ends: Vec<usize> = scaled.window_ends(w, self.config.stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xd0);
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &end in &ends {
                // Batch all variates' windows as rows.
                let win = scaled.window(end, w)?; // N × w
                self.store.zero_grads();
                let mut g = Graph::new();
                let eps = Matrix::from_fn(n, self.config.latent, |_, _| {
                    aero_nn::standard_normal(&mut rng)
                });
                let (recon, mu, logvar) = self.reconstruct(&mut g, &win, Some(&eps))?;
                let rec_loss = g.mse_loss(recon, &win)?;
                let kl = kl_standard_normal(&mut g, mu, logvar)?;
                let klw = g.affine(kl, self.beta, 0.0)?;
                let loss = g.add(rec_loss, klw)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / ends.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        score_by_blocks(&scaled, self.config.window, |win, _| {
            let mut g = Graph::new();
            let (recon, _, _) = self.reconstruct(&mut g, win, None)?;
            Ok(win.sub(g.value(recon)?)?)
        })
    }

    fn warmup(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn donut_end_to_end() {
        let ds = SyntheticConfig::tiny(21).build();
        let mut d = Donut::new(NnConfig::tiny());
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn score_before_fit_errors() {
        let ds = SyntheticConfig::tiny(21).build();
        let mut d = Donut::new(NnConfig::tiny());
        assert!(d.score(&ds.test).is_err());
    }

    #[test]
    fn reconstruction_error_higher_on_spike() {
        // Train on a smooth sinusoid; score the same signal with one spike.
        let train = MultivariateSeries::regular(Matrix::from_fn(1, 600, |_, t| {
            (t as f32 * 0.1).sin()
        }));
        let mut test_vals = Matrix::from_fn(1, 300, |_, t| (t as f32 * 0.1).sin());
        test_vals.set(0, 150, 8.0);
        let test = MultivariateSeries::regular(test_vals);
        let mut cfg = NnConfig::tiny();
        cfg.epochs = 6;
        let mut d = Donut::new(cfg);
        d.fit(&train).unwrap();
        let scores = d.score(&test).unwrap();
        let spike = scores.get(0, 150);
        let normal = scores.get(0, 40);
        assert!(spike > 1.3 * normal, "spike {spike} vs normal {normal}");
    }
}
