//! AnomalyTransformer (Xu et al., ICLR 2022) — anomaly attention with
//! association discrepancy.
//!
//! Faithful core: a Transformer encoder whose *series association* (the
//! learned attention distribution) is compared against a *prior
//! association* (a Gaussian kernel over temporal distance). Normal points
//! attend broadly (small discrepancy); anomalies can only associate with
//! adjacent points (large discrepancy). The anomaly score multiplies
//! reconstruction error by `softmax(−discrepancy)`.
//!
//! Simplification: the original trains with a two-phase minimax strategy
//! and learns the prior's scale σ per position; we use a fixed σ and a
//! single-phase loss `recon − λ·discrepancy`, which preserves the mechanism
//! (discrepancy is pushed up for normal data so anomalies stand out below).

use aero_nn::{Activation, EarlyStopping, FeedForward, LayerNorm, Linear, MultiHeadAttention};
use aero_tensor::{Adam, Graph, Matrix, NodeId, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{positional_encoding, score_by_blocks, NnConfig};
use aero_core::{Detector, DetectorError, DetectorResult};

/// AnomalyTransformer detector.
#[derive(Debug)]
pub struct AnomalyTransformer {
    config: NnConfig,
    /// Discrepancy weight λ in the training loss.
    pub lambda: f32,
    /// Prior Gaussian scale σ.
    pub sigma: f32,
    store: ParamStore,
    embed: Option<Linear>,
    attn: Option<MultiHeadAttention>,
    norm1: Option<LayerNorm>,
    norm2: Option<LayerNorm>,
    ffn: Option<FeedForward>,
    out: Option<Linear>,
    scaler: MinMaxScaler,
    num_variates: usize,
    trained: bool,
}

impl AnomalyTransformer {
    /// Creates an untrained AnomalyTransformer.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            lambda: 0.1,
            sigma: 3.0,
            store: ParamStore::new(),
            embed: None,
            attn: None,
            norm1: None,
            norm2: None,
            ffn: None,
            out: None,
            scaler: MinMaxScaler::new(),
            num_variates: 0,
            trained: false,
        }
    }

    fn build(&mut self, n: usize) -> DetectorResult<()> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.hidden;
        let mut store = ParamStore::new();
        self.embed = Some(Linear::new(&mut store, "at.embed", n, d, Activation::Identity, &mut rng));
        self.attn = Some(MultiHeadAttention::new(&mut store, "at.attn", d, 2, &mut rng)?);
        self.norm1 = Some(LayerNorm::new(&mut store, "at.ln1", d));
        self.norm2 = Some(LayerNorm::new(&mut store, "at.ln2", d));
        self.ffn = Some(FeedForward::new(&mut store, "at", d, 2 * d, &mut rng));
        self.out = Some(Linear::new(&mut store, "at.out", d, n, Activation::Sigmoid, &mut rng));
        self.store = store;
        self.num_variates = n;
        Ok(())
    }

    /// Row-normalized Gaussian prior association over temporal distance.
    fn prior_association(&self, w: usize) -> Matrix {
        let mut p = Matrix::zeros(w, w);
        let s2 = 2.0 * self.sigma * self.sigma;
        for i in 0..w {
            let mut sum = 0.0f32;
            for j in 0..w {
                let d = (i as f32 - j as f32).abs();
                let v = (-d * d / s2).exp();
                p.set(i, j, v);
                sum += v;
            }
            for j in 0..w {
                p.set(i, j, p.get(i, j) / sum);
            }
        }
        p
    }

    /// Forward pass: returns `(recon, discrepancy_node, per-position
    /// discrepancy values)` where discrepancy is the symmetric KL between
    /// series and prior associations, averaged over heads, per query row.
    fn forward(
        &self,
        g: &mut Graph,
        tokens: &Matrix,
    ) -> DetectorResult<(NodeId, NodeId, Vec<f32>)> {
        let embed = self
            .embed
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("AT not built".into()))?;
        let w = tokens.rows();
        let x = g.constant(tokens.clone());
        let h = embed.forward(g, &self.store, x)?;
        let pe = g.constant(positional_encoding(w, self.config.hidden));
        let h = g.add(h, pe)?;

        let (attn_out, attns) = self
            .attn
            .as_ref()
            .unwrap()
            .forward_with_attn(g, &self.store, h, h, h)?;
        let res = g.add(h, attn_out)?;
        let m = self.norm1.as_ref().unwrap().forward(g, &self.store, res)?;
        let f = self.ffn.as_ref().unwrap().forward(g, &self.store, m)?;
        let res2 = g.add(m, f)?;
        let o = self.norm2.as_ref().unwrap().forward(g, &self.store, res2)?;
        let recon = self.out.as_ref().unwrap().forward(g, &self.store, o)?;

        // Association discrepancy: symmetric KL(P ‖ S) + KL(S ‖ P) per row,
        // averaged over heads, kept on-tape so the loss can push it around.
        let prior = self.prior_association(w);
        let prior_n = g.constant(prior.clone());
        let ln_prior = g.ln(prior_n)?;
        let mut disc_terms = Vec::new();
        for &s in &attns {
            let ln_s = g.ln(s)?;
            // KL(P‖S) = Σ P(lnP − lnS); KL(S‖P) = Σ S(lnS − lnP)
            let diff1 = g.sub(ln_prior, ln_s)?;
            let t1 = g.hadamard(prior_n, diff1)?;
            let diff2 = g.sub(ln_s, ln_prior)?;
            let t2 = g.hadamard(s, diff2)?;
            let sym = g.add(t1, t2)?;
            disc_terms.push(sym);
        }
        let mut disc = disc_terms[0];
        for d in &disc_terms[1..] {
            disc = g.add(disc, *d)?;
        }
        let disc = g.affine(disc, 1.0 / attns.len() as f32, 0.0)?;
        // Per-query-position discrepancy = row sums (read off-tape for scores).
        let disc_rows: Vec<f32> = {
            let dv = g.value(disc)?;
            (0..w).map(|r| dv.row(r).iter().sum()).collect()
        };
        let disc_mean = g.mean_all(disc)?;
        Ok((recon, disc_mean, disc_rows))
    }
}

impl Detector for AnomalyTransformer {
    fn name(&self) -> String {
        "AT".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build(train.num_variates())?;

        let w = self.config.window;
        let ends: Vec<usize> = scaled.window_ends(w, self.config.stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &end in &ends {
                let tokens = scaled.window(end, w)?.transpose();
                self.store.zero_grads();
                let mut g = Graph::new();
                let (recon, disc, _) = self.forward(&mut g, &tokens)?;
                let rec_loss = g.mse_loss(recon, &tokens)?;
                // Maximize discrepancy on (mostly normal) training data.
                let neg_disc = g.affine(disc, -self.lambda, 0.0)?;
                let loss = g.add(rec_loss, neg_disc)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / ends.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let w = self.config.window;
        score_by_blocks(&scaled, w, |win, _| {
            let tokens = win.transpose();
            let mut g = Graph::new();
            let (recon, _, disc_rows) = self.forward(&mut g, &tokens)?;
            let residual = tokens.sub(g.value(recon)?)?;
            // softmax(−disc) over window positions (paper's weighting): low
            // discrepancy (anomalous) positions get amplified.
            let max_neg = disc_rows
                .iter()
                .map(|d| -d)
                .fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = disc_rows.iter().map(|d| (-d - max_neg).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let n = win.rows();
            let mut r = Matrix::zeros(n, w);
            for (t, e) in exps.iter().enumerate() {
                let weight = e / sum * w as f32; // mean weight 1
                for v in 0..n {
                    r.set(v, t, residual.get(t, v) * weight);
                }
            }
            Ok(r)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn prior_association_rows_normalized() {
        let at = AnomalyTransformer::new(NnConfig::tiny());
        let p = at.prior_association(10);
        for r in 0..10 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Peak on the diagonal.
        assert!(p.get(5, 5) > p.get(5, 0));
    }

    #[test]
    fn at_end_to_end() {
        let ds = SyntheticConfig::tiny(23).build();
        let mut d = AnomalyTransformer::new(NnConfig::tiny());
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }
}
