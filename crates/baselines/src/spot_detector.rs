//! SPOT and FluxEV baselines, adapted to the common scoring interface.
//!
//! SPOT (Siffer et al. 2017) thresholds raw values with EVT. To fit the
//! shared fit/score/POT pipeline, the detector emits `|z|`-scores relative
//! to the training distribution per variate — the POT stage then performs
//! exactly the EVT tail cut SPOT would, preserving its aggressive
//! extreme-value behaviour (high recall, weak precision in the tables).
//!
//! FluxEV (Li et al., WSDM 2021) augments SPOT with two-stage fluctuation
//! extraction so that non-extreme *pattern* anomalies also surface: first
//! remove the local predictable component (EWMA residual), then remove the
//! normal fluctuation level (local standard deviation), and feed the result
//! to the EVT stage.

use aero_tensor::Matrix;
use aero_timeseries::stats::{ewma, mean, std_dev};
use aero_timeseries::MultivariateSeries;

use aero_core::{Detector, DetectorError, DetectorResult};

/// SPOT baseline: per-variate z-magnitude scores + the pipeline's POT cut.
#[derive(Debug, Clone, Default)]
pub struct SpotDetector {
    /// Per-variate training mean.
    means: Vec<f32>,
    /// Per-variate training standard deviation.
    stds: Vec<f32>,
}

impl SpotDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Detector for SpotDetector {
    fn name(&self) -> String {
        "SPOT".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.means.clear();
        self.stds.clear();
        for v in 0..train.num_variates() {
            let row = train.values().row(v);
            self.means.push(mean(row));
            self.stds.push(std_dev(row).max(1e-6));
        }
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if self.means.len() != series.num_variates() {
            return Err(DetectorError::Invalid(format!(
                "fitted on {} variates, scoring {}",
                self.means.len(),
                series.num_variates()
            )));
        }
        let n = series.num_variates();
        let len = series.len();
        let mut out = Matrix::zeros(n, len);
        for v in 0..n {
            let (m, s) = (self.means[v], self.stds[v]);
            for (dst, &x) in out.row_mut(v).iter_mut().zip(series.values().row(v)) {
                *dst = (x - m).abs() / s;
            }
        }
        Ok(out)
    }
}

/// FluxEV baseline.
#[derive(Debug, Clone)]
pub struct FluxEv {
    /// EWMA smoothing factor for the predictable component.
    pub alpha: f32,
    /// Local window for the fluctuation-normalization stage.
    pub local_window: usize,
    fitted_variates: usize,
}

impl Default for FluxEv {
    fn default() -> Self {
        Self { alpha: 0.2, local_window: 20, fitted_variates: 0 }
    }
}

impl FluxEv {
    /// Two-stage fluctuation extraction for one variate.
    pub fn extract(&self, signal: &[f32]) -> Vec<f32> {
        let len = signal.len();
        if len == 0 {
            return Vec::new();
        }
        // Stage 1: residual against the one-step-behind EWMA prediction.
        let smooth = ewma(signal, self.alpha);
        let mut residual = vec![0.0f32; len];
        for t in 1..len {
            residual[t] = signal[t] - smooth[t - 1];
        }
        // Stage 2: normalize by the local fluctuation level so only
        // *abnormal* fluctuations stand out.
        let w = self.local_window.max(2);
        let mut out = vec![0.0f32; len];
        for t in 0..len {
            let lo = t.saturating_sub(w);
            if t > lo + 1 {
                let local = &residual[lo..t];
                let sd = std_dev(local).max(1e-6);
                out[t] = (residual[t].abs() / sd).max(0.0);
            }
        }
        out
    }
}

impl Detector for FluxEv {
    fn name(&self) -> String {
        "FluxEV".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.fitted_variates = train.num_variates();
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        let n = series.num_variates();
        let len = series.len();
        let mut out = Matrix::zeros(n, len);
        for v in 0..n {
            let scores = self.extract(series.values().row(v));
            out.row_mut(v).copy_from_slice(&scores);
        }
        Ok(out)
    }

    fn warmup(&self) -> usize {
        self.local_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_spike() -> MultivariateSeries {
        let mut m = Matrix::zeros(1, 300);
        for t in 0..300 {
            m.set(0, t, ((t as f32) * 0.37).sin() * 0.2);
        }
        m.set(0, 150, 6.0);
        MultivariateSeries::regular(m)
    }

    #[test]
    fn spot_scores_extremes_highest() {
        let s = series_with_spike();
        let mut d = SpotDetector::new();
        d.fit(&s).unwrap();
        let scores = d.score(&s).unwrap();
        let peak = (0..300)
            .max_by(|&a, &b| scores.get(0, a).partial_cmp(&scores.get(0, b)).unwrap())
            .unwrap();
        assert_eq!(peak, 150);
    }

    #[test]
    fn spot_variate_mismatch_errors() {
        let s = series_with_spike();
        let mut d = SpotDetector::new();
        d.fit(&s).unwrap();
        let other = MultivariateSeries::regular(Matrix::zeros(3, 10));
        assert!(d.score(&other).is_err());
    }

    #[test]
    fn fluxev_flags_pattern_break_not_just_extremes() {
        // A small but pattern-breaking wiggle inside an otherwise smooth
        // series: peak value stays within the global range.
        let mut m = Matrix::zeros(1, 400);
        for t in 0..400 {
            m.set(0, t, (t as f32 * 0.05).sin());
        }
        for t in 200..206 {
            m.set(0, t, m.get(0, t) + if t % 2 == 0 { 0.6 } else { -0.6 });
        }
        let s = MultivariateSeries::regular(m);
        let mut d = FluxEv::default();
        d.fit(&s).unwrap();
        let scores = d.score(&s).unwrap();
        let peak = (20..400)
            .max_by(|&a, &b| scores.get(0, a).partial_cmp(&scores.get(0, b)).unwrap())
            .unwrap();
        assert!((200..=206).contains(&peak), "peak at {peak}");
    }

    #[test]
    fn fluxev_warmup_region_scores_zero() {
        let s = series_with_spike();
        let mut d = FluxEv::default();
        d.fit(&s).unwrap();
        let scores = d.score(&s).unwrap();
        assert_eq!(scores.get(0, 0), 0.0);
        assert_eq!(scores.get(0, 1), 0.0);
    }

    #[test]
    fn fluxev_empty_signal() {
        let d = FluxEv::default();
        assert!(d.extract(&[]).is_empty());
    }
}
