//! GDN (Deng & Hooi, AAAI 2021) — graph deviation network with a learned
//! static graph.
//!
//! Faithful core: learnable per-variate embeddings define a static top-k
//! similarity graph; a forecasting network predicts each variate's next
//! value from its neighbours' recent windows; the anomaly score is the
//! forecast deviation robustly normalized by training-error statistics.
//! Simplification: graph attention is replaced by normalized top-k graph
//! propagation (the embedding-derived static structure — GDN's defining
//! feature and its weakness on concurrent noise — is preserved).

use aero_nn::{Activation, EarlyStopping, Linear};
use aero_tensor::{Adam, Graph, Matrix, NodeId, ParamId, ParamStore};
use aero_timeseries::stats::cosine_similarity;
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::NnConfig;
use aero_core::{Detector, DetectorError, DetectorResult};

/// GDN detector.
#[derive(Debug)]
pub struct Gdn {
    config: NnConfig,
    /// Input history length for forecasting.
    pub input_window: usize,
    /// Neighbours kept per node.
    pub top_k: usize,
    store: ParamStore,
    embeddings: Option<ParamId>,
    encoder: Option<Linear>,
    combine: Option<Linear>,
    out: Option<Linear>,
    scaler: MinMaxScaler,
    /// Per-variate robust error statistics from training (median, IQR).
    error_stats: Vec<(f32, f32)>,
    num_variates: usize,
    trained: bool,
}

impl Gdn {
    /// Creates an untrained GDN.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            input_window: 16,
            top_k: 5,
            store: ParamStore::new(),
            embeddings: None,
            encoder: None,
            combine: None,
            out: None,
            scaler: MinMaxScaler::new(),
            error_stats: Vec::new(),
            num_variates: 0,
            trained: false,
        }
    }

    fn build(&mut self, n: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.hidden;
        let de = self.config.latent.max(4);
        let mut store = ParamStore::new();
        self.embeddings = Some(store.register_xavier("gdn.embeddings", n, de, &mut rng));
        self.encoder = Some(Linear::new(&mut store, "gdn.enc", self.input_window, d, Activation::Relu, &mut rng));
        self.combine = Some(Linear::new(&mut store, "gdn.combine", 2 * d + de, d, Activation::Relu, &mut rng));
        self.out = Some(Linear::new(&mut store, "gdn.out", d, 1, Activation::Identity, &mut rng));
        self.store = store;
        self.num_variates = n;
    }

    /// The static top-k propagation matrix from the current embeddings.
    pub fn static_graph(&self) -> DetectorResult<Matrix> {
        let e = self
            .embeddings
            .ok_or_else(|| DetectorError::Invalid("GDN not built".into()))?;
        let emb = self.store.value(e)?;
        let n = emb.rows();
        let k = self.top_k.min(n.saturating_sub(1));
        let mut p = Matrix::zeros(n, n);
        for v in 0..n {
            let mut sims: Vec<(usize, f32)> = (0..n)
                .filter(|&j| j != v)
                .map(|j| (j, cosine_similarity(emb.row(v), emb.row(j))))
                .collect();
            sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            sims.truncate(k);
            let total: f32 = sims.iter().map(|(_, s)| s.max(0.0)).sum();
            if total > 1e-9 {
                for (j, s) in sims {
                    p.set(v, j, s.max(0.0) / total);
                }
            }
        }
        Ok(p)
    }

    /// Forecast for the timestep after `history` (`N × input_window`).
    fn forecast(&self, g: &mut Graph, history: &Matrix) -> DetectorResult<NodeId> {
        let p = self.static_graph()?;
        let x = g.constant(history.clone());
        let h = self.encoder.as_ref().unwrap().forward(g, &self.store, x)?; // N × d
        let p_n = g.constant(p);
        let agg = g.matmul(p_n, h)?;
        let emb = g.param(&self.store, self.embeddings.unwrap())?;
        let cat = g.concat_cols(&[h, agg, emb])?;
        let c = self.combine.as_ref().unwrap().forward(g, &self.store, cat)?;
        Ok(self.out.as_ref().unwrap().forward(g, &self.store, c)?) // N × 1
    }

    /// Raw forecast errors `|x_t − x̂_t|` over a series (zeros in warmup).
    fn raw_errors(&self, scaled: &MultivariateSeries) -> DetectorResult<Matrix> {
        let n = scaled.num_variates();
        let len = scaled.len();
        let w = self.input_window;
        let mut errors = Matrix::zeros(n, len);
        for t in w..len {
            let history = scaled.window(t - 1, w)?;
            let mut g = Graph::new();
            let pred = self.forecast(&mut g, &history)?;
            let pv = g.value(pred)?;
            for v in 0..n {
                errors.set(v, t, (scaled.get(v, t) - pv.get(v, 0)).abs());
            }
        }
        Ok(errors)
    }
}

fn median_iqr(values: &mut [f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 1.0);
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |f: f32| values[((values.len() - 1) as f32 * f) as usize];
    let med = q(0.5);
    let iqr = (q(0.75) - q(0.25)).max(1e-6);
    (med, iqr)
}

impl Detector for Gdn {
    fn name(&self) -> String {
        "GDN".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build(train.num_variates());

        let w = self.input_window;
        let targets: Vec<usize> = (w..scaled.len()).step_by(self.config.stride.max(1)).collect();
        if targets.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let n = scaled.num_variates();

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &t in &targets {
                let history = scaled.window(t - 1, w)?;
                let target = Matrix::from_fn(n, 1, |v, _| scaled.get(v, t));
                self.store.zero_grads();
                let mut g = Graph::new();
                let pred = self.forecast(&mut g, &history)?;
                let loss = g.mse_loss(pred, &target)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / targets.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }

        // Robust error statistics for score normalization.
        let train_errors = self.raw_errors(&scaled)?;
        self.error_stats = (0..n)
            .map(|v| {
                let mut vals: Vec<f32> = train_errors.row(v)[w..].to_vec();
                median_iqr(&mut vals)
            })
            .collect();
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let errors = self.raw_errors(&scaled)?;
        let n = errors.rows();
        let mut out = Matrix::zeros(n, errors.cols());
        for v in 0..n {
            let (med, iqr) = self.error_stats[v];
            for (dst, &e) in out.row_mut(v).iter_mut().zip(errors.row(v)) {
                *dst = ((e - med) / iqr).max(0.0);
            }
        }
        Ok(out)
    }

    fn warmup(&self) -> usize {
        self.input_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn gdn_end_to_end() {
        let ds = SyntheticConfig::tiny(25).build();
        let mut cfg = NnConfig::tiny();
        cfg.stride = 20;
        let mut d = Gdn::new(cfg);
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn static_graph_rows_are_distributions_or_zero() {
        let ds = SyntheticConfig::tiny(25).build();
        let mut cfg = NnConfig::tiny();
        cfg.epochs = 1;
        cfg.stride = 50;
        let mut d = Gdn::new(cfg);
        d.fit(&ds.train).unwrap();
        let p = d.static_graph().unwrap();
        for v in 0..p.rows() {
            let s: f32 = p.row(v).iter().sum();
            assert!(s <= 1.0 + 1e-5);
            assert_eq!(p.get(v, v), 0.0); // no self loops
        }
    }

    #[test]
    fn median_iqr_of_known_values() {
        let mut vals = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let (med, iqr) = median_iqr(&mut vals);
        assert_eq!(med, 3.0);
        assert_eq!(iqr, 2.0);
        let (m0, i0) = median_iqr(&mut []);
        assert_eq!((m0, i0), (0.0, 1.0));
    }
}
