//! TimesNet (Wu et al., ICLR 2023) — temporal 2D-variation modelling.
//!
//! Faithful core: FFT finds the dominant period of each window; the 1-D
//! series is treated as a 2-D (intra-period × inter-period) structure and
//! convolved along both axes; reconstruction error is the anomaly score.
//! Simplification: the explicit 2-D fold + inception block is expressed as
//! the equivalent pair of 1-D convolutions — kernel-3 at dilation 1
//! (intra-period neighbourhood) and kernel-3 at dilation `p` (inter-period
//! neighbourhood, i.e. the same phase in adjacent cycles) — with a single
//! period per window instead of the top-k ensemble.

use aero_nn::{Activation, EarlyStopping, Linear};
use aero_tensor::{Adam, GradBuffer, Graph, Matrix, NodeId, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{score_by_blocks, NnConfig};
use crate::fft::dominant_frequency;
use aero_core::{Detector, DetectorError, DetectorResult};

/// TimesNet detector (shared weights across variates, applied per variate).
#[derive(Debug)]
pub struct TimesNet {
    config: NnConfig,
    store: ParamStore,
    embed: Option<Linear>,
    intra: Option<Linear>,
    inter: Option<Linear>,
    head: Option<Linear>,
    scaler: MinMaxScaler,
    trained: bool,
}

impl TimesNet {
    /// Creates an untrained TimesNet.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            store: ParamStore::new(),
            embed: None,
            intra: None,
            inter: None,
            head: None,
            scaler: MinMaxScaler::new(),
            trained: false,
        }
    }

    fn build(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.hidden;
        let mut store = ParamStore::new();
        self.embed = Some(Linear::new(&mut store, "timesnet.embed", 1, d, Activation::Identity, &mut rng));
        self.intra = Some(Linear::new(&mut store, "timesnet.intra", 3 * d, d, Activation::Relu, &mut rng));
        self.inter = Some(Linear::new(&mut store, "timesnet.inter", 3 * d, d, Activation::Relu, &mut rng));
        self.head = Some(Linear::new(&mut store, "timesnet.head", d, 1, Activation::Sigmoid, &mut rng));
        self.store = store;
    }

    /// Dominant period of a window, clamped to `[2, len/2]`.
    pub fn window_period(signal: &[f32]) -> usize {
        let len = signal.len();
        match dominant_frequency(signal) {
            Some(k) if k > 0 => {
                let padded = crate::fft::next_pow2(len);
                (padded / k).clamp(2, (len / 2).max(2))
            }
            _ => 2,
        }
    }

    /// Kernel-3 "conv" at dilation `dil` realized with gathered shifts.
    fn dilated_block(
        &self,
        g: &mut Graph,
        layer: &Linear,
        h: NodeId,
        len: usize,
        dil: usize,
    ) -> DetectorResult<NodeId> {
        let mut views = Vec::with_capacity(3);
        for offset in [-(dil as isize), 0, dil as isize] {
            let idx: Vec<usize> = (0..len)
                .map(|t| (t as isize + offset).clamp(0, len as isize - 1) as usize)
                .collect();
            views.push(g.gather_rows(h, &idx)?);
        }
        let cat = g.concat_cols(&views)?;
        Ok(layer.forward(g, &self.store, cat)?)
    }

    /// Reconstructs one univariate window (`w × 1` tokens).
    fn reconstruct(&self, g: &mut Graph, window: &[f32]) -> DetectorResult<NodeId> {
        let embed = self
            .embed
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("TimesNet not built".into()))?;
        let len = window.len();
        let p = Self::window_period(window);
        let x = g.constant(Matrix::col_vector(window));
        let h = embed.forward(g, &self.store, x)?;
        let h = self.dilated_block(g, self.intra.as_ref().unwrap(), h, len, 1)?;
        let h = self.dilated_block(g, self.inter.as_ref().unwrap(), h, len, p)?;
        Ok(self.head.as_ref().unwrap().forward(g, &self.store, h)?)
    }
}

impl Detector for TimesNet {
    fn name(&self) -> String {
        "TimesNet".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build();

        let w = self.config.window;
        let ends: Vec<usize> = scaled.window_ends(w, self.config.stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let n = scaled.num_variates();

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &end in &ends {
                let win = scaled.window(end, w)?;
                self.store.zero_grads();
                let mut window_loss = 0.0f64;
                // Same sharded-gradient scheme as AERO Stage-1: fixed shard
                // boundaries and an in-order merge keep training bitwise
                // identical at any thread count.
                let shards = aero_parallel::shard_ranges(n, 16);
                let this = &*self;
                let partials: Vec<Result<DetectorResult<(f64, GradBuffer)>, _>> =
                    aero_parallel::supervised_map(&shards, |_, range| {
                        let mut grads = GradBuffer::for_store(&this.store);
                        let mut loss_sum = 0.0f64;
                        for v in range.clone() {
                            let signal = win.row(v).to_vec();
                            let mut g = Graph::new();
                            let recon = this.reconstruct(&mut g, &signal)?;
                            let target = Matrix::col_vector(&signal);
                            let loss = g.mse_loss(recon, &target)?;
                            loss_sum += g.value(loss)?.scalar_value()? as f64;
                            g.backward_into(loss, &mut grads)?;
                        }
                        Ok((loss_sum, grads))
                    });
                for partial in partials {
                    let (shard_loss, mut grads) = partial.map_err(DetectorError::from)??;
                    window_loss += shard_loss;
                    grads.merge_into(&mut self.store)?;
                }
                opt.step(&mut self.store)?;
                epoch_loss += window_loss / n as f64;
            }
            let mean = (epoch_loss / ends.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let w = self.config.window;
        let this = &*self;
        score_by_blocks(&scaled, w, |win, _| {
            let n = win.rows();
            let rows: Vec<Result<DetectorResult<Vec<f32>>, _>> =
                aero_parallel::supervised_map_range(n, |v| {
                    let signal = win.row(v).to_vec();
                    let mut g = Graph::new();
                    let recon = this.reconstruct(&mut g, &signal)?;
                    let rv = g.value(recon)?;
                    Ok(signal.iter().enumerate().map(|(t, &x)| x - rv.get(t, 0)).collect())
                });
            let mut r = Matrix::zeros(n, w);
            for (v, row) in rows.into_iter().enumerate() {
                r.row_mut(v).copy_from_slice(&row.map_err(DetectorError::from)??);
            }
            Ok(r)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn window_period_of_sinusoid() {
        let period = 16;
        let signal: Vec<f32> = (0..64)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / period as f32).sin())
            .collect();
        assert_eq!(TimesNet::window_period(&signal), period);
    }

    #[test]
    fn window_period_clamped_for_flat_input() {
        let p = TimesNet::window_period(&[0.5; 32]);
        assert!((2..=16).contains(&p));
    }

    #[test]
    fn timesnet_end_to_end() {
        let ds = SyntheticConfig::tiny(27).build();
        let mut d = TimesNet::new(NnConfig::tiny());
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }
}
