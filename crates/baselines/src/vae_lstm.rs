//! VAE-LSTM (Lin et al., ICASSP 2020) — extension baseline from the paper's
//! related work: a VAE extracts robust local features over short
//! sub-windows, an LSTM models long-term structure over the sequence of
//! VAE latents, and anomalies surface as reconstruction failures of the
//! LSTM-predicted embeddings.
//!
//! Like LSTM-NDT this is a bonus method (not among the paper's evaluated
//! eleven); it shares the POT + point-adjust pipeline with everything else.

use aero_nn::{kl_standard_normal, Activation, EarlyStopping, GaussianHead, Linear, Lstm};
use aero_tensor::{Adam, Graph, Matrix, NodeId, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::NnConfig;
use aero_core::{Detector, DetectorError, DetectorResult};

/// VAE-LSTM detector (per-variate, shared weights across variates).
#[derive(Debug)]
pub struct VaeLstm {
    config: NnConfig,
    /// Sub-window length the VAE encodes.
    pub sub_window: usize,
    /// Sub-windows per LSTM sequence.
    pub seq_len: usize,
    /// KL weight.
    pub beta: f32,
    store: ParamStore,
    enc: Option<Linear>,
    head: Option<GaussianHead>,
    dec1: Option<Linear>,
    dec2: Option<Linear>,
    lstm: Option<Lstm>,
    predict: Option<Linear>,
    scaler: MinMaxScaler,
    trained: bool,
}

impl VaeLstm {
    /// Creates an untrained VAE-LSTM.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            sub_window: 6,
            seq_len: 5,
            beta: 0.1,
            store: ParamStore::new(),
            enc: None,
            head: None,
            dec1: None,
            dec2: None,
            lstm: None,
            predict: None,
            scaler: MinMaxScaler::new(),
            trained: false,
        }
    }

    /// Total window length one training instance covers.
    fn span(&self) -> usize {
        self.sub_window * self.seq_len
    }

    fn build(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let p = self.sub_window;
        let h = self.config.hidden;
        let z = self.config.latent;
        let mut store = ParamStore::new();
        self.enc = Some(Linear::new(&mut store, "vl.enc", p, h, Activation::Relu, &mut rng));
        self.head = Some(GaussianHead::new(&mut store, "vl.head", h, z, &mut rng));
        self.dec1 = Some(Linear::new(&mut store, "vl.dec1", z, h, Activation::Relu, &mut rng));
        self.dec2 = Some(Linear::new(&mut store, "vl.dec2", h, p, Activation::Sigmoid, &mut rng));
        self.lstm = Some(Lstm::new(&mut store, "vl.lstm", z, h, &mut rng));
        self.predict = Some(Linear::new(&mut store, "vl.predict", h, z, Activation::Identity, &mut rng));
        self.store = store;
    }

    /// Splits one variate's span into `seq_len` stacked sub-windows.
    fn sub_windows(&self, signal: &[f32]) -> Matrix {
        Matrix::from_fn(self.seq_len, self.sub_window, |s, i| signal[s * self.sub_window + i])
    }

    /// Forward pass over one variate's span: returns
    /// `(vae_recon, mu, logvar, predicted_recon)` where `predicted_recon`
    /// decodes LSTM-predicted latents for sub-windows `1..seq_len`.
    fn forward(
        &self,
        g: &mut Graph,
        signal: &[f32],
        eps: Option<&Matrix>,
    ) -> DetectorResult<(NodeId, NodeId, NodeId, NodeId)> {
        let enc = self
            .enc
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("VAE-LSTM not built".into()))?;
        let subs = self.sub_windows(signal);
        let x = g.constant(subs);
        let hidden = enc.forward(g, &self.store, x)?;
        let zero_eps;
        let eps = match eps {
            Some(e) => e,
            None => {
                zero_eps = Matrix::zeros(self.seq_len, self.config.latent);
                &zero_eps
            }
        };
        let (zs, mu, logvar) = self
            .head
            .as_ref()
            .unwrap()
            .forward_with_eps(g, &self.store, hidden, eps)?;

        // Local VAE reconstruction.
        let d = self.dec1.as_ref().unwrap().forward(g, &self.store, zs)?;
        let vae_recon = self.dec2.as_ref().unwrap().forward(g, &self.store, d)?;

        // LSTM over latents (use the posterior means for stability) predicts
        // the *next* latent; decode it to reconstruct sub-windows 1…end.
        let states = self.lstm.as_ref().unwrap().scan(g, &self.store, mu)?;
        let prior_states = g.slice_rows(states, 0, self.seq_len - 1)?;
        let z_pred = self
            .predict
            .as_ref()
            .unwrap()
            .forward(g, &self.store, prior_states)?;
        let dp = self.dec1.as_ref().unwrap().forward(g, &self.store, z_pred)?;
        let pred_recon = self.dec2.as_ref().unwrap().forward(g, &self.store, dp)?;
        Ok((vae_recon, mu, logvar, pred_recon))
    }
}

impl Detector for VaeLstm {
    fn name(&self) -> String {
        "VAE-LSTM".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build();

        let span = self.span();
        let ends: Vec<usize> = scaled.window_ends(span, self.config.stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x7a);
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let n = scaled.num_variates();

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &end in &ends {
                let win = scaled.window(end, span)?;
                self.store.zero_grads();
                let mut window_loss = 0.0f64;
                for v in 0..n {
                    let signal = win.row(v).to_vec();
                    let subs = self.sub_windows(&signal);
                    let target_later = subs.slice_rows(1, self.seq_len - 1)?;
                    let eps = Matrix::from_fn(self.seq_len, self.config.latent, |_, _| {
                        aero_nn::standard_normal(&mut rng)
                    });
                    let mut g = Graph::new();
                    let (vae_recon, mu, logvar, pred_recon) =
                        self.forward(&mut g, &signal, Some(&eps))?;
                    let rec = g.mse_loss(vae_recon, &subs)?;
                    let pred = g.mse_loss(pred_recon, &target_later)?;
                    let kl = kl_standard_normal(&mut g, mu, logvar)?;
                    let klw = g.affine(kl, self.beta, 0.0)?;
                    let partial = g.add(rec, pred)?;
                    let loss = g.add(partial, klw)?;
                    window_loss += g.value(loss)?.scalar_value()? as f64;
                    g.backward(loss, &mut self.store)?;
                }
                opt.step(&mut self.store)?;
                epoch_loss += window_loss / n as f64;
            }
            let mean = (epoch_loss / ends.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let span = self.span();
        crate::common::score_by_blocks(&scaled, span, |win, _| {
            let n = win.rows();
            let mut r = Matrix::zeros(n, span);
            for v in 0..n {
                let signal = win.row(v).to_vec();
                let mut g = Graph::new();
                let (vae_recon, _, _, pred_recon) = self.forward(&mut g, &signal, None)?;
                let vr = g.value(vae_recon)?;
                let pr = g.value(pred_recon)?;
                for s in 0..self.seq_len {
                    for i in 0..self.sub_window {
                        let t = s * self.sub_window + i;
                        let local = (signal[t] - vr.get(s, i)).abs();
                        // Prediction error exists for sub-windows ≥ 1.
                        let predicted = if s >= 1 {
                            (signal[t] - pr.get(s - 1, i)).abs()
                        } else {
                            local
                        };
                        r.set(v, t, 0.5 * (local + predicted));
                    }
                }
            }
            Ok(r)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn vae_lstm_end_to_end() {
        let ds = SyntheticConfig::tiny(31).build();
        let mut cfg = NnConfig::tiny();
        cfg.epochs = 2;
        let mut d = VaeLstm::new(cfg);
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn span_is_sub_window_times_seq_len() {
        let d = VaeLstm::new(NnConfig::tiny());
        assert_eq!(d.span(), d.sub_window * d.seq_len);
    }

    #[test]
    fn sub_windows_partition_the_signal() {
        let d = VaeLstm::new(NnConfig::tiny());
        let signal: Vec<f32> = (0..d.span()).map(|i| i as f32).collect();
        let subs = d.sub_windows(&signal);
        assert_eq!(subs.shape(), (d.seq_len, d.sub_window));
        assert_eq!(subs.get(0, 0), 0.0);
        assert_eq!(subs.get(1, 0), d.sub_window as f32);
        assert_eq!(
            subs.get(d.seq_len - 1, d.sub_window - 1),
            (d.span() - 1) as f32
        );
    }
}
