//! Template Matching (SciDetector, ICDE 2019) — the supervised celestial-
//! event baseline: pre-defined event templates are slid over incoming data
//! and matched by normalized cross-correlation.

use aero_datagen::AnomalyKind;
use aero_tensor::Matrix;
use aero_timeseries::MultivariateSeries;

use aero_core::{Detector, DetectorResult};

/// One stored template.
#[derive(Debug, Clone)]
pub struct Template {
    /// Template label (for diagnostics).
    pub name: String,
    /// Template values (already zero-mean).
    pub values: Vec<f32>,
}

impl Template {
    /// Builds a zero-mean template from raw values.
    pub fn new(name: impl Into<String>, raw: &[f32]) -> Self {
        let mean = raw.iter().sum::<f32>() / raw.len().max(1) as f32;
        Self {
            name: name.into(),
            values: raw.iter().map(|v| v - mean).collect(),
        }
    }
}

/// Template-matching detector with a fixed bank of event morphologies.
#[derive(Debug, Clone)]
pub struct TemplateMatching {
    templates: Vec<Template>,
    /// Minimum correlation to register as a match contribution.
    pub min_correlation: f32,
}

impl Default for TemplateMatching {
    fn default() -> Self {
        Self::with_standard_bank()
    }
}

impl TemplateMatching {
    /// A bank built from the anomaly morphology templates (flare, dip, step,
    /// spike, bump) at two scales each — mirroring SciDetector's fixed,
    /// pre-defined event library (and its key weakness: anything outside
    /// the library is invisible).
    pub fn with_standard_bank() -> Self {
        let mut templates = Vec::new();
        for kind in AnomalyKind::ALL {
            for &len in &[16usize, 40] {
                let raw: Vec<f32> = (0..len).map(|i| kind.value(i, len, 1.0)).collect();
                templates.push(Template::new(format!("{kind:?}-{len}"), &raw));
            }
        }
        Self { templates, min_correlation: 0.5 }
    }

    /// Builds a detector from custom templates.
    pub fn with_templates(templates: Vec<Template>) -> Self {
        Self { templates, min_correlation: 0.5 }
    }

    /// Number of stored templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Normalized cross-correlation of `template` against the window of
    /// `signal` starting at `start`.
    fn ncc(signal: &[f32], start: usize, template: &[f32]) -> f32 {
        let seg = &signal[start..start + template.len()];
        let mean = seg.iter().sum::<f32>() / seg.len() as f32;
        let mut dot = 0.0f32;
        let mut ns = 0.0f32;
        let mut nt = 0.0f32;
        for (&s, &t) in seg.iter().zip(template) {
            let sc = s - mean;
            dot += sc * t;
            ns += sc * sc;
            nt += t * t;
        }
        let denom = (ns * nt).sqrt();
        if denom < 1e-9 {
            0.0
        } else {
            dot / denom
        }
    }

    /// Per-point scores for one variate: each point's score is the maximum
    /// correlation over all template placements covering it.
    pub fn score_variate(&self, signal: &[f32]) -> Vec<f32> {
        let len = signal.len();
        let mut scores = vec![0.0f32; len];
        for template in &self.templates {
            let tl = template.values.len();
            if tl > len {
                continue;
            }
            for start in 0..=(len - tl) {
                let c = Self::ncc(signal, start, &template.values);
                if c >= self.min_correlation {
                    for s in &mut scores[start..start + tl] {
                        if c > *s {
                            *s = c;
                        }
                    }
                }
            }
        }
        scores
    }
}

impl Detector for TemplateMatching {
    fn name(&self) -> String {
        "TM".into()
    }

    fn fit(&mut self, _train: &MultivariateSeries) -> DetectorResult<()> {
        // Supervised method with pre-defined templates: nothing to learn.
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        let n = series.num_variates();
        let len = series.len();
        // Template correlation is embarrassingly parallel across variates. A
        // panicking shard surfaces as a typed error, never an abort.
        let rows = aero_parallel::supervised_map_range(n, |v| {
            self.score_variate(series.values().row(v))
        });
        let mut out = Matrix::zeros(n, len);
        for (v, scores) in rows.into_iter().enumerate() {
            out.row_mut(v).copy_from_slice(&scores?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_has_all_morphologies() {
        let tm = TemplateMatching::with_standard_bank();
        assert_eq!(tm.num_templates(), 10); // 5 kinds × 2 scales
    }

    #[test]
    fn matching_template_scores_high_at_injection() {
        let mut signal = vec![0.0f32; 300];
        // Inject an exact flare of length 40.
        for i in 0..40 {
            signal[100 + i] = AnomalyKind::Flare.value(i, 40, 2.0);
        }
        let tm = TemplateMatching::with_standard_bank();
        let scores = tm.score_variate(&signal);
        assert!(scores[110] > 0.95, "score at flare = {}", scores[110]);
        assert!(scores[10] < 0.6, "score off-flare = {}", scores[10]);
    }

    #[test]
    fn unseen_morphology_scores_lower() {
        // A sawtooth does not match any bank template perfectly.
        let mut signal = vec![0.0f32; 200];
        for i in 0..30 {
            signal[80 + i] = (i % 7) as f32;
        }
        let tm = TemplateMatching::with_standard_bank();
        let scores = tm.score_variate(&signal);
        let max = scores.iter().cloned().fold(0.0f32, f32::max);
        assert!(max < 0.95, "sawtooth matched too well: {max}");
    }

    #[test]
    fn constant_signal_scores_zero() {
        let tm = TemplateMatching::with_standard_bank();
        let scores = tm.score_variate(&[1.0; 100]);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn detector_shapes() {
        let series = MultivariateSeries::regular(Matrix::zeros(2, 50));
        let mut tm = TemplateMatching::default();
        tm.fit(&series).unwrap();
        assert_eq!(tm.score(&series).unwrap().shape(), (2, 50));
    }
}
