//! ESG (Ye et al., KDD 2022) — evolving-graph forecasting adapted to
//! anomaly detection via single-step prediction errors (as the AERO paper
//! does for its comparison).
//!
//! Faithful core: the inter-variate graph *evolves* over time — each step's
//! structure is learned from current node states and smoothed against the
//! previous structure (the "evolutionary" component), then used for message
//! passing in a forecasting network. Simplification: the multi-scale
//! pyramid is reduced to a single scale.

use aero_nn::{Activation, EarlyStopping, Linear};
use aero_tensor::{Adam, Graph, Matrix, NodeId, ParamStore};
use aero_timeseries::stats::cosine_similarity;
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::NnConfig;
use aero_core::{Detector, DetectorError, DetectorResult};

/// ESG detector.
#[derive(Debug)]
pub struct Esg {
    config: NnConfig,
    /// Input history length.
    pub input_window: usize,
    /// Evolution smoothing factor (inertia of the graph).
    pub beta: f32,
    store: ParamStore,
    encoder: Option<Linear>,
    combine: Option<Linear>,
    out: Option<Linear>,
    scaler: MinMaxScaler,
    graph_state: Option<Matrix>,
    num_variates: usize,
    trained: bool,
}

impl Esg {
    /// Creates an untrained ESG.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            input_window: 16,
            beta: 0.8,
            store: ParamStore::new(),
            encoder: None,
            combine: None,
            out: None,
            scaler: MinMaxScaler::new(),
            graph_state: None,
            num_variates: 0,
            trained: false,
        }
    }

    fn build(&mut self, n: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.hidden;
        let mut store = ParamStore::new();
        self.encoder = Some(Linear::new(&mut store, "esg.enc", self.input_window, d, Activation::Relu, &mut rng));
        self.combine = Some(Linear::new(&mut store, "esg.combine", 2 * d, d, Activation::Relu, &mut rng));
        self.out = Some(Linear::new(&mut store, "esg.out", d, 1, Activation::Identity, &mut rng));
        self.store = store;
        self.num_variates = n;
    }

    /// Evolves the graph with the current node histories and returns the
    /// row-normalized propagation matrix (no self-loops).
    fn evolve_graph(&mut self, history: &Matrix) -> Matrix {
        let n = history.rows();
        let mut adj = Matrix::zeros(n, n);
        for a in 0..n {
            for b in (a + 1)..n {
                let s = cosine_similarity(history.row(a), history.row(b)).max(0.0);
                adj.set(a, b, s);
                adj.set(b, a, s);
            }
        }
        let evolved = match self.graph_state.take() {
            Some(prev) if prev.shape() == adj.shape() => {
                let mut m = adj;
                for (o, p) in m.as_mut_slice().iter_mut().zip(prev.as_slice()) {
                    *o = self.beta * p + (1.0 - self.beta) * *o;
                }
                m
            }
            _ => adj,
        };
        self.graph_state = Some(evolved.clone());
        // Row-normalize without self-loops.
        let mut p = Matrix::zeros(n, n);
        for v in 0..n {
            let degree: f32 = (0..n).filter(|&j| j != v).map(|j| evolved.get(v, j)).sum();
            if degree > 1e-9 {
                for j in 0..n {
                    if j != v {
                        p.set(v, j, evolved.get(v, j) / degree);
                    }
                }
            }
        }
        p
    }

    fn forecast(&mut self, g: &mut Graph, history: &Matrix) -> DetectorResult<NodeId> {
        if self.encoder.is_none() {
            return Err(DetectorError::Invalid("ESG not built".into()));
        }
        let p = self.evolve_graph(history);
        let x = g.constant(history.clone());
        let h = self.encoder.as_ref().unwrap().forward(g, &self.store, x)?;
        let p_n = g.constant(p);
        let agg = g.matmul(p_n, h)?;
        let cat = g.concat_cols(&[h, agg])?;
        let c = self.combine.as_ref().unwrap().forward(g, &self.store, cat)?;
        Ok(self.out.as_ref().unwrap().forward(g, &self.store, c)?)
    }

    fn raw_errors(&mut self, scaled: &MultivariateSeries) -> DetectorResult<Matrix> {
        let n = scaled.num_variates();
        let len = scaled.len();
        let w = self.input_window;
        self.graph_state = None;
        let mut errors = Matrix::zeros(n, len);
        for t in w..len {
            let history = scaled.window(t - 1, w)?;
            let mut g = Graph::new();
            let pred = self.forecast(&mut g, &history)?;
            let pv = g.value(pred)?;
            for v in 0..n {
                errors.set(v, t, (scaled.get(v, t) - pv.get(v, 0)).abs());
            }
        }
        Ok(errors)
    }
}

impl Detector for Esg {
    fn name(&self) -> String {
        "ESG".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build(train.num_variates());

        let w = self.input_window;
        let targets: Vec<usize> = (w..scaled.len()).step_by(self.config.stride.max(1)).collect();
        if targets.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let n = scaled.num_variates();

        for _epoch in 0..self.config.epochs {
            self.graph_state = None;
            let mut epoch_loss = 0.0f64;
            for &t in &targets {
                let history = scaled.window(t - 1, w)?;
                let target = Matrix::from_fn(n, 1, |v, _| scaled.get(v, t));
                self.store.zero_grads();
                let mut g = Graph::new();
                let pred = self.forecast(&mut g, &history)?;
                let loss = g.mse_loss(pred, &target)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / targets.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        self.raw_errors(&scaled)
    }

    fn warmup(&self) -> usize {
        self.input_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn esg_end_to_end() {
        let ds = SyntheticConfig::tiny(26).build();
        let mut cfg = NnConfig::tiny();
        cfg.stride = 20;
        let mut d = Esg::new(cfg);
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn graph_evolves_with_inertia() {
        let mut d = Esg::new(NnConfig::tiny());
        d.build(2);
        // First: identical histories → strong edge.
        let h1 = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        d.evolve_graph(&h1);
        let s1 = d.graph_state.clone().unwrap();
        assert!(s1.get(0, 1) > 0.99);
        // Then: orthogonal histories → edge decays slowly, not instantly.
        let h2 = Matrix::from_vec(2, 4, vec![1.0, 0.0, 1.0, 0.0, -1.0, 0.0, -1.0, 0.0]).unwrap();
        d.evolve_graph(&h2);
        let s2 = d.graph_state.clone().unwrap();
        assert!(s2.get(0, 1) > 0.5 && s2.get(0, 1) < s1.get(0, 1));
    }
}
