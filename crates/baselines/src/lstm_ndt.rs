//! LSTM-NDT (Hundman et al., KDD 2018) — extension baseline.
//!
//! Cited in the paper's related work (spacecraft telemetry) but not part of
//! its evaluated eleven; included here as a bonus method, available through
//! the CLI and the library API.
//!
//! Faithful core: an LSTM forecasts the next observation from recent
//! history; errors are smoothed with an EWMA (the "nonparametric dynamic
//! thresholding" paper thresholds the *smoothed* errors, which is the part
//! that matters for scoring). To stay comparable with every other method in
//! this workspace, the final threshold still comes from the shared POT
//! pipeline applied to those smoothed errors.

use aero_nn::{Activation, EarlyStopping, Linear, Lstm};
use aero_tensor::{Adam, Graph, Matrix, NodeId, ParamStore};
use aero_timeseries::stats::ewma;
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::NnConfig;
use aero_core::{Detector, DetectorError, DetectorResult};

/// LSTM-NDT detector.
#[derive(Debug)]
pub struct LstmNdt {
    config: NnConfig,
    /// Forecast input history length.
    pub input_window: usize,
    /// EWMA smoothing factor for the error sequence.
    pub smoothing: f32,
    store: ParamStore,
    lstm: Option<Lstm>,
    head: Option<Linear>,
    scaler: MinMaxScaler,
    num_variates: usize,
    trained: bool,
}

impl LstmNdt {
    /// Creates an untrained LSTM-NDT.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            input_window: 16,
            smoothing: 0.3,
            store: ParamStore::new(),
            lstm: None,
            head: None,
            scaler: MinMaxScaler::new(),
            num_variates: 0,
            trained: false,
        }
    }

    fn build(&mut self, n: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let h = self.config.hidden;
        let mut store = ParamStore::new();
        self.lstm = Some(Lstm::new(&mut store, "lstmndt", n, h, &mut rng));
        self.head = Some(Linear::new(&mut store, "lstmndt.head", h, n, Activation::Identity, &mut rng));
        self.store = store;
        self.num_variates = n;
    }

    /// Forecast of the step after `history` (`N × input_window`).
    fn forecast(&self, g: &mut Graph, history: &Matrix) -> DetectorResult<NodeId> {
        let lstm = self
            .lstm
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("LSTM-NDT not built".into()))?;
        let tokens = g.constant(history.transpose()); // w × N
        let hs = lstm.scan(g, &self.store, tokens)?;
        let last = g.slice_rows(hs, self.input_window - 1, 1)?;
        Ok(self.head.as_ref().unwrap().forward(g, &self.store, last)?) // 1 × N
    }
}

impl Detector for LstmNdt {
    fn name(&self) -> String {
        "LSTM-NDT".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build(train.num_variates());

        let w = self.input_window;
        let targets: Vec<usize> = (w..scaled.len()).step_by(self.config.stride.max(1)).collect();
        if targets.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let n = scaled.num_variates();

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &t in &targets {
                let history = scaled.window(t - 1, w)?;
                let target = Matrix::from_fn(1, n, |_, v| scaled.get(v, t));
                self.store.zero_grads();
                let mut g = Graph::new();
                let pred = self.forecast(&mut g, &history)?;
                let loss = g.mse_loss(pred, &target)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / targets.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let n = scaled.num_variates();
        let len = scaled.len();
        let w = self.input_window;
        // Forecasts at different timestamps are independent once training
        // has finished, so the per-t graphs evaluate in parallel. Supervised:
        // a panic in one graph surfaces as a typed error, never an abort.
        let this = &*self;
        let preds: Vec<Result<DetectorResult<Vec<f32>>, aero_parallel::ShardError>> =
            aero_parallel::supervised_map_range(len - w, |i| {
                let t = w + i;
                let history = scaled.window(t - 1, w)?;
                let mut g = Graph::new();
                let pred = this.forecast(&mut g, &history)?;
                let pv = g.value(pred)?;
                Ok((0..n).map(|v| (scaled.get(v, t) - pv.get(0, v)).abs()).collect())
            });
        let mut errors = Matrix::zeros(n, len);
        for (i, row) in preds.into_iter().enumerate() {
            for (v, e) in row.map_err(DetectorError::from)??.into_iter().enumerate() {
                errors.set(v, w + i, e);
            }
        }
        // NDT's error smoothing: sequential in t, independent per variate.
        let smoothed =
            aero_parallel::supervised_map_range(n, |v| ewma(errors.row(v), self.smoothing));
        for (v, row) in smoothed.into_iter().enumerate() {
            errors.row_mut(v).copy_from_slice(&row?);
        }
        Ok(errors)
    }

    fn warmup(&self) -> usize {
        self.input_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn lstm_ndt_end_to_end() {
        let ds = SyntheticConfig::tiny(28).build();
        let mut cfg = NnConfig::tiny();
        cfg.stride = 20;
        cfg.epochs = 2;
        let mut d = LstmNdt::new(cfg);
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn smoothing_reduces_spikiness() {
        let ds = SyntheticConfig::tiny(29).build();
        let mut cfg = NnConfig::tiny();
        cfg.stride = 25;
        cfg.epochs = 1;
        let mut sharp = LstmNdt::new(cfg.clone());
        sharp.smoothing = 1.0; // no smoothing
        let mut smooth = LstmNdt::new(cfg);
        smooth.smoothing = 0.1;
        sharp.fit(&ds.train).unwrap();
        smooth.fit(&ds.train).unwrap();
        let s1 = sharp.score(&ds.test).unwrap();
        let s2 = smooth.score(&ds.test).unwrap();
        // Total variation of the smoothed scores must be lower.
        let tv = |m: &Matrix| -> f32 {
            (0..m.rows())
                .map(|v| m.row(v).windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>())
                .sum()
        };
        assert!(tv(&s2) < tv(&s1), "smoothed TV {} vs sharp TV {}", tv(&s2), tv(&s1));
    }

    #[test]
    fn untrained_refuses_to_score() {
        let ds = SyntheticConfig::tiny(30).build();
        let mut d = LstmNdt::new(NnConfig::tiny());
        assert!(d.score(&ds.test).is_err());
    }
}
