//! Iterative radix-2 FFT used by the SR and TimesNet baselines.
//!
//! Self-contained (no external FFT crate): inputs are zero-padded to the
//! next power of two by callers.

/// A complex number (minimal, local to this module's users).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f32 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Argument (phase angle).
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    fn mul(self, other: Self) -> Self {
        Self::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Self) -> Self {
        Self::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Self) -> Self {
        Self::new(self.re - other.re, self.im - other.im)
    }

    /// Complex from polar form.
    pub fn from_polar(r: f32, theta: f32) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative Cooley–Tukey FFT. `data.len()` must be a power of two.
/// `inverse` computes the unnormalized inverse transform (callers divide by
/// `n`).
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::from_polar(1.0, angle);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
pub fn rfft(signal: &[f32]) -> Vec<Complex> {
    let n = next_pow2(signal.len());
    let mut data = vec![Complex::default(); n];
    for (d, &s) in data.iter_mut().zip(signal) {
        d.re = s;
    }
    fft_in_place(&mut data, false);
    data
}

/// Inverse FFT returning the real parts, truncated to `out_len`.
pub fn irfft(mut spectrum: Vec<Complex>, out_len: usize) -> Vec<f32> {
    let n = spectrum.len() as f32;
    fft_in_place(&mut spectrum, true);
    spectrum
        .into_iter()
        .take(out_len)
        .map(|c| c.re / n)
        .collect()
}

/// Index (1 ≤ k < n/2) of the dominant non-DC frequency, or `None` for
/// signals shorter than 4 samples. Used by TimesNet's period detection.
pub fn dominant_frequency(signal: &[f32]) -> Option<usize> {
    if signal.len() < 4 {
        return None;
    }
    let spec = rfft(signal);
    let half = spec.len() / 2;
    (1..half).max_by(|&a, &b| {
        spec[a]
            .abs()
            .partial_cmp(&spec[b].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0].re = 1.0;
        fft_in_place(&mut data, false);
        for c in &data {
            assert!((c.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let signal: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        let spec = rfft(&signal);
        let back = irfft(spec, 16);
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 64;
        let freq = 5;
        let signal: Vec<f32> = (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * freq as f32 * i as f32 / n as f32).sin())
            .collect();
        let spec = rfft(&signal);
        let peak = (1..n / 2)
            .max_by(|&a, &b| spec[a].abs().partial_cmp(&spec[b].abs()).unwrap())
            .unwrap();
        assert_eq!(peak, freq);
    }

    #[test]
    fn dominant_frequency_finds_period() {
        let n = 128;
        let period = 16;
        let signal: Vec<f32> = (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / period as f32).cos())
            .collect();
        let k = dominant_frequency(&signal).unwrap();
        // period = n / k
        assert_eq!(128 / k, period);
        assert!(dominant_frequency(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn next_pow2_boundaries() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(9), 16);
    }
}
