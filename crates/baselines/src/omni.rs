//! OmniAnomaly (Su et al., KDD 2019) — stochastic recurrent VAE over the
//! joint multivariate window.
//!
//! Faithful core: a GRU encodes the window; each timestep's hidden state
//! parameterizes a Gaussian latent `z_t` (temporal dependency + variable
//! stochasticity); a decoder maps `z_t` back to the observation. Training
//! maximizes the ELBO. Simplifications: no planar normalizing flows and no
//! linear Gaussian state-space smoother on `z` — the stochastic-GRU
//! reconstruction backbone that drives its behaviour in the tables is kept.

use aero_nn::{kl_standard_normal, Activation, EarlyStopping, GaussianHead, Gru, Linear};
use aero_tensor::{Adam, Graph, Matrix, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{score_by_blocks, NnConfig};
use aero_core::{Detector, DetectorError, DetectorResult};

/// OmniAnomaly detector.
#[derive(Debug)]
pub struct OmniAnomaly {
    config: NnConfig,
    /// KL weight.
    pub beta: f32,
    store: ParamStore,
    gru: Option<Gru>,
    head: Option<GaussianHead>,
    dec1: Option<Linear>,
    dec2: Option<Linear>,
    scaler: MinMaxScaler,
    num_variates: usize,
    trained: bool,
}

impl OmniAnomaly {
    /// Creates an untrained OmniAnomaly.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            beta: 0.1,
            store: ParamStore::new(),
            gru: None,
            head: None,
            dec1: None,
            dec2: None,
            scaler: MinMaxScaler::new(),
            num_variates: 0,
            trained: false,
        }
    }

    fn build(&mut self, n: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let h = self.config.hidden;
        let z = self.config.latent;
        let mut store = ParamStore::new();
        self.gru = Some(Gru::new(&mut store, "omni.gru", n, h, &mut rng));
        self.head = Some(GaussianHead::new(&mut store, "omni.head", h, z, &mut rng));
        self.dec1 = Some(Linear::new(&mut store, "omni.dec1", z, h, Activation::Relu, &mut rng));
        self.dec2 = Some(Linear::new(&mut store, "omni.dec2", h, n, Activation::Sigmoid, &mut rng));
        self.store = store;
        self.num_variates = n;
    }

    /// Reconstruction of one window. `tokens` is `w × N` (time-major);
    /// `eps` is `w × latent` noise (`None` = posterior mean).
    fn reconstruct(
        &self,
        g: &mut Graph,
        tokens: &Matrix,
        eps: Option<&Matrix>,
    ) -> DetectorResult<(aero_tensor::NodeId, aero_tensor::NodeId, aero_tensor::NodeId)> {
        let gru = self
            .gru
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("OmniAnomaly not built".into()))?;
        let x = g.constant(tokens.clone());
        let hs = gru.scan(g, &self.store, x)?; // w × hidden
        let zero_eps;
        let eps = match eps {
            Some(e) => e,
            None => {
                zero_eps = Matrix::zeros(tokens.rows(), self.config.latent);
                &zero_eps
            }
        };
        let (z, mu, logvar) = self
            .head
            .as_ref()
            .unwrap()
            .forward_with_eps(g, &self.store, hs, eps)?;
        let d = self.dec1.as_ref().unwrap().forward(g, &self.store, z)?;
        let recon = self.dec2.as_ref().unwrap().forward(g, &self.store, d)?;
        Ok((recon, mu, logvar))
    }
}

impl Detector for OmniAnomaly {
    fn name(&self) -> String {
        "OA".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build(train.num_variates());

        let w = self.config.window;
        let ends: Vec<usize> = scaled.window_ends(w, self.config.stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x0a);
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &end in &ends {
                let tokens = scaled.window(end, w)?.transpose(); // w × N
                self.store.zero_grads();
                let mut g = Graph::new();
                let eps = Matrix::from_fn(w, self.config.latent, |_, _| {
                    aero_nn::standard_normal(&mut rng)
                });
                let (recon, mu, logvar) = self.reconstruct(&mut g, &tokens, Some(&eps))?;
                let rec_loss = g.mse_loss(recon, &tokens)?;
                let kl = kl_standard_normal(&mut g, mu, logvar)?;
                let klw = g.affine(kl, self.beta, 0.0)?;
                let loss = g.add(rec_loss, klw)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / ends.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        if series.num_variates() != self.num_variates {
            return Err(DetectorError::Invalid("variate count mismatch".into()));
        }
        let scaled = self.scaler.transform(series)?;
        score_by_blocks(&scaled, self.config.window, |win, _| {
            let tokens = win.transpose();
            let mut g = Graph::new();
            let (recon, _, _) = self.reconstruct(&mut g, &tokens, None)?;
            let r = tokens.sub(g.value(recon)?)?;
            Ok(r.transpose()) // back to N × w
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn omni_end_to_end() {
        let ds = SyntheticConfig::tiny(22).build();
        let mut d = OmniAnomaly::new(NnConfig::tiny());
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn variate_mismatch_rejected() {
        let ds = SyntheticConfig::tiny(22).build();
        let mut d = OmniAnomaly::new(NnConfig::tiny());
        d.fit(&ds.train).unwrap();
        let other = MultivariateSeries::regular(Matrix::zeros(2, 100));
        assert!(d.score(&other).is_err());
    }
}
