//! TranAD (Tuli et al., VLDB 2022) — Transformer encoder-decoder with
//! self-conditioning on the focus score.
//!
//! Faithful core: phase 1 reconstructs the window directly; phase 2 feeds
//! the squared phase-1 deviation ("focus score") back as an extra input so
//! the model re-attends to badly reconstructed regions. The anomaly score
//! averages both phases' deviations. Simplification: the adversarial
//! ε-schedule between the two decoders is replaced by an equally-weighted
//! two-phase loss (the self-conditioning path, which gives TranAD its
//! sensitivity to small deviations, is preserved).

use aero_nn::{Activation, EarlyStopping, EncoderLayer, Linear};
use aero_tensor::{Adam, Graph, Matrix, NodeId, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{positional_encoding, score_by_blocks, NnConfig};
use aero_core::{Detector, DetectorError, DetectorResult};

/// TranAD detector.
#[derive(Debug)]
pub struct TranAd {
    config: NnConfig,
    store: ParamStore,
    embed1: Option<Linear>,
    embed2: Option<Linear>,
    encoder: Option<EncoderLayer>,
    head1: Option<Linear>,
    head2: Option<Linear>,
    scaler: MinMaxScaler,
    num_variates: usize,
    trained: bool,
}

impl TranAd {
    /// Creates an untrained TranAD.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            store: ParamStore::new(),
            embed1: None,
            embed2: None,
            encoder: None,
            head1: None,
            head2: None,
            scaler: MinMaxScaler::new(),
            num_variates: 0,
            trained: false,
        }
    }

    fn build(&mut self, n: usize) -> DetectorResult<()> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.hidden;
        let mut store = ParamStore::new();
        self.embed1 = Some(Linear::new(&mut store, "tranad.embed1", n, d, Activation::Identity, &mut rng));
        // Phase-2 embedding takes [x ‖ focus] — twice the channels.
        self.embed2 = Some(Linear::new(&mut store, "tranad.embed2", 2 * n, d, Activation::Identity, &mut rng));
        self.encoder = Some(EncoderLayer::new(&mut store, "tranad.enc", d, 2, 2 * d, &mut rng)?);
        self.head1 = Some(Linear::new(&mut store, "tranad.head1", d, n, Activation::Sigmoid, &mut rng));
        self.head2 = Some(Linear::new(&mut store, "tranad.head2", d, n, Activation::Sigmoid, &mut rng));
        self.store = store;
        self.num_variates = n;
        Ok(())
    }

    /// Two-phase forward: returns `(O1, O2)` reconstructions (`w × N`).
    fn forward(&self, g: &mut Graph, tokens: &Matrix) -> DetectorResult<(NodeId, NodeId)> {
        let embed1 = self
            .embed1
            .as_ref()
            .ok_or_else(|| DetectorError::Invalid("TranAD not built".into()))?;
        let w = tokens.rows();
        let pe = positional_encoding(w, self.config.hidden);

        // Phase 1.
        let x = g.constant(tokens.clone());
        let h1 = embed1.forward(g, &self.store, x)?;
        let pe1 = g.constant(pe.clone());
        let h1 = g.add(h1, pe1)?;
        let e1 = self.encoder.as_ref().unwrap().forward(g, &self.store, h1)?;
        let o1 = self.head1.as_ref().unwrap().forward(g, &self.store, e1)?;

        // Focus score: squared phase-1 deviation, self-conditioning input.
        let diff = g.sub(x, o1)?;
        let focus = g.hadamard(diff, diff)?;
        let x2 = g.concat_cols(&[x, focus])?;
        let h2 = self.embed2.as_ref().unwrap().forward(g, &self.store, x2)?;
        let pe2 = g.constant(pe);
        let h2 = g.add(h2, pe2)?;
        let e2 = self.encoder.as_ref().unwrap().forward(g, &self.store, h2)?;
        let o2 = self.head2.as_ref().unwrap().forward(g, &self.store, e2)?;
        Ok((o1, o2))
    }
}

impl Detector for TranAd {
    fn name(&self) -> String {
        "TranAD".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;
        self.build(train.num_variates())?;

        let w = self.config.window;
        let ends: Vec<usize> = scaled.window_ends(w, self.config.stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid("training series too short".into()));
        }
        let mut opt = Adam::new(self.config.lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            for &end in &ends {
                let tokens = scaled.window(end, w)?.transpose();
                self.store.zero_grads();
                let mut g = Graph::new();
                let (o1, o2) = self.forward(&mut g, &tokens)?;
                let l1 = g.mse_loss(o1, &tokens)?;
                let l2 = g.mse_loss(o2, &tokens)?;
                let loss = g.add(l1, l2)?;
                epoch_loss += g.value(loss)?.scalar_value()? as f64;
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
            }
            let mean = (epoch_loss / ends.len() as f64) as f32;
            if !stop.update(mean) {
                break;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        score_by_blocks(&scaled, self.config.window, |win, _| {
            let tokens = win.transpose();
            let mut g = Graph::new();
            let (o1, o2) = self.forward(&mut g, &tokens)?;
            let r1 = tokens.sub(g.value(o1)?)?;
            let r2 = tokens.sub(g.value(o2)?)?;
            let n = win.rows();
            let w = win.cols();
            let mut r = Matrix::zeros(n, w);
            for t in 0..w {
                for v in 0..n {
                    r.set(v, t, 0.5 * (r1.get(t, v).abs() + r2.get(t, v).abs()));
                }
            }
            Ok(r)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_datagen::SyntheticConfig;

    #[test]
    fn tranad_end_to_end() {
        let ds = SyntheticConfig::tiny(24).build();
        let mut d = TranAd::new(NnConfig::tiny());
        d.fit(&ds.train).unwrap();
        let scores = d.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn two_phases_produce_different_outputs_before_training() {
        let mut d = TranAd::new(NnConfig::tiny());
        d.build(2).unwrap();
        let tokens = Matrix::from_fn(12, 2, |r, c| ((r + c) as f32 * 0.2).sin() * 0.4 + 0.5);
        let mut g = Graph::new();
        let (o1, o2) = d.forward(&mut g, &tokens).unwrap();
        assert_ne!(g.value(o1).unwrap(), g.value(o2).unwrap());
    }
}
