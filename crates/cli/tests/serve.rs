//! End-to-end tests for the resident `aero serve` daemon and its `aero
//! loadgen` client (DESIGN.md §15), over real TCP sockets and real
//! processes:
//!
//! * **Crash equivalence** — a server SIGKILL'd mid-night and restarted
//!   with `--resume` must finish the night with a verdict log and health
//!   counters *bitwise identical* to an uninterrupted run.
//! * **Wire-fault tolerance** — seeded garbage, torn frames, duplicates,
//!   and slow-loris traffic across concurrent tenant connections must
//!   never poison the detector: the server keeps serving, accounts every
//!   rejection to a typed reason, and drains cleanly.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::OnceLock;

use aero_core::{save_model, Aero, AeroConfig, Detector};
use aero_datagen::SyntheticConfig;
use aero_timeseries::io::write_series;

/// One shared fixture per test binary: a tiny dataset on disk plus a
/// checkpoint trained with two epochs (the serve smoke needs a loadable
/// model, not a good one).
fn fixture() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("aero_serve_e2e_{}", std::process::id()));
        let data = dir.join("data");
        std::fs::create_dir_all(&data).unwrap();
        let dataset = SyntheticConfig::tiny(11).build();
        write_series(&dataset.train, &data.join("train.csv")).unwrap();
        write_series(&dataset.test, &data.join("test.csv")).unwrap();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 2;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&dataset.train).unwrap();
        save_model(&model, &dir.join("model.json")).unwrap();
        dir
    })
}

/// A running `aero serve` child whose readiness line has been consumed.
/// Killed on drop so a failing assertion never leaks a listener.
struct Server {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl Server {
    fn start(extra: &[&str]) -> Self {
        let dir = fixture();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_aero"));
        cmd.arg("serve")
            .arg("--data")
            .arg(dir.join("data"))
            .arg("--model")
            .arg(dir.join("model.json"))
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn aero serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("readiness line");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"))
            .split_whitespace()
            .next()
            .expect("addr token")
            .to_string();
        Server { child, stdout, addr }
    }

    /// SIGKILL — the crash the WAL must survive.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9 the server");
        self.child.wait().expect("reap");
        // Forget nothing: Drop would double-kill, which is harmless, but
        // consume self so the test reads as "the server is gone".
    }

    /// Waits for a clean exit (after a wire Drain) and returns the final
    /// summary JSON — the last line the server prints.
    fn wait_for_summary(mut self) -> String {
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exited with {status}");
        rest.lines().last().expect("final summary line").to_string()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `aero loadgen` to completion and returns its stdout.
fn loadgen(addr: &str, extra: &[&str]) -> String {
    let dir = fixture();
    let out = Command::new(env!("CARGO_BIN_EXE_aero"))
        .arg("loadgen")
        .arg("--connect")
        .arg(addr)
        .arg("--data")
        .arg(dir.join("data"))
        .args(extra)
        .stderr(Stdio::null())
        .output()
        .expect("run aero loadgen");
    assert!(
        out.status.success(),
        "loadgen failed ({}): {}",
        out.status,
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8(out.stdout).expect("loadgen stdout is utf8")
}

/// The summary's decision-relevant tail: every counter from the supervisor
/// and health blocks. The leading `frames` object legitimately differs
/// between a resumed and an uninterrupted run (replayed vs offered split);
/// everything after it must not.
fn summary_tail(summary: &str) -> &str {
    let at = summary.find("\"supervisor\"").expect("summary has a supervisor block");
    &summary[at..]
}

fn count(json: &str, key: &str) -> usize {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("{key} in {json}")) + needle.len();
    let rest = &json[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().unwrap()
}

/// SIGKILL the server mid-night, restart `--resume`, finish the night:
/// verdict log and all health/supervisor counters must be bitwise
/// identical to a run that was never interrupted.
#[test]
fn kill_nine_resume_is_bitwise_identical_to_uninterrupted() {
    let dir = fixture();
    let scratch = dir.join("bitwise");
    std::fs::create_dir_all(&scratch).unwrap();
    let ticks = "120";

    // Baseline: one server, the whole (bounded) night, clean drain.
    let base_verdicts = scratch.join("base_verdicts.log");
    let base_wal = scratch.join("base_wal");
    let server = Server::start(&[
        "--wal",
        base_wal.to_str().unwrap(),
        "--fsync",
        "record",
        "--verdicts",
        base_verdicts.to_str().unwrap(),
    ]);
    loadgen(&server.addr, &["--burst", "7", "--ticks", ticks, "--drain"]);
    let base_summary = server.wait_for_summary();

    // Interrupted: same schedule, but the server dies at tick 40 —
    // `kill -9`, no shutdown path, only the record-fsynced WAL survives.
    let verdicts = scratch.join("crash_verdicts.log");
    let wal = scratch.join("crash_wal");
    let server = Server::start(&[
        "--wal",
        wal.to_str().unwrap(),
        "--fsync",
        "record",
        "--verdicts",
        verdicts.to_str().unwrap(),
    ]);
    loadgen(&server.addr, &["--burst", "7", "--ticks", "40"]);
    server.kill_dash_nine();

    // Restart from the WAL and let the client resync off the status
    // document (it skips every frame the server already holds, keeping
    // tick boundaries — and with them the offer/poll interleaving —
    // aligned with the uninterrupted run).
    let server = Server::start(&[
        "--wal",
        wal.to_str().unwrap(),
        "--resume",
        "--fsync",
        "record",
        "--verdicts",
        verdicts.to_str().unwrap(),
    ]);
    loadgen(
        &server.addr,
        &["--burst", "7", "--ticks", ticks, "--resume-from-status", "--drain"],
    );
    let summary = server.wait_for_summary();

    let base_log = std::fs::read(&base_verdicts).unwrap();
    let crash_log = std::fs::read(&verdicts).unwrap();
    assert!(!base_log.is_empty(), "baseline produced no verdicts");
    assert_eq!(
        base_log, crash_log,
        "verdict logs diverge after kill -9 + --resume"
    );
    assert_eq!(
        summary_tail(&base_summary),
        summary_tail(&summary),
        "health/supervisor counters diverge after kill -9 + --resume"
    );
    // The night is conserved: replayed + offered in the resumed run equals
    // everything the baseline offered.
    assert!(count(&summary, "replayed") > 0, "resume replayed nothing: {summary}");
    assert_eq!(
        count(&summary, "replayed") + count(&summary, "offered"),
        count(&base_summary, "offered"),
        "frame conservation broke across the crash"
    );
}

/// Hostile wire traffic — garbage bytes, torn frames with disconnects,
/// duplicated batches, slow-loris chunking — across four concurrent
/// connections on two tenant lanes. The server must survive it all,
/// account rejections to typed reasons, and still drain cleanly.
#[test]
fn wire_faults_never_poison_the_server() {
    let server = Server::start(&[]);
    let addr = server.addr.clone();
    let out = loadgen(
        &addr,
        &[
            "--burst", "7", "--conns", "4", "--tenants", "2", "--wire-faults", "99",
            "--fault-period", "5", "--drain",
        ],
    );
    let summary = server.wait_for_summary();

    assert!(count(&out, "faults") > 0, "the fault plan never fired: {out}");
    assert!(count(&out, "reconnects") > 0, "torn frames should force reconnects: {out}");
    assert!(count(&out, "admitted") > 0, "no frames admitted through the chaos: {out}");
    // The detector behind the wire stayed healthy: it scored frames and
    // its supervisor saw no panics.
    assert!(count(&summary, "frames_accepted") > 0, "{summary}");
    assert_eq!(count(&summary, "panics"), 0, "{summary}");
    // Per-tenant accounting is present for both lanes.
    assert!(summary.contains("\"tenant\":0"), "{summary}");
    assert!(summary.contains("\"tenant\":1"), "{summary}");
}

/// The status endpoint answers on the same wire and nests the full health
/// report; a drain-only client shuts the server down gracefully.
#[test]
fn status_endpoint_and_graceful_drain() {
    let server = Server::start(&[]);
    let status = loadgen(&server.addr, &["--status"]);
    assert!(status.contains("\"state\":\"running\""), "{status}");
    assert!(status.contains("\"health\""), "{status}");
    assert_eq!(count(&status, "offered"), 0);

    let summary = loadgen(&server.addr, &["--drain-only"]);
    assert!(summary.contains("\"supervisor\""), "{summary}");
    let final_summary = server.wait_for_summary();
    assert_eq!(summary.trim(), final_summary.trim(), "drain ack and final summary differ");
}
