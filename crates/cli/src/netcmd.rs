//! `aero serve` / `aero loadgen` — the resident network service and its
//! deterministic load-generator client (DESIGN.md §15).
//!
//! `serve` promotes the `aero stream` replay loop into a long-lived TCP
//! daemon: framed star-frame batches from many concurrent tenants feed the
//! same [`StreamGovernor`] admission path, with per-tenant token buckets,
//! WAL-backed crash recovery (`--resume` reproduces verdicts and counters
//! bitwise), and a graceful wire-triggered drain.
//!
//! `loadgen` drives it over real sockets: seeded burst schedules, optional
//! wire-level fault injection (garbage, torn frames, duplicates,
//! slow-loris), reconnect-and-resync via the status document, and a typed
//! backoff on every rejection.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aero_baselines::SpectralResidual;
use aero_core::online::{DegradePolicy, OnlineAero};
use aero_core::serve::codec::{encode, Decoder, WireFrame, WireMsg, WIRE_PROTOCOL};
use aero_core::serve::{serve, ServeConfig, ServeCore, ServeOptions};
use aero_core::wal::{FsyncPolicy, WalConfig, WalWriter};
use aero_core::{
    FallbackScorer, JsonObject, OverloadPolicy, RejectReason, StreamGovernor, TenantQuota,
};
use aero_datagen::{LoadProfile, WireFaultPlan};
use aero_timeseries::io::read_series;

use crate::args::Args;

fn io_err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `aero serve` — bind, build the governed detector (optionally resuming
/// its WAL), and run the service until a wire `Drain` arrives.
pub fn serve_cmd(args: &Args) -> Result<(), String> {
    for opt in ["wal", "fsync", "verdicts", "quota-burst", "quota-refill", "queue-cap"] {
        if args.flag(opt) {
            return Err(format!("--{opt} requires a value"));
        }
    }
    let data = PathBuf::from(args.require("data")?);
    let model_path = PathBuf::from(args.require("model")?);
    let listen = args.get("listen").unwrap_or("127.0.0.1:0");
    let pot = aero_evt::PotConfig {
        level: args.get_parsed("level", 0.99f64)?,
        q: args.get_parsed("q", 1e-3f64)?,
    };
    let policy = DegradePolicy {
        refit_interval: args.get_parsed("refit-interval", 0usize)?,
        ..DegradePolicy::default()
    };
    let wal_dir = args.get("wal").map(PathBuf::from);
    let resume = args.flag("resume");
    if resume && wal_dir.is_none() {
        return Err("--resume requires --wal <dir>".into());
    }
    let fsync = match args.get("fsync") {
        None => FsyncPolicy::default(),
        Some(s) => FsyncPolicy::parse(s)
            .ok_or_else(|| format!("--fsync must be never|segment|record, got `{s}`"))?,
    };
    let queue_cap = args.get_parsed("queue-cap", 64usize)?;
    let quota = TenantQuota {
        burst: args.get_parsed("quota-burst", 32u32)?,
        refill_per_poll: args.get_parsed("quota-refill", 1u32)?,
    };
    let overload_policy = OverloadPolicy {
        queue_capacity: queue_cap,
        high_watermark: queue_cap / 2,
        low_watermark: queue_cap / 8,
        tenant_quota: Some(quota),
        ..OverloadPolicy::default()
    };
    let sr = SpectralResidual::default();
    let fallback = FallbackScorer::new(move |window| sr.latest_score(window));

    let train = read_series(&data.join("train.csv")).map_err(io_err)?;
    let model = aero_core::load_model(&model_path).map_err(io_err)?;
    let online = OnlineAero::with_policy(model, &train, pot, policy).map_err(io_err)?;
    let wal_config = WalConfig { fsync, ..WalConfig::default() };

    let opts = ServeOptions { verdict_log: args.get("verdicts").map(PathBuf::from) };
    let core = if let (Some(dir), true) = (&wal_dir, resume) {
        let (gov, verdicts, recovery) = StreamGovernor::resume_wal(
            online,
            overload_policy,
            Some(fallback),
            dir,
            wal_config,
        )
        .map_err(io_err)?;
        eprintln!(
            "resumed from {}: replayed {} frames ({} verdicts) across {} segments{}",
            dir.display(),
            recovery.frames,
            verdicts.len(),
            recovery.segments,
            if recovery.truncated {
                format!(
                    " (torn tail: {} bytes and {} segments dropped)",
                    recovery.dropped_bytes, recovery.dropped_segments
                )
            } else {
                String::new()
            }
        );
        let mut core = ServeCore::new(gov, opts).map_err(io_err)?;
        core.absorb_replay(&verdicts, recovery.frames).map_err(io_err)?;
        core
    } else {
        let mut gov = StreamGovernor::with_policy(online, overload_policy).map_err(io_err)?;
        gov.set_fallback(Some(fallback));
        if let Some(dir) = &wal_dir {
            gov.attach_wal(WalWriter::create(dir, wal_config).map_err(io_err)?)
                .map_err(io_err)?;
            eprintln!("write-ahead log: {} (fsync {:?})", dir.display(), fsync);
        }
        ServeCore::new(gov, opts).map_err(io_err)?
    };

    let cfg = ServeConfig {
        read_timeout: Duration::from_millis(args.get_parsed("read-timeout-ms", 100u64)?),
        idle_timeout: Duration::from_millis(args.get_parsed("idle-timeout-ms", 10_000u64)?),
        max_connections: args.get_parsed("max-conns", 64usize)?,
        ..ServeConfig::default()
    };
    let listener = TcpListener::bind(listen).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    // The readiness line tests and tooling parse; stdout is line-buffered.
    println!("listening on {addr} ({} stars, queue cap {queue_cap})", core.stars());
    let shutdown = Arc::new(AtomicBool::new(false));
    let report = serve(listener, core, cfg, shutdown).map_err(io_err)?;
    eprintln!(
        "served {} connections ({} protocol errors, {} refused)",
        report.connections, report.protocol_errors, report.refused
    );
    println!("{}", report.summary_json);
    Ok(())
}

/// A blocking wire client: framed send/recv over one TCP connection.
struct WireClient {
    stream: TcpStream,
    decoder: Decoder,
}

impl WireClient {
    fn connect(addr: &str, tenant: u32) -> Result<(Self, u32), String> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(io_err)?;
        let _ = stream.set_nodelay(true);
        let mut client = Self {
            stream,
            decoder: Decoder::new(aero_core::serve::codec::DEFAULT_MAX_PAYLOAD),
        };
        client.send(&WireMsg::Hello { tenant, protocol: WIRE_PROTOCOL })?;
        match client.recv(Duration::from_secs(10))? {
            WireMsg::HelloAck { stars, .. } => Ok((client, stars)),
            other => Err(format!("handshake failed: {other:?}")),
        }
    }

    fn send(&mut self, msg: &WireMsg) -> Result<(), String> {
        self.stream.write_all(&encode(msg)).map_err(io_err)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.stream.write_all(bytes).map_err(io_err)
    }

    fn recv(&mut self, deadline: Duration) -> Result<WireMsg, String> {
        let start = Instant::now();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(msg) = self.decoder.next().map_err(io_err)? {
                return Ok(msg);
            }
            if start.elapsed() > deadline {
                return Err("timed out waiting for a reply".into());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection".into()),
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.to_string()),
            }
        }
    }
}

/// Counters one loadgen connection accumulates.
#[derive(Debug, Default, Clone)]
struct LoadStats {
    offered: usize,
    admitted: usize,
    rejected_backpressure: usize,
    rejected_quota: usize,
    rejected_draining: usize,
    faults: usize,
    reconnects: usize,
    lost_to_faults: usize,
}

impl LoadStats {
    fn absorb(&mut self, other: &LoadStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.rejected_backpressure += other.rejected_backpressure;
        self.rejected_quota += other.rejected_quota;
        self.rejected_draining += other.rejected_draining;
        self.faults += other.faults;
        self.reconnects += other.reconnects;
        self.lost_to_faults += other.lost_to_faults;
    }

    fn json(&self, connections: usize) -> String {
        JsonObject::new()
            .num("connections", connections)
            .num("offered", self.offered)
            .num("admitted", self.admitted)
            .num("rejected_backpressure", self.rejected_backpressure)
            .num("rejected_quota", self.rejected_quota)
            .num("rejected_draining", self.rejected_draining)
            .num("faults", self.faults)
            .num("reconnects", self.reconnects)
            .num("lost_to_faults", self.lost_to_faults)
            .finish()
    }
}

fn fetch_status(addr: &str) -> Result<String, String> {
    let (mut client, _) = WireClient::connect(addr, 0)?;
    client.send(&WireMsg::Status)?;
    match client.recv(Duration::from_secs(10))? {
        WireMsg::StatusJson(json) => Ok(json),
        other => Err(format!("expected StatusJson, got {other:?}")),
    }
}

/// Pulls `"key":<number>` out of a status document (the status JSON is flat
/// for the fields loadgen needs; no full parser required).
fn json_usize(json: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `aero loadgen` — deterministic burst traffic against a running server.
pub fn loadgen(args: &Args) -> Result<(), String> {
    for opt in ["burst", "wire-faults", "ticks", "conns", "tenants"] {
        if args.flag(opt) {
            return Err(format!("--{opt} requires a value"));
        }
    }
    let addr = args.require("connect")?.to_string();

    if args.flag("status") {
        println!("{}", fetch_status(&addr)?);
        return Ok(());
    }
    if args.flag("drain-only") {
        let (mut client, _) = WireClient::connect(&addr, 0)?;
        client.send(&WireMsg::Drain)?;
        match client.recv(Duration::from_secs(60))? {
            WireMsg::DrainAck(summary) => {
                println!("{summary}");
                return Ok(());
            }
            other => return Err(format!("expected DrainAck, got {other:?}")),
        }
    }

    let data = PathBuf::from(args.require("data")?);
    let conns = args.get_parsed("conns", 1usize)?.max(1);
    let tenants = args.get_parsed("tenants", 1u32)?.max(1);
    let burst_seed = match args.get("burst") {
        Some(s) => Some(s.parse::<u64>().map_err(io_err)?),
        None => None,
    };
    let fault_plan = match args.get("wire-faults") {
        Some(s) => WireFaultPlan::chaos(
            s.parse::<u64>().map_err(io_err)?,
            args.get_parsed("fault-period", 7usize)?,
        ),
        None => WireFaultPlan::clean(),
    };
    let max_ticks = args.get_parsed("ticks", usize::MAX)?;
    let drain = args.flag("drain");

    let test = read_series(&data.join("test.csv")).map_err(io_err)?;
    let n = test.num_variates();
    let frames: Vec<WireFrame> = (0..test.len())
        .map(|t| WireFrame {
            timestamp: test.timestamps()[t],
            values: (0..n).map(|v| test.get(v, t)).collect(),
        })
        .collect();
    let schedule = match burst_seed {
        Some(seed) => LoadProfile::burst_night(seed, frames.len()).arrivals(),
        None => LoadProfile::realtime(0, frames.len()).arrivals(),
    };

    // Reconnect-and-resync: the server's WAL (surfaced through the status
    // document) is the source of truth for how many frames it already has;
    // the client never re-offers them.
    let mut to_skip = 0usize;
    if args.flag("resume-from-status") {
        let status = fetch_status(&addr)?;
        let replayed = json_usize(&status, "replayed").unwrap_or(0);
        let offered = json_usize(&status, "offered").unwrap_or(0);
        to_skip = replayed + offered;
        eprintln!("resuming: server already holds {to_skip} frames; skipping them");
    }

    // Partition ticks round-robin across connections; each connection is a
    // tenant lane (conn index mod --tenants). One connection preserves the
    // exact single-stream arrival order — the bitwise-restart configuration.
    let mut slices: Vec<Vec<(u64, Vec<WireFrame>)>> = vec![Vec::new(); conns];
    let mut cursor = 0usize;
    let mut skipped = to_skip;
    for (tick, &arrivals) in schedule.iter().enumerate() {
        if cursor >= frames.len() || tick >= max_ticks {
            break;
        }
        let batch: Vec<WireFrame> =
            frames[cursor..(cursor + arrivals).min(frames.len())].to_vec();
        cursor += batch.len();
        // Fast-forward whole batches the server already admitted to its WAL;
        // tick boundaries stay aligned so the offer/poll interleaving — and
        // with it every admission decision — replays bitwise.
        if skipped >= batch.len() {
            skipped -= batch.len();
            continue;
        } else if skipped > 0 {
            let live = batch[skipped..].to_vec();
            skipped = 0;
            slices[tick % conns].push((tick as u64, live));
            continue;
        }
        if batch.is_empty() {
            continue;
        }
        slices[tick % conns].push((tick as u64, batch));
    }

    let mut total = LoadStats::default();
    if conns == 1 {
        let stats = run_connection(&addr, 0, &slices[0], &fault_plan)?;
        total.absorb(&stats);
    } else {
        let mut handles = Vec::new();
        for (c, slice) in slices.into_iter().enumerate() {
            let addr = addr.clone();
            let plan = fault_plan.clone();
            let tenant = c as u32 % tenants;
            handles.push(
                aero_parallel::supervised_spawn(&format!("loadgen-{c}"), move || {
                    run_connection(&addr, tenant, &slice, &plan)
                })
                .map_err(io_err)?,
            );
        }
        for h in handles {
            let stats = h.join().map_err(io_err)??;
            total.absorb(&stats);
        }
    }

    if drain {
        let (mut client, _) = WireClient::connect(&addr, 0)?;
        client.send(&WireMsg::Drain)?;
        match client.recv(Duration::from_secs(60))? {
            WireMsg::DrainAck(summary) => eprintln!("drained; final summary: {summary}"),
            other => return Err(format!("expected DrainAck, got {other:?}")),
        }
    }
    println!("{}", total.json(conns));
    Ok(())
}

/// Sends one connection's tick slice, applying the wire-fault plan and
/// reconnecting (with a typed resync) whenever a fault tears the socket.
fn run_connection(
    addr: &str,
    tenant: u32,
    slice: &[(u64, Vec<WireFrame>)],
    plan: &WireFaultPlan,
) -> Result<LoadStats, String> {
    let mut stats = LoadStats::default();
    if slice.is_empty() {
        return Ok(stats);
    }
    let (mut client, _) = WireClient::connect(addr, tenant)?;
    for (tick, batch) in slice {
        let msg = WireMsg::Ingest { seq: *tick, frames: batch.clone() };
        let bytes = encode(&msg);
        let (pieces, disconnects) = plan.apply(*tick, &bytes);
        let faulted = pieces.len() != 1 || disconnects || pieces[0] != bytes;
        if faulted {
            stats.faults += 1;
        }
        let mut write_failed = false;
        for (i, piece) in pieces.iter().enumerate() {
            if i > 0 {
                // Slow-loris pacing between pieces (still far faster than
                // the server's idle bound; the *stall* defense is what the
                // torn-frame disconnect below exercises).
                std::thread::sleep(Duration::from_millis(2));
            }
            if client.send_raw(piece).is_err() {
                write_failed = true;
                break;
            }
        }
        if disconnects || write_failed {
            // Torn frame / garbage: the server drops us. Those frames are
            // gone (never admitted); reconnect and continue with the next
            // tick.
            stats.lost_to_faults += batch.len();
            let _ = client.stream.shutdown(std::net::Shutdown::Both);
            stats.reconnects += 1;
            client = WireClient::connect(addr, tenant)?.0;
            continue;
        }
        // One reply per Ingest actually delivered; a Duplicate fault sent
        // the batch twice, so the server answers twice.
        let replies =
            if plan.fault_for(*tick) == aero_datagen::WireFault::Duplicate { 2 } else { 1 };
        for _ in 0..replies {
            match client.recv(Duration::from_secs(30)) {
                Ok(WireMsg::Ack { admitted, .. }) => {
                    stats.offered += batch.len();
                    stats.admitted += admitted as usize;
                }
                Ok(WireMsg::Reject { reason, admitted, rejected, .. }) => {
                    stats.offered += batch.len();
                    stats.admitted += admitted as usize;
                    match reason {
                        RejectReason::Backpressure => {
                            stats.rejected_backpressure += rejected as usize;
                            // Typed backoff: give the queue a poll's worth
                            // of room before the next tick.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        RejectReason::QuotaExceeded => {
                            stats.rejected_quota += rejected as usize;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        RejectReason::Draining => {
                            stats.rejected_draining += rejected as usize;
                            return Ok(stats);
                        }
                    }
                }
                Ok(WireMsg::Error { code, message }) => {
                    return Err(format!("server error {code}: {message}"));
                }
                Ok(other) => return Err(format!("unexpected reply: {other:?}")),
                Err(e) => return Err(e),
            }
        }
    }
    client.send(&WireMsg::Bye).ok();
    Ok(stats)
}
