//! Subcommand implementations for the `aero` CLI.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use aero_baselines::{
    AnomalyTransformer, Donut, Esg, FluxEv, Gdn, LstmNdt, NnConfig, OmniAnomaly,
    SpectralResidual, SpotDetector, TemplateMatching, TimesNet, TranAd, VaeLstm,
};
use aero_core::online::{DegradePolicy, FrameDisposition, OnlineAero, StarStatus};
use aero_core::wal::{FsyncPolicy, WalConfig, WalWriter};
use aero_core::fleet::{
    FleetConfig, FleetCoordinator, ShardAssignment, ShardFactory, StarCatalog,
};
use aero_core::{
    build_catalog, render_catalog, render_fleet_health, run_detection, Aero, AeroConfig, Detector,
    FallbackScorer, JsonObject, OverloadPolicy, StarDelta, StreamGovernor, SupervisorPolicy,
};
use aero_datagen::{AstrosetConfig, FaultInjector, FaultPlan, LoadProfile, SyntheticConfig};
use aero_eval::{evaluate_point_adjusted, threshold_scores};
use aero_evt::PotConfig;
use aero_timeseries::io::{read_labels, read_series, write_labels, write_series};
use aero_timeseries::{Dataset, LabelGrid};

use crate::args::Args;

/// The detectors `detect --method` accepts, with display names.
pub const METHODS: [(&str, &str); 14] = [
    ("aero", "AERO (this paper): two-stage Transformer + window-wise GNN"),
    ("tm", "Template Matching (SciDetector)"),
    ("sr", "Spectral Residual"),
    ("spot", "SPOT (EVT on raw values)"),
    ("fluxev", "FluxEV (EVT on extracted fluctuations)"),
    ("donut", "Donut (window VAE)"),
    ("omni", "OmniAnomaly (stochastic GRU-VAE)"),
    ("at", "AnomalyTransformer (association discrepancy)"),
    ("tranad", "TranAD (self-conditioned Transformer)"),
    ("gdn", "GDN (static learned graph)"),
    ("esg", "ESG (evolving graph)"),
    ("timesnet", "TimesNet (period-fold convolutions)"),
    ("lstm-ndt", "LSTM-NDT (bonus: forecast + smoothed errors)"),
    ("vae-lstm", "VAE-LSTM (bonus: local VAE + latent LSTM)"),
];

/// Prints the method table.
pub fn list_methods() {
    println!("available detectors:");
    for (key, desc) in METHODS {
        println!("  {key:<9} {desc}");
    }
}

fn build_detector(name: &str, paper: bool) -> Result<Box<dyn Detector>, String> {
    let nn = if paper {
        NnConfig { window: 60, hidden: 64, latent: 16, epochs: 100, patience: 5, stride: 10, ..NnConfig::fast() }
    } else {
        NnConfig::fast()
    };
    let aero_cfg = if paper { AeroConfig::paper() } else { AeroConfig::fast() };
    Ok(match name {
        "aero" => Box::new(Aero::new(aero_cfg).map_err(|e| e.to_string())?),
        "tm" => Box::new(TemplateMatching::default()),
        "sr" => Box::new(SpectralResidual::default()),
        "spot" => Box::new(SpotDetector::new()),
        "fluxev" => Box::new(FluxEv::default()),
        "donut" => Box::new(Donut::new(nn)),
        "omni" => Box::new(OmniAnomaly::new(nn)),
        "at" => Box::new(AnomalyTransformer::new(nn)),
        "tranad" => Box::new(TranAd::new(nn)),
        "gdn" => Box::new(Gdn::new(nn)),
        "esg" => Box::new(Esg::new(nn)),
        "timesnet" => Box::new(TimesNet::new(nn)),
        "lstm-ndt" => Box::new(LstmNdt::new(nn)),
        "vae-lstm" => Box::new(VaeLstm::new(nn)),
        other => return Err(format!("unknown method: {other} (see `aero list-methods`)")),
    })
}

fn build_preset(name: &str, seed: Option<u64>) -> Result<Dataset, String> {
    let synthetic = |mut cfg: SyntheticConfig| {
        if let Some(s) = seed {
            cfg.seed = s;
        }
        cfg.build()
    };
    let astro = |mut cfg: AstrosetConfig| {
        if let Some(s) = seed {
            cfg.seed = s;
        }
        cfg.build()
    };
    Ok(match name {
        "synthetic-middle" => synthetic(SyntheticConfig::middle()),
        "synthetic-high" => synthetic(SyntheticConfig::high()),
        "synthetic-low" => synthetic(SyntheticConfig::low()),
        "astroset-middle" => astro(AstrosetConfig::middle()),
        "astroset-high" => astro(AstrosetConfig::high()),
        "astroset-low" => astro(AstrosetConfig::low()),
        "tiny" => synthetic(SyntheticConfig::tiny(seed.unwrap_or(42))),
        other => return Err(format!("unknown preset: {other}")),
    })
}

fn io_err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `aero generate` — writes train/test series plus ground-truth grids.
pub fn generate(args: &Args) -> Result<(), String> {
    let preset = args.require("preset")?;
    let out = PathBuf::from(args.require("out")?);
    let seed = match args.get("seed") {
        Some(s) => Some(s.parse::<u64>().map_err(io_err)?),
        None => None,
    };
    let dataset = build_preset(preset, seed)?;
    dataset.validate().map_err(io_err)?;
    std::fs::create_dir_all(&out).map_err(io_err)?;

    write_series(&dataset.train, &out.join("train.csv")).map_err(io_err)?;
    write_series(&dataset.test, &out.join("test.csv")).map_err(io_err)?;
    write_labels(&dataset.test_labels, &out.join("test_labels.csv")).map_err(io_err)?;
    write_labels(&dataset.test_noise, &out.join("test_noise.csv")).map_err(io_err)?;

    let stats = dataset.stats();
    println!(
        "wrote {preset} to {}: {} stars, {} train / {} test points,",
        out.display(),
        stats.variates,
        stats.train_len,
        stats.test_len
    );
    println!(
        "  anomalies {:.3}% ({} segments), concurrent noise {:.3}% (variates {})",
        stats.anomaly_pct, stats.anomaly_segments, stats.noise_pct, stats.noise_variates
    );
    Ok(())
}

/// `aero detect` — fit, calibrate, score, threshold, persist.
pub fn detect(args: &Args) -> Result<(), String> {
    let data = PathBuf::from(args.require("data")?);
    let method = args.require("method")?;
    let out = PathBuf::from(args.require("out")?);
    let paper = args.flag("paper");
    let pot = PotConfig {
        level: args.get_parsed("level", 0.99f64)?,
        q: args.get_parsed("q", 1e-3f64)?,
    };

    let train = read_series(&data.join("train.csv")).map_err(io_err)?;
    let test = read_series(&data.join("test.csv")).map_err(io_err)?;
    if train.num_variates() != test.num_variates() {
        return Err(format!(
            "train has {} variates but test has {}",
            train.num_variates(),
            test.num_variates()
        ));
    }
    // Ground truth is optional — used for reporting only.
    let labels_path = data.join("test_labels.csv");
    let labels = if labels_path.exists() {
        Some(read_labels(&labels_path).map_err(io_err)?)
    } else {
        None
    };
    let dataset = Dataset {
        name: data.display().to_string(),
        test_labels: labels
            .clone()
            .unwrap_or_else(|| LabelGrid::new(test.num_variates(), test.len())),
        test_noise: LabelGrid::new(test.num_variates(), test.len()),
        train_noise: LabelGrid::new(train.num_variates(), train.len()),
        train,
        test,
    };

    let mut detector = build_detector(method, paper)?;
    eprintln!("training {} …", detector.name());
    let outcome = run_detection(detector.as_mut(), &dataset, pot).map_err(io_err)?;

    // Optional model persistence (AERO only): train once, redeploy later.
    if let Some(model_path) = args.get("save-model") {
        if method == "aero" {
            // Re-fit on the full training split for the saved artefact.
            let mut model = Aero::new(if paper { AeroConfig::paper() } else { AeroConfig::fast() })
                .map_err(io_err)?;
            model.fit(&dataset.train).map_err(io_err)?;
            aero_core::save_model(&model, Path::new(model_path)).map_err(io_err)?;
            eprintln!("saved trained AERO to {model_path}");
        } else {
            return Err("--save-model is only supported for --method aero".into());
        }
    }

    std::fs::create_dir_all(&out).map_err(io_err)?;
    // scores.csv: same layout as a series file.
    let score_series = aero_timeseries::MultivariateSeries::new(
        outcome.scores.clone(),
        dataset.test.timestamps().to_vec(),
    )
    .map_err(io_err)?;
    write_series(&score_series, &out.join("scores.csv")).map_err(io_err)?;
    let flags = threshold_scores(&outcome.scores, outcome.threshold.threshold);
    write_labels(&flags, &out.join("flags.csv")).map_err(io_err)?;

    let mut summary = format!(
        "method: {}\nthreshold: {:.6} (POT level {}, q {}, gamma {:.4}, {} peaks)\n\
         train time: {:.2}s\ntest time: {:.2}s\nflagged points: {}\n",
        detector.name(),
        outcome.threshold.threshold,
        pot.level,
        pot.q,
        outcome.threshold.gamma,
        outcome.threshold.peaks,
        outcome.timing.train_secs,
        outcome.timing.test_secs,
        flags.count(),
    );
    if labels.is_some() {
        summary.push_str(&format!(
            "precision: {:.2}%\nrecall: {:.2}%\nF1: {:.2}%\n",
            outcome.metrics.precision * 100.0,
            outcome.metrics.recall * 100.0,
            outcome.metrics.f1 * 100.0
        ));
    }
    std::fs::write(out.join("summary.txt"), &summary).map_err(io_err)?;

    // Ranked event catalog — the artefact an astronomer reviews.
    let catalog = build_catalog(&flags, &outcome.scores, 3);
    let rendered = render_catalog(&catalog, dataset.test.timestamps(), 50);
    std::fs::write(out.join("catalog.txt"), &rendered).map_err(io_err)?;

    print!("{summary}");
    println!("{} candidate events (top ranked in catalog.txt)", catalog.len());
    println!(
        "wrote scores.csv, flags.csv, summary.txt, catalog.txt to {}",
        out.display()
    );
    Ok(())
}

/// `aero stream` — replay a test series frame-by-frame through a saved
/// model, as the online monitor would consume it, and report per-frame
/// verdicts plus the degradation health counters. The stream runs behind a
/// [`StreamGovernor`]: a bounded admission queue, priority load shedding,
/// and the degradation ladder (DESIGN.md §11), with the spectral-residual
/// baseline wired in as the model-free fallback rung.
pub fn stream(args: &Args) -> Result<(), String> {
    // A bare `--faults` / `--refit-interval` / … parses as a boolean flag; a
    // silent no-fault run when the user asked for one defeats the point.
    for opt in [
        "faults", "refit-interval", "wal", "fsync", "kill-after", "burst", "queue-cap", "shards",
        "probe-after", "kill-shard", "rebalance-every",
    ] {
        if args.flag(opt) {
            return Err(format!("--{opt} requires a value"));
        }
    }
    if args.get("shards").is_some() {
        return stream_fleet(args);
    }
    for opt in ["probe-after", "kill-shard", "rebalance-every"] {
        if args.get(opt).is_some() {
            return Err(format!(
                "--{opt} applies to shard-level fleet supervision; add --shards <n>"
            ));
        }
    }
    let data = PathBuf::from(args.require("data")?);
    let model_path = PathBuf::from(args.require("model")?);
    let pot = PotConfig {
        level: args.get_parsed("level", 0.99f64)?,
        q: args.get_parsed("q", 1e-3f64)?,
    };
    let policy = DegradePolicy {
        refit_interval: args.get_parsed("refit-interval", 0usize)?,
        ..DegradePolicy::default()
    };
    let wal_dir = args.get("wal").map(PathBuf::from);
    let resume = args.flag("resume");
    if resume && wal_dir.is_none() {
        return Err("--resume requires --wal <dir>".into());
    }
    let fsync = match args.get("fsync") {
        None => FsyncPolicy::default(),
        Some(s) => FsyncPolicy::parse(s)
            .ok_or_else(|| format!("--fsync must be never|segment|record, got `{s}`"))?,
    };
    let kill_after = args.get_parsed("kill-after", usize::MAX)?;
    let burst_seed = match args.get("burst") {
        Some(s) => Some(s.parse::<u64>().map_err(io_err)?),
        None => None,
    };
    let queue_cap = args.get_parsed("queue-cap", 64usize)?;
    // Watermarks scale with the chosen capacity: degrade from half full,
    // recover below one eighth.
    let overload_policy = OverloadPolicy {
        queue_capacity: queue_cap,
        high_watermark: queue_cap / 2,
        low_watermark: queue_cap / 8,
        ..OverloadPolicy::default()
    };
    let sr = SpectralResidual::default();
    let fallback = FallbackScorer::new(move |window| sr.latest_score(window));

    let train = read_series(&data.join("train.csv")).map_err(io_err)?;
    let test = read_series(&data.join("test.csv")).map_err(io_err)?;
    let model = aero_core::load_model(&model_path).map_err(io_err)?;
    let online = OnlineAero::with_policy(model, &train, pot, policy).map_err(io_err)?;
    eprintln!(
        "streaming {} frames × {} stars (threshold {:.6}, cadence {:.3}, queue cap {})",
        test.len(),
        test.num_variates(),
        online.threshold().threshold,
        online.cadence(),
        queue_cap,
    );

    // Crash recovery: replay the WAL's surviving prefix — including the
    // recorded offer/poll interleaving — through a fresh governor,
    // reconstructing queue, ladder, and counters exactly; then continue the
    // night on the healed log.
    let wal_config = WalConfig { fsync, ..WalConfig::default() };
    let mut replayed = 0usize;
    let mut replay_verdicts = Vec::new();
    let mut gov = if let (Some(dir), true) = (&wal_dir, resume) {
        let (gov, verdicts, recovery) = StreamGovernor::resume_wal(
            online,
            overload_policy,
            Some(fallback),
            dir,
            wal_config,
        )
        .map_err(io_err)?;
        replayed = recovery.frames;
        eprintln!(
            "resumed from {}: replayed {} frames ({} verdicts) across {} segments{}",
            dir.display(),
            recovery.frames,
            verdicts.len(),
            recovery.segments,
            if recovery.truncated {
                format!(
                    " (torn tail: {} bytes and {} segments dropped)",
                    recovery.dropped_bytes, recovery.dropped_segments
                )
            } else {
                String::new()
            }
        );
        replay_verdicts = verdicts;
        gov
    } else {
        let mut gov =
            StreamGovernor::with_policy(online, overload_policy).map_err(io_err)?;
        gov.set_fallback(Some(fallback));
        if let Some(dir) = &wal_dir {
            gov.attach_wal(WalWriter::create(dir, wal_config).map_err(io_err)?)
                .map_err(io_err)?;
            eprintln!("write-ahead log: {} (fsync {:?})", dir.display(), fsync);
        }
        gov
    };

    // Optional fault injection: replay the night as a rough one.
    let n = test.num_variates();
    let frames: Vec<(f64, Vec<f32>)> = match args.get("faults") {
        Some(seed) => {
            let seed = seed.parse::<u64>().map_err(io_err)?;
            let (stream, log) = FaultInjector::new(FaultPlan::rough_night(seed)).corrupt_stream(&test);
            eprintln!(
                "injected faults (seed {seed}): {} events, {:.1}% of frames touched",
                log.total_faults(),
                log.corrupted_fraction() * 100.0
            );
            stream.into_iter().map(|f| (f.timestamp, f.values)).collect()
        }
        None => (0..test.len())
            .map(|t| (test.timestamps()[t], (0..n).map(|v| test.get(v, t)).collect()))
            .collect(),
    };

    // Arrival schedule: steady realtime (offer one, service one) unless
    // `--burst` turns the night into seeded 4×-realtime episodes, during
    // which the queue fills and the governor starts shedding and degrading.
    // The schedule always covers the FULL night; a resumed run fast-forwards
    // past the offers the WAL already replayed so the offer/poll interleaving
    // (and with it every admission and ladder decision) is bitwise identical
    // to an uninterrupted run.
    let schedule = match burst_seed {
        Some(seed) => {
            let profile = LoadProfile::burst_night(seed, frames.len());
            eprintln!(
                "burst schedule (seed {seed}): {} arrivals over {} ticks, peak {}×",
                profile.total_arrivals().min(frames.len()),
                frames.len(),
                profile.peak_rate()
            );
            profile.arrivals()
        }
        None => LoadProfile::realtime(0, frames.len()).arrivals(),
    };

    let mut flagged_frames = 0usize;
    let mut flagged_points = 0usize;
    let mut offered = 0usize;
    let mut rejected = 0usize;
    let mut tally = |verdict: &aero_core::GovernedVerdict| {
        if verdict.verdict.disposition == FrameDisposition::Scored
            && verdict.verdict.any_anomalous()
        {
            flagged_frames += 1;
            flagged_points += verdict.verdict.flagged().len();
        }
    };
    // Replayed verdicts count toward the night's flag totals so a resumed
    // run's summary matches an uninterrupted one.
    for v in &replay_verdicts {
        tally(v);
    }
    let mut pending = frames.iter().skip(replayed);
    let mut killed = false;
    // Offers already recovered from the WAL. Ticks wholly inside this prefix
    // are skipped poll-and-all (their serviced polls rode in on a later offer
    // record's meta word); the boundary tick's trailing poll is NOT in the
    // WAL (recovery granularity is the last offer), so it re-executes here.
    let mut to_skip = replayed;
    'night: for arrivals in schedule {
        let arrivals = if to_skip > arrivals {
            to_skip -= arrivals;
            continue;
        } else {
            let live = arrivals - to_skip;
            to_skip = 0;
            live
        };
        for _ in 0..arrivals {
            if offered >= kill_after {
                eprintln!(
                    "killed after {offered} live frames (simulated crash; rerun with \
                     --resume to continue)"
                );
                killed = true;
                break 'night;
            }
            let Some((timestamp, values)) = pending.next() else {
                break 'night;
            };
            let admission = gov.offer(*timestamp, values).map_err(io_err)?;
            offered += 1;
            if !admission.is_accepted() {
                rejected += 1;
            }
        }
        if let Some(v) = gov.poll().map_err(io_err)? {
            tally(&v);
        }
    }
    if !killed {
        // Night over: drain whatever backlog the bursts left behind.
        for v in gov.drain().map_err(io_err)? {
            tally(&v);
        }
    }

    println!(
        "frames: {} replayed + {} offered ({} rejected), {} flagged ({} star-points above threshold)",
        replayed, offered, rejected, flagged_frames, flagged_points
    );
    let online = gov.online();
    println!("health: {}", online.health());
    let quarantined: Vec<usize> = online
        .star_status()
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == StarStatus::Quarantined)
        .map(|(i, _)| i)
        .collect();
    if !quarantined.is_empty() {
        println!("quarantined stars at end of night: {quarantined:?}");
    }
    println!("{}", stream_summary_json(&gov, replayed, offered, flagged_frames, flagged_points));
    Ok(())
}

/// End-of-run machine-readable summary: supervision and the full health
/// report (overload counters and tenant lanes nested inside) on one line.
/// Shares the encoder with the `aero serve` status endpoint and drain
/// summary ([`aero_core::stream_summary_json`]).
fn stream_summary_json(
    gov: &StreamGovernor,
    replayed: usize,
    offered: usize,
    flagged_frames: usize,
    flagged_points: usize,
) -> String {
    aero_core::stream_summary_json(
        gov.online().health(),
        &gov.online().supervisor().stats(),
        replayed,
        offered,
        flagged_frames,
        flagged_points,
    )
}

/// `aero stream --shards N` — shared-nothing fleet mode.
///
/// The star catalog is partitioned across N shards, each a fully independent
/// failure domain (its own detector, WAL directory `<wal>/shard-KKKK/`,
/// degradation ladder, and breaker) behind a routing coordinator. Compact
/// per-shard models are trained in-process and checkpointed next to the WAL
/// (`<wal>/models/`) so shard restarts and `--resume` load identical bits.
fn stream_fleet(args: &Args) -> Result<(), String> {
    let data = PathBuf::from(args.require("data")?);
    if args.get("model").is_some() {
        return Err(
            "fleet mode trains per-shard models in-process; drop --model (checkpoints land \
             under <wal>/models/)"
                .into(),
        );
    }
    let num_shards: usize = args.get_parsed("shards", 0usize)?;
    if num_shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let pot = PotConfig {
        level: args.get_parsed("level", 0.99f64)?,
        q: args.get_parsed("q", 1e-3f64)?,
    };
    let policy = DegradePolicy {
        refit_interval: args.get_parsed("refit-interval", 0usize)?,
        ..DegradePolicy::default()
    };
    let wal_root = args.get("wal").map(PathBuf::from);
    let resume = args.flag("resume");
    if resume && wal_root.is_none() {
        return Err("--resume requires --wal <dir>".into());
    }
    let fsync = match args.get("fsync") {
        None => FsyncPolicy::default(),
        Some(s) => FsyncPolicy::parse(s)
            .ok_or_else(|| format!("--fsync must be never|segment|record, got `{s}`"))?,
    };
    let kill_after = args.get_parsed("kill-after", usize::MAX)?;
    let chaos_kill = match args.get("kill-shard") {
        Some(s) => Some(s.parse::<usize>().map_err(io_err)?),
        None => None,
    };
    if chaos_kill.is_some() && kill_after == usize::MAX {
        return Err("--kill-shard needs --kill-after <n> (the offer count where it dies)".into());
    }
    let probe_after = args.get_parsed("probe-after", u32::MAX)?;
    let rebalance_every = args.get_parsed("rebalance-every", 0usize)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let burst_seed = match args.get("burst") {
        Some(s) => Some(s.parse::<u64>().map_err(io_err)?),
        None => None,
    };
    let queue_cap = args.get_parsed("queue-cap", 64usize)?;
    let overload_policy = OverloadPolicy {
        queue_capacity: queue_cap,
        high_watermark: queue_cap / 2,
        low_watermark: queue_cap / 8,
        ..OverloadPolicy::default()
    };

    let train = read_series(&data.join("train.csv")).map_err(io_err)?;
    let test = read_series(&data.join("test.csv")).map_err(io_err)?;
    let n = test.num_variates();
    if num_shards > n {
        return Err(format!("--shards {num_shards} exceeds the {n}-star catalog"));
    }
    if chaos_kill.is_some_and(|k| k >= num_shards) {
        return Err(format!("--kill-shard names shard {} of {num_shards}", chaos_kill.unwrap_or(0)));
    }
    let catalog = StarCatalog::sequential(n);
    let assignment = ShardAssignment::partition(&catalog, num_shards, seed).map_err(io_err)?;

    // One frozen trunk for the whole fleet: the first factory call trains it
    // on a small star sample and checkpoints it; every shard (and every
    // crash-restart rebuild) reassembles from those shared parameters plus
    // kilobyte per-star scaler deltas. Reassembly is deterministic, so
    // restarts stay bitwise without S full per-shard model files on disk.
    // Without a WAL root the backbone lives in a per-process temp directory.
    let models_dir = match &wal_root {
        Some(root) => root.join("models"),
        None => std::env::temp_dir().join(format!("aero_fleet_models_{}", std::process::id())),
    };
    std::fs::create_dir_all(&models_dir).map_err(io_err)?;
    let factory: ShardFactory = {
        let train = train.clone();
        let backbone_path = models_dir.join("backbone.json");
        let policy = policy.clone();
        Arc::new(move |members: &[usize]| {
            let invalid = |e: aero_timeseries::TsError| {
                aero_core::DetectorError::Invalid(e.to_string())
            };
            let slice = train.select_variates(members).map_err(invalid)?;
            let reference = if backbone_path.exists() {
                aero_core::load_model(&backbone_path)?
            } else {
                let n = train.num_variates();
                let k = n.min(8);
                let sample: Vec<usize> = (0..k).map(|i| i * n / k).collect();
                let sample_slice = train.select_variates(&sample).map_err(invalid)?;
                let mut model = Aero::new(AeroConfig::tiny())?;
                model.fit(&sample_slice)?;
                aero_core::save_model(&model, &backbone_path)?;
                model
            };
            let backbone = reference.backbone()?;
            let mut scaler = aero_timeseries::MinMaxScaler::new();
            scaler.fit(&slice);
            let deltas: Vec<StarDelta> = scaler
                .mins()
                .iter()
                .zip(scaler.ranges())
                .map(|(&lo, &range)| StarDelta {
                    scaler_min: lo,
                    scaler_range: range,
                    adapter: None,
                })
                .collect();
            let model = Aero::from_backbone(&backbone, &deltas)?;
            OnlineAero::with_policy(model, &slice, pot, policy.clone())
        })
    };
    let sr = SpectralResidual::default();
    let fallback = FallbackScorer::new(move |window| sr.latest_score(window));
    let migrate_live = args.flag("migrate-live");
    if migrate_live && rebalance_every == 0 {
        return Err("--migrate-live needs --rebalance-every <n> (no plans, nothing to apply)".into());
    }
    let config = FleetConfig {
        seed,
        overload: overload_policy,
        shard_supervision: SupervisorPolicy { probe_after, ..SupervisorPolicy::default() },
        epoch_frames: rebalance_every,
        wal_root: wal_root.clone(),
        wal: WalConfig { fsync, ..WalConfig::default() },
        migrate_live,
        chaos_migration_kill: None,
    };

    let mut flagged_frames = 0usize;
    let mut flagged_points = 0usize;
    let mut tally = |verdict: &aero_core::GovernedVerdict| {
        if verdict.verdict.disposition == FrameDisposition::Scored
            && verdict.verdict.any_anomalous()
        {
            flagged_frames += 1;
            flagged_points += verdict.verdict.flagged().len();
        }
    };

    let mut replayed = 0usize;
    let mut to_skip = 0usize;
    let mut fleet = if resume {
        let (fleet, recovered) =
            FleetCoordinator::resume(catalog, assignment, factory, Some(fallback), config)
                .map_err(io_err)?;
        replayed = recovered.replayed.iter().map(Vec::len).sum();
        to_skip = recovered.frames_routed;
        eprintln!(
            "resumed fleet: {} frames routed, {} verdicts replayed, {} plans recovered",
            recovered.frames_routed, replayed, recovered.plans_recovered
        );
        for shard in &recovered.replayed {
            for v in shard {
                tally(v);
            }
        }
        fleet
    } else {
        FleetCoordinator::new(catalog, assignment, factory, Some(fallback), config)
            .map_err(io_err)?
    };
    eprintln!(
        "fleet: {} stars across {} shards (routing seed {seed}{})",
        n,
        num_shards,
        wal_root
            .as_ref()
            .map(|r| format!(", WAL root {}", r.display()))
            .unwrap_or_default(),
    );

    let frames: Vec<(f64, Vec<f32>)> = match args.get("faults") {
        Some(fault_seed) => {
            let fault_seed = fault_seed.parse::<u64>().map_err(io_err)?;
            let (stream, log) =
                FaultInjector::new(FaultPlan::rough_night(fault_seed)).corrupt_stream(&test);
            eprintln!(
                "injected faults (seed {fault_seed}): {} events, {:.1}% of frames touched",
                log.total_faults(),
                log.corrupted_fraction() * 100.0
            );
            stream.into_iter().map(|f| (f.timestamp, f.values)).collect()
        }
        None => (0..test.len())
            .map(|t| (test.timestamps()[t], (0..n).map(|v| test.get(v, t)).collect()))
            .collect(),
    };
    let schedule = match burst_seed {
        Some(s) => LoadProfile::burst_night(s, frames.len()).arrivals(),
        None => LoadProfile::realtime(0, frames.len()).arrivals(),
    };

    let mut offered = 0usize;
    let mut rejected = 0usize;
    let mut killed = false;
    let mut chaos_pending = chaos_kill;
    let mut pending = frames.iter().skip(to_skip);
    'night: for arrivals in schedule {
        let arrivals = if to_skip > arrivals {
            to_skip -= arrivals;
            continue;
        } else {
            let live = arrivals - to_skip;
            to_skip = 0;
            live
        };
        for _ in 0..arrivals {
            if offered >= kill_after {
                if let Some(k) = chaos_pending.take() {
                    // In-process chaos: one shard dies and must restart from
                    // its own WAL while the night keeps streaming.
                    fleet.kill_shard(k).map_err(io_err)?;
                    eprintln!("chaos: killed shard {k} after {offered} frames");
                } else if chaos_kill.is_none() {
                    eprintln!(
                        "killed after {offered} live frames (simulated crash; rerun with \
                         --resume to continue)"
                    );
                    killed = true;
                    break 'night;
                }
            }
            let Some((timestamp, values)) = pending.next() else {
                break 'night;
            };
            for admission in fleet.offer(*timestamp, values).map_err(io_err)?.into_iter().flatten()
            {
                if !admission.is_accepted() {
                    rejected += 1;
                }
            }
            offered += 1;
        }
        for v in fleet.poll().map_err(io_err)?.into_iter().flatten() {
            tally(&v);
        }
    }
    if !killed {
        for shard in fleet.drain().map_err(io_err)? {
            for v in &shard {
                tally(v);
            }
        }
    }

    let health = fleet.health();
    println!(
        "frames: {} replayed + {} offered ({} shard slices rejected), {} flagged ({} star-points above threshold)",
        replayed, offered, rejected, flagged_frames, flagged_points
    );
    print!("{}", render_fleet_health(&health));
    println!("{}", fleet_summary_json(&health, replayed, offered, flagged_frames, flagged_points));
    Ok(())
}

/// Machine-readable fleet summary: routing totals, per-shard states, the
/// shard-level supervisor, and the aggregate health rollup.
fn fleet_summary_json(
    health: &aero_core::FleetHealth,
    replayed: usize,
    offered: usize,
    flagged_frames: usize,
    flagged_points: usize,
) -> String {
    let shards = health.shards.iter().map(|s| {
        JsonObject::new()
            .num("shard", s.shard)
            .str("state", s.state.label())
            .num("stars", s.stars)
            .num("emitted", s.emitted)
            .num("queue_depth", s.queue_depth)
            .num("frames_lost", s.frames_lost)
            .num("frames_accepted", s.health.frames_accepted)
            .num("star_sheds", s.health.overload.star_sheds)
            .finish()
    });
    JsonObject::new()
        .raw(
            "frames",
            &JsonObject::new()
                .num("replayed", replayed)
                .num("offered", offered)
                .num("flagged_frames", flagged_frames)
                .num("flagged_points", flagged_points)
                .finish(),
        )
        .raw(
            "fleet",
            &JsonObject::new()
                .num("shards", health.shards.len())
                .num("frames_routed", health.frames_routed)
                .num("frames_lost", health.frames_lost)
                .num("shard_failures", health.shard_failures)
                .num("shard_restarts", health.shard_restarts)
                .num("shards_down", health.shards_down)
                .num("rebalance_plans", health.rebalance_plans)
                .num("stars_moved", health.stars_moved)
                .num("migrations_rolled_back", health.migrations_rolled_back)
                .finish(),
        )
        .arr("shards", shards)
        .raw("supervisor", &aero_core::supervisor_json(&health.supervisor))
        .raw("aggregate", &aero_core::health_json(&health.aggregate))
        .finish()
}

/// `aero wal <verb>` — offline WAL tooling. `verify <dir>` scrubs one WAL
/// directory without modifying it and prints a findings JSON; a damaged log
/// is an `Err` (exit 1) so scripts can gate on it.
pub fn wal(args: &Args) -> Result<(), String> {
    match args.positional(0) {
        Some("verify") => {}
        Some(other) => return Err(format!("unknown wal subcommand: {other} (try `verify`)")),
        None => return Err("usage: aero wal verify <dir>".into()),
    }
    let dir = Path::new(
        args.positional(1)
            .ok_or("usage: aero wal verify <dir>")?,
    );
    let report = aero_core::wal::verify(dir, None).map_err(io_err)?;
    let findings = report.findings.iter().map(|f| {
        JsonObject::new()
            .num("segment", f.segment as usize)
            .str("path", &f.path.display().to_string())
            .num("offset", f.offset as usize)
            .str("kind", f.kind.label())
            .str("detail", &f.detail)
            .finish()
    });
    let mut out = JsonObject::new()
        .str("dir", &dir.display().to_string())
        .str("status", if report.is_clean() { "clean" } else { "corrupt" })
        .num("segments", report.segments)
        .num("frames", report.frames)
        .num("bytes", report.bytes as usize);
    if let Some(identity) = report.identity {
        out = out.raw(
            "identity",
            &JsonObject::new()
                .num("shard_id", identity.shard_id as usize)
                .num("catalog_hash", identity.catalog_hash as usize)
                .finish(),
        );
    }
    let rendered = out.arr("findings", findings).finish();
    println!("{rendered}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} finding(s) in {}",
            report.findings.len(),
            dir.display()
        ))
    }
}

/// `aero evaluate` — point-adjusted metrics of stored flags vs labels.
pub fn evaluate(args: &Args) -> Result<(), String> {
    let flags = read_labels(Path::new(args.require("flags")?)).map_err(io_err)?;
    let labels = read_labels(Path::new(args.require("labels")?)).map_err(io_err)?;
    if flags.rows() != labels.rows() || flags.cols() != labels.cols() {
        return Err(format!(
            "shape mismatch: flags {}x{} vs labels {}x{}",
            flags.rows(),
            flags.cols(),
            labels.rows(),
            labels.cols()
        ));
    }
    let m = evaluate_point_adjusted(&flags, &labels);
    println!(
        "point-adjusted: precision {:.2}%  recall {:.2}%  F1 {:.2}%",
        m.precision * 100.0,
        m.recall * 100.0,
        m.f1 * 100.0
    );
    println!("counts: TP {}  FP {}  FN {}  TN {}", m.tp, m.fp, m.fn_, m.tn);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_method_builds() {
        for (key, _) in METHODS {
            assert!(build_detector(key, false).is_ok(), "{key}");
        }
        assert!(build_detector("nope", false).is_err());
    }

    #[test]
    fn tiny_preset_builds_with_seed_override() {
        let a = build_preset("tiny", Some(9)).unwrap();
        let b = build_preset("tiny", Some(9)).unwrap();
        assert_eq!(a.train.values(), b.train.values());
        assert!(build_preset("bogus", None).is_err());
    }

    #[test]
    fn generate_then_detect_then_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aero_cli_test_{}", std::process::id()));
        let data = dir.join("data");
        let out = dir.join("out");

        // generate
        let gen_args = Args::parse(
            format!("generate --preset tiny --out {} --seed 5", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        generate(&gen_args).unwrap();
        assert!(data.join("train.csv").exists());
        assert!(data.join("test_labels.csv").exists());

        // detect with a fast statistical method
        let det_args = Args::parse(
            format!("detect --data {} --method spot --out {}", data.display(), out.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        detect(&det_args).unwrap();
        assert!(out.join("scores.csv").exists());
        assert!(out.join("flags.csv").exists());
        assert!(out.join("summary.txt").exists());
        assert!(out.join("catalog.txt").exists());

        // evaluate
        let eval_args = Args::parse(
            format!(
                "evaluate --flags {} --labels {}",
                out.join("flags.csv").display(),
                data.join("test_labels.csv").display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        evaluate(&eval_args).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_replays_saved_model_with_faults() {
        let dir = std::env::temp_dir().join(format!("aero_cli_stream_{}", std::process::id()));
        let data = dir.join("data");
        let gen_args = Args::parse(
            format!("generate --preset tiny --out {} --seed 6", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        generate(&gen_args).unwrap();

        // Train and checkpoint a tiny model directly (CLI-scale training
        // is covered by the detect roundtrip test).
        let train = read_series(&data.join("train.csv")).unwrap();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 1;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&train).unwrap();
        let model_path = dir.join("model.json");
        aero_core::save_model(&model, &model_path).unwrap();

        // Clean replay, a faulted one, and a bursty one with a small
        // admission queue (exercising the governor) — all must succeed.
        for extra in ["", " --faults 7", " --burst 11 --queue-cap 8"] {
            let stream_args = Args::parse(
                format!("stream --data {} --model {}{extra}", data.display(), model_path.display())
                    .split_whitespace()
                    .map(String::from),
            )
            .unwrap();
            stream(&stream_args).unwrap();
        }

        // A bare `--burst` (no seed) must be rejected, not silently ignored.
        let bad = Args::parse(
            format!("stream --data {} --model {} --burst", data.display(), model_path.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(stream(&bad).unwrap_err().contains("--burst"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_fleet_survives_shard_kill_and_resumes() {
        let dir = std::env::temp_dir().join(format!("aero_cli_fleet_{}", std::process::id()));
        let data = dir.join("data");
        let wal = dir.join("wal");
        let gen_args = Args::parse(
            format!("generate --preset tiny --out {} --seed 9", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        generate(&gen_args).unwrap();

        // Night 1: two shards, one chaos-killed mid-night (it must restart
        // from its own WAL in-process), with epoch rebalancing enabled.
        let run = |extra: &str| {
            let stream_args = Args::parse(
                format!(
                    "stream --data {} --shards 2 --wal {} --rebalance-every 64{extra}",
                    data.display(),
                    wal.display()
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap();
            stream(&stream_args)
        };
        run(" --kill-shard 1 --kill-after 40 --probe-after 4").unwrap();

        // Per-shard WAL directories exist; the models dir holds the single
        // shared backbone (shards reassemble from it deterministically —
        // there are no per-shard model checkpoints any more).
        assert!(wal.join("shard-0000").is_dir());
        assert!(wal.join("shard-0001").is_dir());
        assert!(wal.join("fleet-plan").is_dir());
        assert!(wal.join("models").join("backbone.json").is_file());
        assert_eq!(std::fs::read_dir(wal.join("models")).unwrap().count(), 1);

        // Night 2: resume the whole fleet from its per-shard WALs.
        run(" --resume").unwrap();

        // Guard rails: fleet flags demand values / fleet context.
        let bad = Args::parse(
            format!("stream --data {} --shards", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(stream(&bad).unwrap_err().contains("--shards"));
        let bad = Args::parse(
            format!("stream --data {} --model x.json --probe-after 3", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(stream(&bad).unwrap_err().contains("--shards"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_summary_json_is_well_formed() {
        let ds = SyntheticConfig::tiny(77).build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 1;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&ds.train).unwrap();
        let online = OnlineAero::new(model, &ds.train, PotConfig::default()).unwrap();
        let gov = StreamGovernor::new(online).unwrap();
        let json = stream_summary_json(&gov, 1, 2, 3, 4);
        for key in [
            "\"frames\"",
            "\"supervisor\"",
            "\"health\"",
            "\"overload\"",
            "\"probes\":0",
            "\"circuits_closed\":0",
            "\"queue_peak\":0",
            "\"replayed\":1",
            "\"offered\":2",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
