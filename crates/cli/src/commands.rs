//! Subcommand implementations for the `aero` CLI.

use std::path::{Path, PathBuf};

use aero_baselines::{
    AnomalyTransformer, Donut, Esg, FluxEv, Gdn, LstmNdt, NnConfig, OmniAnomaly,
    SpectralResidual, SpotDetector, TemplateMatching, TimesNet, TranAd, VaeLstm,
};
use aero_core::online::{DegradePolicy, FrameDisposition, OnlineAero, StarStatus};
use aero_core::wal::{FsyncPolicy, WalConfig, WalWriter};
use aero_core::{build_catalog, render_catalog, run_detection, Aero, AeroConfig, Detector};
use aero_datagen::{AstrosetConfig, FaultInjector, FaultPlan, SyntheticConfig};
use aero_eval::{evaluate_point_adjusted, threshold_scores};
use aero_evt::PotConfig;
use aero_timeseries::io::{read_labels, read_series, write_labels, write_series};
use aero_timeseries::{Dataset, LabelGrid};

use crate::args::Args;

/// The detectors `detect --method` accepts, with display names.
pub const METHODS: [(&str, &str); 14] = [
    ("aero", "AERO (this paper): two-stage Transformer + window-wise GNN"),
    ("tm", "Template Matching (SciDetector)"),
    ("sr", "Spectral Residual"),
    ("spot", "SPOT (EVT on raw values)"),
    ("fluxev", "FluxEV (EVT on extracted fluctuations)"),
    ("donut", "Donut (window VAE)"),
    ("omni", "OmniAnomaly (stochastic GRU-VAE)"),
    ("at", "AnomalyTransformer (association discrepancy)"),
    ("tranad", "TranAD (self-conditioned Transformer)"),
    ("gdn", "GDN (static learned graph)"),
    ("esg", "ESG (evolving graph)"),
    ("timesnet", "TimesNet (period-fold convolutions)"),
    ("lstm-ndt", "LSTM-NDT (bonus: forecast + smoothed errors)"),
    ("vae-lstm", "VAE-LSTM (bonus: local VAE + latent LSTM)"),
];

/// Prints the method table.
pub fn list_methods() {
    println!("available detectors:");
    for (key, desc) in METHODS {
        println!("  {key:<9} {desc}");
    }
}

fn build_detector(name: &str, paper: bool) -> Result<Box<dyn Detector>, String> {
    let nn = if paper {
        NnConfig { window: 60, hidden: 64, latent: 16, epochs: 100, patience: 5, stride: 10, ..NnConfig::fast() }
    } else {
        NnConfig::fast()
    };
    let aero_cfg = if paper { AeroConfig::paper() } else { AeroConfig::fast() };
    Ok(match name {
        "aero" => Box::new(Aero::new(aero_cfg).map_err(|e| e.to_string())?),
        "tm" => Box::new(TemplateMatching::default()),
        "sr" => Box::new(SpectralResidual::default()),
        "spot" => Box::new(SpotDetector::new()),
        "fluxev" => Box::new(FluxEv::default()),
        "donut" => Box::new(Donut::new(nn)),
        "omni" => Box::new(OmniAnomaly::new(nn)),
        "at" => Box::new(AnomalyTransformer::new(nn)),
        "tranad" => Box::new(TranAd::new(nn)),
        "gdn" => Box::new(Gdn::new(nn)),
        "esg" => Box::new(Esg::new(nn)),
        "timesnet" => Box::new(TimesNet::new(nn)),
        "lstm-ndt" => Box::new(LstmNdt::new(nn)),
        "vae-lstm" => Box::new(VaeLstm::new(nn)),
        other => return Err(format!("unknown method: {other} (see `aero list-methods`)")),
    })
}

fn build_preset(name: &str, seed: Option<u64>) -> Result<Dataset, String> {
    let synthetic = |mut cfg: SyntheticConfig| {
        if let Some(s) = seed {
            cfg.seed = s;
        }
        cfg.build()
    };
    let astro = |mut cfg: AstrosetConfig| {
        if let Some(s) = seed {
            cfg.seed = s;
        }
        cfg.build()
    };
    Ok(match name {
        "synthetic-middle" => synthetic(SyntheticConfig::middle()),
        "synthetic-high" => synthetic(SyntheticConfig::high()),
        "synthetic-low" => synthetic(SyntheticConfig::low()),
        "astroset-middle" => astro(AstrosetConfig::middle()),
        "astroset-high" => astro(AstrosetConfig::high()),
        "astroset-low" => astro(AstrosetConfig::low()),
        "tiny" => synthetic(SyntheticConfig::tiny(seed.unwrap_or(42))),
        other => return Err(format!("unknown preset: {other}")),
    })
}

fn io_err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `aero generate` — writes train/test series plus ground-truth grids.
pub fn generate(args: &Args) -> Result<(), String> {
    let preset = args.require("preset")?;
    let out = PathBuf::from(args.require("out")?);
    let seed = match args.get("seed") {
        Some(s) => Some(s.parse::<u64>().map_err(io_err)?),
        None => None,
    };
    let dataset = build_preset(preset, seed)?;
    dataset.validate().map_err(io_err)?;
    std::fs::create_dir_all(&out).map_err(io_err)?;

    write_series(&dataset.train, &out.join("train.csv")).map_err(io_err)?;
    write_series(&dataset.test, &out.join("test.csv")).map_err(io_err)?;
    write_labels(&dataset.test_labels, &out.join("test_labels.csv")).map_err(io_err)?;
    write_labels(&dataset.test_noise, &out.join("test_noise.csv")).map_err(io_err)?;

    let stats = dataset.stats();
    println!(
        "wrote {preset} to {}: {} stars, {} train / {} test points,",
        out.display(),
        stats.variates,
        stats.train_len,
        stats.test_len
    );
    println!(
        "  anomalies {:.3}% ({} segments), concurrent noise {:.3}% (variates {})",
        stats.anomaly_pct, stats.anomaly_segments, stats.noise_pct, stats.noise_variates
    );
    Ok(())
}

/// `aero detect` — fit, calibrate, score, threshold, persist.
pub fn detect(args: &Args) -> Result<(), String> {
    let data = PathBuf::from(args.require("data")?);
    let method = args.require("method")?;
    let out = PathBuf::from(args.require("out")?);
    let paper = args.flag("paper");
    let pot = PotConfig {
        level: args.get_parsed("level", 0.99f64)?,
        q: args.get_parsed("q", 1e-3f64)?,
    };

    let train = read_series(&data.join("train.csv")).map_err(io_err)?;
    let test = read_series(&data.join("test.csv")).map_err(io_err)?;
    if train.num_variates() != test.num_variates() {
        return Err(format!(
            "train has {} variates but test has {}",
            train.num_variates(),
            test.num_variates()
        ));
    }
    // Ground truth is optional — used for reporting only.
    let labels_path = data.join("test_labels.csv");
    let labels = if labels_path.exists() {
        Some(read_labels(&labels_path).map_err(io_err)?)
    } else {
        None
    };
    let dataset = Dataset {
        name: data.display().to_string(),
        test_labels: labels
            .clone()
            .unwrap_or_else(|| LabelGrid::new(test.num_variates(), test.len())),
        test_noise: LabelGrid::new(test.num_variates(), test.len()),
        train_noise: LabelGrid::new(train.num_variates(), train.len()),
        train,
        test,
    };

    let mut detector = build_detector(method, paper)?;
    eprintln!("training {} …", detector.name());
    let outcome = run_detection(detector.as_mut(), &dataset, pot).map_err(io_err)?;

    // Optional model persistence (AERO only): train once, redeploy later.
    if let Some(model_path) = args.get("save-model") {
        if method == "aero" {
            // Re-fit on the full training split for the saved artefact.
            let mut model = Aero::new(if paper { AeroConfig::paper() } else { AeroConfig::fast() })
                .map_err(io_err)?;
            model.fit(&dataset.train).map_err(io_err)?;
            aero_core::save_model(&model, Path::new(model_path)).map_err(io_err)?;
            eprintln!("saved trained AERO to {model_path}");
        } else {
            return Err("--save-model is only supported for --method aero".into());
        }
    }

    std::fs::create_dir_all(&out).map_err(io_err)?;
    // scores.csv: same layout as a series file.
    let score_series = aero_timeseries::MultivariateSeries::new(
        outcome.scores.clone(),
        dataset.test.timestamps().to_vec(),
    )
    .map_err(io_err)?;
    write_series(&score_series, &out.join("scores.csv")).map_err(io_err)?;
    let flags = threshold_scores(&outcome.scores, outcome.threshold.threshold);
    write_labels(&flags, &out.join("flags.csv")).map_err(io_err)?;

    let mut summary = format!(
        "method: {}\nthreshold: {:.6} (POT level {}, q {}, gamma {:.4}, {} peaks)\n\
         train time: {:.2}s\ntest time: {:.2}s\nflagged points: {}\n",
        detector.name(),
        outcome.threshold.threshold,
        pot.level,
        pot.q,
        outcome.threshold.gamma,
        outcome.threshold.peaks,
        outcome.timing.train_secs,
        outcome.timing.test_secs,
        flags.count(),
    );
    if labels.is_some() {
        summary.push_str(&format!(
            "precision: {:.2}%\nrecall: {:.2}%\nF1: {:.2}%\n",
            outcome.metrics.precision * 100.0,
            outcome.metrics.recall * 100.0,
            outcome.metrics.f1 * 100.0
        ));
    }
    std::fs::write(out.join("summary.txt"), &summary).map_err(io_err)?;

    // Ranked event catalog — the artefact an astronomer reviews.
    let catalog = build_catalog(&flags, &outcome.scores, 3);
    let rendered = render_catalog(&catalog, dataset.test.timestamps(), 50);
    std::fs::write(out.join("catalog.txt"), &rendered).map_err(io_err)?;

    print!("{summary}");
    println!("{} candidate events (top ranked in catalog.txt)", catalog.len());
    println!(
        "wrote scores.csv, flags.csv, summary.txt, catalog.txt to {}",
        out.display()
    );
    Ok(())
}

/// `aero stream` — replay a test series frame-by-frame through a saved
/// model, as the online monitor would consume it, and report per-frame
/// verdicts plus the degradation health counters.
pub fn stream(args: &Args) -> Result<(), String> {
    let data = PathBuf::from(args.require("data")?);
    let model_path = PathBuf::from(args.require("model")?);
    // A bare `--faults` / `--refit-interval` / … parses as a boolean flag; a
    // silent no-fault run when the user asked for one defeats the point.
    for opt in ["faults", "refit-interval", "wal", "fsync", "kill-after"] {
        if args.flag(opt) {
            return Err(format!("--{opt} requires a value"));
        }
    }
    let pot = PotConfig {
        level: args.get_parsed("level", 0.99f64)?,
        q: args.get_parsed("q", 1e-3f64)?,
    };
    let policy = DegradePolicy {
        refit_interval: args.get_parsed("refit-interval", 0usize)?,
        ..DegradePolicy::default()
    };
    let wal_dir = args.get("wal").map(PathBuf::from);
    let resume = args.flag("resume");
    if resume && wal_dir.is_none() {
        return Err("--resume requires --wal <dir>".into());
    }
    let fsync = match args.get("fsync") {
        None => FsyncPolicy::default(),
        Some(s) => FsyncPolicy::parse(s)
            .ok_or_else(|| format!("--fsync must be never|segment|record, got `{s}`"))?,
    };
    let kill_after = args.get_parsed("kill-after", usize::MAX)?;

    let train = read_series(&data.join("train.csv")).map_err(io_err)?;
    let test = read_series(&data.join("test.csv")).map_err(io_err)?;
    let model = aero_core::load_model(&model_path).map_err(io_err)?;
    let mut online = OnlineAero::with_policy(model, &train, pot, policy).map_err(io_err)?;
    eprintln!(
        "streaming {} frames × {} stars (threshold {:.6}, cadence {:.3})",
        test.len(),
        test.num_variates(),
        online.threshold().threshold,
        online.cadence()
    );

    // Crash recovery: replay the WAL's surviving prefix through the fresh
    // instance first (reconstructing the exact pre-crash state), then attach
    // the healed log and continue from where the night left off.
    let wal_config = WalConfig { fsync, ..WalConfig::default() };
    let mut replayed = 0usize;
    if let Some(dir) = &wal_dir {
        if resume {
            let (writer, recovered, recovery) =
                WalWriter::resume(dir, wal_config).map_err(io_err)?;
            for f in &recovered {
                online.push(f.timestamp, &f.values).map_err(io_err)?;
            }
            replayed = recovered.len();
            eprintln!(
                "resumed from {}: replayed {} frames across {} segments{}",
                dir.display(),
                recovery.frames,
                recovery.segments,
                if recovery.truncated {
                    format!(
                        " (torn tail: {} bytes and {} segments dropped)",
                        recovery.dropped_bytes, recovery.dropped_segments
                    )
                } else {
                    String::new()
                }
            );
            online.attach_wal(writer);
        } else {
            online.attach_wal(WalWriter::create(dir, wal_config).map_err(io_err)?);
            eprintln!("write-ahead log: {} (fsync {:?})", dir.display(), fsync);
        }
    }

    // Optional fault injection: replay the night as a rough one.
    let n = test.num_variates();
    let frames: Vec<(f64, Vec<f32>)> = match args.get("faults") {
        Some(seed) => {
            let seed = seed.parse::<u64>().map_err(io_err)?;
            let (stream, log) = FaultInjector::new(FaultPlan::rough_night(seed)).corrupt_stream(&test);
            eprintln!(
                "injected faults (seed {seed}): {} events, {:.1}% of frames touched",
                log.total_faults(),
                log.corrupted_fraction() * 100.0
            );
            stream.into_iter().map(|f| (f.timestamp, f.values)).collect()
        }
        None => (0..test.len())
            .map(|t| (test.timestamps()[t], (0..n).map(|v| test.get(v, t)).collect()))
            .collect(),
    };

    let mut flagged_frames = 0usize;
    let mut flagged_points = 0usize;
    let mut pushed = 0usize;
    for (timestamp, values) in frames.iter().skip(replayed) {
        if pushed >= kill_after {
            eprintln!(
                "killed after {pushed} live frames (simulated crash; rerun with \
                 --resume to continue)"
            );
            break;
        }
        let verdict = online.push(*timestamp, values).map_err(io_err)?;
        pushed += 1;
        if verdict.disposition == FrameDisposition::Scored && verdict.any_anomalous() {
            flagged_frames += 1;
            flagged_points += verdict.flagged().len();
        }
    }

    println!(
        "frames: {} replayed + {} pushed, {} flagged ({} star-points above threshold)",
        replayed,
        pushed,
        flagged_frames,
        flagged_points
    );
    println!("health: {}", online.health());
    let quarantined: Vec<usize> = online
        .star_status()
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == StarStatus::Quarantined)
        .map(|(i, _)| i)
        .collect();
    if !quarantined.is_empty() {
        println!("quarantined stars at end of night: {quarantined:?}");
    }
    Ok(())
}

/// `aero evaluate` — point-adjusted metrics of stored flags vs labels.
pub fn evaluate(args: &Args) -> Result<(), String> {
    let flags = read_labels(Path::new(args.require("flags")?)).map_err(io_err)?;
    let labels = read_labels(Path::new(args.require("labels")?)).map_err(io_err)?;
    if flags.rows() != labels.rows() || flags.cols() != labels.cols() {
        return Err(format!(
            "shape mismatch: flags {}x{} vs labels {}x{}",
            flags.rows(),
            flags.cols(),
            labels.rows(),
            labels.cols()
        ));
    }
    let m = evaluate_point_adjusted(&flags, &labels);
    println!(
        "point-adjusted: precision {:.2}%  recall {:.2}%  F1 {:.2}%",
        m.precision * 100.0,
        m.recall * 100.0,
        m.f1 * 100.0
    );
    println!("counts: TP {}  FP {}  FN {}  TN {}", m.tp, m.fp, m.fn_, m.tn);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_method_builds() {
        for (key, _) in METHODS {
            assert!(build_detector(key, false).is_ok(), "{key}");
        }
        assert!(build_detector("nope", false).is_err());
    }

    #[test]
    fn tiny_preset_builds_with_seed_override() {
        let a = build_preset("tiny", Some(9)).unwrap();
        let b = build_preset("tiny", Some(9)).unwrap();
        assert_eq!(a.train.values(), b.train.values());
        assert!(build_preset("bogus", None).is_err());
    }

    #[test]
    fn generate_then_detect_then_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aero_cli_test_{}", std::process::id()));
        let data = dir.join("data");
        let out = dir.join("out");

        // generate
        let gen_args = Args::parse(
            format!("generate --preset tiny --out {} --seed 5", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        generate(&gen_args).unwrap();
        assert!(data.join("train.csv").exists());
        assert!(data.join("test_labels.csv").exists());

        // detect with a fast statistical method
        let det_args = Args::parse(
            format!("detect --data {} --method spot --out {}", data.display(), out.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        detect(&det_args).unwrap();
        assert!(out.join("scores.csv").exists());
        assert!(out.join("flags.csv").exists());
        assert!(out.join("summary.txt").exists());
        assert!(out.join("catalog.txt").exists());

        // evaluate
        let eval_args = Args::parse(
            format!(
                "evaluate --flags {} --labels {}",
                out.join("flags.csv").display(),
                data.join("test_labels.csv").display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        evaluate(&eval_args).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_replays_saved_model_with_faults() {
        let dir = std::env::temp_dir().join(format!("aero_cli_stream_{}", std::process::id()));
        let data = dir.join("data");
        let gen_args = Args::parse(
            format!("generate --preset tiny --out {} --seed 6", data.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        generate(&gen_args).unwrap();

        // Train and checkpoint a tiny model directly (CLI-scale training
        // is covered by the detect roundtrip test).
        let train = read_series(&data.join("train.csv")).unwrap();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 1;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&train).unwrap();
        let model_path = dir.join("model.json");
        aero_core::save_model(&model, &model_path).unwrap();

        // Clean replay, then a faulted one — both must succeed.
        for extra in ["", " --faults 7"] {
            let stream_args = Args::parse(
                format!("stream --data {} --model {}{extra}", data.display(), model_path.display())
                    .split_whitespace()
                    .map(String::from),
            )
            .unwrap();
            stream(&stream_args).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
