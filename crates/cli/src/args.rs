//! Minimal argument parsing (no external CLI crate): `--key value` pairs,
//! `--flag` booleans, a positional subcommand, and trailing positional
//! operands (e.g. `aero wal verify <dir>`).

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    /// Non-flag arguments after the subcommand, in order.
    positionals: Vec<String>,
}

impl Args {
    /// Parses from an iterator of raw arguments (excluding the binary name).
    pub fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            if let Some(key) = arg.strip_prefix("--") {
                // A value follows unless the next token is another option or
                // the end of input → boolean flag.
                match raw.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = raw.next().expect("peeked");
                        if out.options.insert(key.to_string(), value).is_some() {
                            return Err(format!("duplicate option --{key}"));
                        }
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Parses the process arguments.
    pub fn from_env() -> Result<Self, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
            None => Ok(default),
        }
    }

    /// Boolean flag (present / absent).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `i`-th positional operand after the subcommand.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = parse("detect --data ./d --method aero --paper");
        assert_eq!(a.command.as_deref(), Some("detect"));
        assert_eq!(a.get("data"), Some("./d"));
        assert_eq!(a.get("method"), Some("aero"));
        assert!(a.flag("paper"));
        assert!(!a.flag("fast"));
    }

    #[test]
    fn numeric_options_parse_with_defaults() {
        let a = parse("generate --seed 42");
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("epochs", 7usize).unwrap(), 7);
        assert!(a.get_parsed::<u64>("seed", 0).is_ok());
    }

    #[test]
    fn rejects_duplicates_and_collects_positionals() {
        assert!(Args::parse("a --x 1 --x 2".split_whitespace().map(String::from)).is_err());
        let a = parse("wal verify /tmp/shard-0000");
        assert_eq!(a.command.as_deref(), Some("wal"));
        assert_eq!(a.positional(0), Some("verify"));
        assert_eq!(a.positional(1), Some("/tmp/shard-0000"));
        assert_eq!(a.positional(2), None);
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let a = parse("run --verbose");
        assert!(a.flag("verbose"));
    }

    #[test]
    fn missing_required_reports_key() {
        let a = parse("detect");
        let err = a.require("data").unwrap_err();
        assert!(err.contains("--data"));
    }
}
