//! `aero` — command-line anomaly detection for astronomical time series.
//!
//! ```text
//! aero generate --preset synthetic-middle --out data/
//! aero detect   --data data/ --method aero --out results/
//! aero evaluate --flags results/flags.csv --labels data/test_labels.csv
//! aero list-methods
//! ```

mod args;
mod commands;
mod netcmd;

use args::Args;

const USAGE: &str = "aero — anomaly detection in astronomical observations (AERO, ICDE 2024)

USAGE:
    aero <COMMAND> [OPTIONS]

COMMANDS:
    generate       Generate a benchmark dataset as CSV files
                     --preset <synthetic-middle|synthetic-high|synthetic-low|
                               astroset-middle|astroset-high|astroset-low|tiny>
                     --out <dir>           output directory
                     [--seed <u64>]        override the preset seed
    detect         Train a detector and score a test series
                     --data <dir>          directory with train.csv + test.csv
                     --method <name>       detector (see list-methods)
                     --out <dir>           writes scores.csv, flags.csv, summary.txt
                     [--paper]             paper-scale hyperparameters
                     [--level <f64>]       POT initial quantile (default 0.99)
                     [--q <f64>]           POT tail probability (default 1e-3)
                     [--save-model <file>] persist the trained AERO as JSON
    stream         Replay a test series through a saved model frame-by-frame
                     --data <dir>          directory with train.csv + test.csv
                     --model <file>        checkpoint from `detect --save-model`
                     [--faults <seed>]     inject a seeded rough-night fault plan
                     [--refit-interval <n>] refit POT threshold every n frames
                     [--level <f64>]       POT initial quantile (default 0.99)
                     [--q <f64>]           POT tail probability (default 1e-3)
                     [--wal <dir>]         write-ahead-log every frame before scoring
                     [--resume]            replay the WAL in <dir> before streaming
                                           (reconstructs the exact pre-crash state)
                     [--fsync <never|segment|record>] WAL durability (default segment)
                     [--kill-after <n>]    stop abruptly after n live frames
                                           (simulated crash, for --resume demos)
                     [--burst <seed>]      deliver frames on a seeded burst
                                           schedule (4x-realtime episodes) to
                                           exercise admission control and the
                                           degradation ladder
                     [--queue-cap <n>]     admission-queue capacity (default 64);
                                           offers beyond it are rejected and the
                                           ladder degrades from half full
                     [--shards <n>]        fleet mode: partition the catalog
                                           across n shared-nothing shards, each
                                           with its own detector, WAL directory
                                           (<wal>/shard-KKKK/), ladder, and
                                           breaker; drop --model (per-shard
                                           models are trained in-process and
                                           checkpointed under <wal>/models/)
                     [--probe-after <k>]   half-open breaker probe schedule for
                                           shard-level supervision: a
                                           quarantined shard gets one restart
                                           probe after k short-circuited calls
                                           (fleet mode only)
                     [--kill-shard <k>]    chaos: kill shard k after
                                           --kill-after offers; it must restart
                                           from its own WAL while the other
                                           shards keep streaming (fleet only)
                     [--rebalance-every <f>] record a measured-cost rebalance
                                           plan every f routed frames (fleet
                                           only; plans land in the WAL and are
                                           applied at the next fleet build)
                     [--migrate-live]      apply rebalance plans mid-night via
                                           the WAL-fenced two-phase handoff:
                                           affected shards are fenced,
                                           snapshotted into the migration log,
                                           and rebuilt under epoch-versioned
                                           WAL directories; survives kill -9
                                           at any instant (fleet only, needs
                                           --rebalance-every)
    wal            Offline WAL tooling
                     aero wal verify <dir>  scrub one WAL directory: segment
                                           headers, record checksums, torn
                                           tails, sequence gaps, frame-chain
                                           breaks; prints a findings JSON and
                                           exits 1 if the log is damaged
    serve          Resident network service: length-delimited TCP ingest of
                   star-frame batches into the governed detector
                     --data <dir>          directory with train.csv (context)
                     --model <file>        checkpoint from `detect --save-model`
                     [--listen <addr>]     bind address (default 127.0.0.1:0;
                                           prints `listening on <addr>` when up)
                     [--wal <dir>]         write-ahead-log every admitted frame
                     [--resume]            replay the WAL before accepting
                                           connections (bitwise restart)
                     [--fsync <never|segment|record>] WAL durability
                     [--verdicts <file>]   append one line per scored verdict
                     [--queue-cap <n>]     admission-queue capacity (default 64)
                     [--quota-burst <n>]   per-tenant token-bucket burst (default 32)
                     [--quota-refill <n>]  tokens refilled per serviced poll (default 1)
                     [--read-timeout-ms <n>] socket read timeout (default 100)
                     [--idle-timeout-ms <n>] drop stalled/idle connections (default 10000)
                     [--max-conns <n>]     concurrent connection cap (default 64)
                     [--level/--q/--refit-interval] as for `stream`
                   Runs until a client sends Drain; then stops accepting,
                   flushes admitted frames, fsyncs the WAL, and prints the
                   final summary JSON.
    loadgen        Deterministic load-generator client for `serve`
                     --connect <addr>      server address (host:port)
                     --data <dir>          directory with test.csv to send
                     [--conns <n>]         concurrent connections (default 1)
                     [--tenants <n>]       tenant lanes, conn % n (default 1)
                     [--burst <seed>]      seeded burst schedule (else realtime)
                     [--ticks <n>]         send at most n schedule ticks
                     [--wire-faults <seed>] inject wire-level faults (garbage,
                                           torn frames, duplicates, slow-loris)
                     [--fault-period <n>]  one fault every n batches (default 7)
                     [--resume-from-status] skip frames the server already holds
                     [--drain]             send Drain after the load completes
                     [--status]            just fetch and print the status JSON
                     [--drain-only]        just drain the server and print the
                                           final summary
    evaluate       Point-adjusted precision/recall/F1 of saved flags
                     --flags <file>        0/1 CSV from `detect`
                     --labels <file>       0/1 ground-truth CSV
    list-methods   Show the available detectors
    help           Show this message

GLOBAL OPTIONS:
    --threads <n>  Worker threads for per-variate training/scoring and large
                   GEMMs (default: AERO_THREADS env, else all logical CPUs).
                   Results are bitwise identical at any thread count.
";

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match args.get_parsed::<usize>("threads", 0) {
        Ok(n) if n > 0 => aero_parallel::set_max_threads(n),
        Ok(_) => {} // not given: keep AERO_THREADS / auto-detected default
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
    let result = match args.command.as_deref() {
        Some("generate") => commands::generate(&args),
        Some("detect") => commands::detect(&args),
        Some("stream") => commands::stream(&args),
        Some("serve") => netcmd::serve_cmd(&args),
        Some("loadgen") => netcmd::loadgen(&args),
        Some("wal") => commands::wal(&args),
        Some("evaluate") => commands::evaluate(&args),
        Some("list-methods") => {
            commands::list_methods();
            Ok(())
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
