//! Minimal CSV persistence for series and label grids.
//!
//! Format: one header row `timestamp,star_0,star_1,…`, then one row per
//! timestamp. Labels use `0`/`1` in the same layout. Hand-rolled (no `csv`
//! crate) — the format is fixed and fully under our control.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use aero_tensor::Matrix;

use crate::error::{Result, TsError};
use crate::labels::LabelGrid;
use crate::series::MultivariateSeries;

fn io_err(e: impl std::fmt::Display) -> TsError {
    TsError::Io(e.to_string())
}

/// Writes a series to `path` as CSV.
pub fn write_series(series: &MultivariateSeries, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    write!(w, "timestamp").map_err(io_err)?;
    for n in 0..series.num_variates() {
        write!(w, ",star_{n}").map_err(io_err)?;
    }
    writeln!(w).map_err(io_err)?;
    for t in 0..series.len() {
        write!(w, "{}", series.timestamps()[t]).map_err(io_err)?;
        for n in 0..series.num_variates() {
            write!(w, ",{}", series.get(n, t)).map_err(io_err)?;
        }
        writeln!(w).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a series written by [`write_series`].
pub fn read_series(path: &Path) -> Result<MultivariateSeries> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let reader = std::io::BufReader::new(file);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| TsError::Io("empty file".into()))?
        .map_err(io_err)?;
    let n = header.split(',').count().saturating_sub(1);
    if n == 0 {
        return Err(TsError::Io("header has no variate columns".into()));
    }

    let mut timestamps = Vec::new();
    let mut columns: Vec<Vec<f32>> = vec![Vec::new(); n];
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let ts: f64 = fields
            .next()
            .ok_or_else(|| TsError::Io(format!("line {}: missing timestamp", lineno + 2)))?
            .trim()
            .parse()
            .map_err(io_err)?;
        timestamps.push(ts);
        for (i, col) in columns.iter_mut().enumerate() {
            let field = fields
                .next()
                .ok_or_else(|| TsError::Io(format!("line {}: missing column {}", lineno + 2, i)))?;
            col.push(field.trim().parse().map_err(io_err)?);
        }
    }

    let t = timestamps.len();
    let mut values = Matrix::zeros(n, t);
    for (i, col) in columns.iter().enumerate() {
        values.row_mut(i).copy_from_slice(col);
    }
    MultivariateSeries::new(values, timestamps)
}

/// Writes a label grid to `path` as CSV of `0`/`1`.
pub fn write_labels(labels: &LabelGrid, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    for r in 0..labels.rows() {
        let row: Vec<&str> = labels
            .row(r)
            .iter()
            .map(|&b| if b { "1" } else { "0" })
            .collect();
        writeln!(w, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a label grid written by [`write_labels`].
pub fn read_labels(path: &Path) -> Result<LabelGrid> {
    let content = std::fs::read_to_string(path).map_err(io_err)?;
    let rows: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    if rows.is_empty() {
        return Ok(LabelGrid::new(0, 0));
    }
    let cols = rows[0].split(',').count();
    let mut grid = LabelGrid::new(rows.len(), cols);
    for (r, line) in rows.iter().enumerate() {
        for (c, field) in line.split(',').enumerate() {
            if c >= cols {
                return Err(TsError::Io(format!("row {r}: too many columns")));
            }
            grid.set(r, c, field.trim() == "1");
        }
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrip() {
        let s = MultivariateSeries::new(
            Matrix::from_fn(3, 5, |n, t| (n * 5 + t) as f32 * 0.5),
            vec![0.0, 1.0, 2.5, 3.0, 10.0],
        )
        .unwrap();
        let dir = std::env::temp_dir().join("aero_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        write_series(&s, &path).unwrap();
        let back = read_series(&path).unwrap();
        assert_eq!(back.num_variates(), 3);
        assert_eq!(back.len(), 5);
        assert_eq!(back.timestamps(), s.timestamps());
        for n in 0..3 {
            for t in 0..5 {
                assert!((back.get(n, t) - s.get(n, t)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn labels_roundtrip() {
        let mut l = LabelGrid::new(2, 4);
        l.mark_range(0, 1, 2).unwrap();
        l.mark_range(1, 3, 3).unwrap();
        let dir = std::env::temp_dir().join("aero_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.csv");
        write_labels(&l, &path).unwrap();
        let back = read_labels(&path).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn read_missing_file_errors() {
        assert!(read_series(Path::new("/definitely/not/here.csv")).is_err());
    }
}
