//! Error type for time-series containers and transforms.

use std::fmt;

/// Result alias for time-series operations.
pub type Result<T> = std::result::Result<T, TsError>;

/// Errors raised by series construction, windowing, and normalization.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// Two aligned structures had different lengths.
    LengthMismatch {
        /// What was being aligned.
        what: &'static str,
        /// Length required.
        expected: usize,
        /// Length received.
        got: usize,
    },
    /// Timestamps must be strictly increasing.
    NonMonotonicTimestamps,
    /// A variate index exceeded the variate count.
    VariateOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of variates available.
        count: usize,
    },
    /// A window specification fell outside the series.
    WindowOutOfRange {
        /// Window end index.
        end: usize,
        /// Window length.
        window: usize,
        /// Series length.
        len: usize,
    },
    /// A normalizer was applied before being fitted.
    NotFitted,
    /// Parse or I/O failure while reading a series file.
    Io(String),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { what, expected, got } => {
                write!(f, "length mismatch for {what}: expected {expected}, got {got}")
            }
            Self::NonMonotonicTimestamps => write!(f, "timestamps must be strictly increasing"),
            Self::VariateOutOfRange { index, count } => {
                write!(f, "variate index {index} out of range ({count} variates)")
            }
            Self::WindowOutOfRange { end, window, len } => {
                write!(f, "window (end={end}, w={window}) out of range for series of length {len}")
            }
            Self::NotFitted => write!(f, "normalizer used before fit()"),
            Self::Io(msg) => write!(f, "series I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}
