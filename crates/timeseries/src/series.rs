//! Core multivariate time-series container for astronomical observations.
//!
//! Follows the paper's data model (Fig. 3): `N` variates (stars) over `CT`
//! timestamps, partitioned into sliding-window instances `X_t ∈ R^{N×W}`.

use aero_tensor::Matrix;

use crate::error::{Result, TsError};

/// An `N`-variate time series with (possibly irregular) timestamps.
///
/// Values are stored as an `N × T` matrix: row `n` is the magnitude series
/// of star `n`. `timestamps[t]` is the observation time of column `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultivariateSeries {
    values: Matrix,
    timestamps: Vec<f64>,
}

impl MultivariateSeries {
    /// Creates a series from an `N × T` value matrix and `T` timestamps.
    pub fn new(values: Matrix, timestamps: Vec<f64>) -> Result<Self> {
        if values.cols() != timestamps.len() {
            return Err(TsError::LengthMismatch {
                what: "timestamps",
                expected: values.cols(),
                got: timestamps.len(),
            });
        }
        if !timestamps.windows(2).all(|w| w[0] < w[1]) {
            return Err(TsError::NonMonotonicTimestamps);
        }
        Ok(Self { values, timestamps })
    }

    /// Decomposes the series into its value matrix and timestamp vector —
    /// the inverse of [`MultivariateSeries::new`], used by streaming callers
    /// to recycle the timestamp allocation across scoring passes.
    pub fn into_parts(self) -> (Matrix, Vec<f64>) {
        (self.values, self.timestamps)
    }

    /// Creates a regularly-sampled series (timestamps `0, 1, 2, …`).
    pub fn regular(values: Matrix) -> Self {
        let timestamps = (0..values.cols()).map(|t| t as f64).collect();
        Self { values, timestamps }
    }

    /// Number of variates (stars).
    pub fn num_variates(&self) -> usize {
        self.values.rows()
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.values.cols()
    }

    /// True when the series holds no observations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `N × T` value matrix.
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Mutable access to the value matrix (used by injectors).
    pub fn values_mut(&mut self) -> &mut Matrix {
        &mut self.values
    }

    /// Observation timestamps.
    pub fn timestamps(&self) -> &[f64] {
        &self.timestamps
    }

    /// One variate's full series as a slice-backed copy.
    pub fn variate(&self, n: usize) -> Result<Vec<f32>> {
        if n >= self.num_variates() {
            return Err(TsError::VariateOutOfRange { index: n, count: self.num_variates() });
        }
        Ok(self.values.row(n).to_vec())
    }

    /// Value of variate `n` at time index `t`.
    pub fn get(&self, n: usize, t: usize) -> f32 {
        self.values.get(n, t)
    }

    /// Inter-observation intervals `Δ_t = ts[t] − ts[t−1]` as `f32`
    /// (`Δ_0 = 0`). Used by the irregular-interval time embedding.
    pub fn intervals(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.timestamps.len());
        let mut prev = None;
        for &t in &self.timestamps {
            out.push(match prev {
                Some(p) => (t - p) as f32,
                None => 0.0,
            });
            prev = Some(t);
        }
        out
    }

    /// Copies the window of columns `[end+1−w, end]` (inclusive of `end`)
    /// into an `N × w` instance matrix — the paper's `X_t`.
    pub fn window(&self, end: usize, w: usize) -> Result<Matrix> {
        if end >= self.len() || end + 1 < w {
            return Err(TsError::WindowOutOfRange { end, window: w, len: self.len() });
        }
        let start = end + 1 - w;
        let mut out = Matrix::zeros(self.num_variates(), w);
        for n in 0..self.num_variates() {
            let src = &self.values.row(n)[start..=end];
            out.row_mut(n).copy_from_slice(src);
        }
        Ok(out)
    }

    /// Iterator over sliding-window end indices (`w−1, w−1+stride, …`).
    pub fn window_ends(&self, w: usize, stride: usize) -> impl Iterator<Item = usize> {
        let len = self.len();
        let stride = stride.max(1);
        (0..len)
            .skip(w.saturating_sub(1))
            .step_by(stride)
            .take_while(move |&e| e < len)
    }

    /// Splits the series at column `at` into `(left, right)` halves.
    pub fn split_at(&self, at: usize) -> Result<(Self, Self)> {
        if at > self.len() {
            return Err(TsError::WindowOutOfRange { end: at, window: 0, len: self.len() });
        }
        let left = Self {
            values: self
                .values
                .slice_cols(0, at)
                .map_err(|_| TsError::WindowOutOfRange { end: at, window: 0, len: self.len() })?,
            timestamps: self.timestamps[..at].to_vec(),
        };
        let right = Self {
            values: self
                .values
                .slice_cols(at, self.len() - at)
                .map_err(|_| TsError::WindowOutOfRange { end: at, window: 0, len: self.len() })?,
            timestamps: self.timestamps[at..].to_vec(),
        };
        Ok((left, right))
    }

    /// Keeps exactly the variates named by `indices`, in the given order
    /// (used by the fleet coordinator to carve one shard's stars out of a
    /// full-sky series).
    pub fn select_variates(&self, indices: &[usize]) -> Result<Self> {
        let count = self.num_variates();
        let mut values = aero_tensor::Matrix::zeros(indices.len(), self.len());
        for (r, &n) in indices.iter().enumerate() {
            if n >= count {
                return Err(TsError::VariateOutOfRange { index: n, count });
            }
            values.row_mut(r).copy_from_slice(self.values.row(n));
        }
        Ok(Self {
            values,
            timestamps: self.timestamps.clone(),
        })
    }

    /// Keeps only the first `n` variates (used by scalability sweeps).
    pub fn take_variates(&self, n: usize) -> Result<Self> {
        if n > self.num_variates() {
            return Err(TsError::VariateOutOfRange { index: n, count: self.num_variates() });
        }
        Ok(Self {
            values: self
                .values
                .slice_rows(0, n)
                .map_err(|_| TsError::VariateOutOfRange { index: n, count: self.num_variates() })?,
            timestamps: self.timestamps.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> MultivariateSeries {
        MultivariateSeries::regular(Matrix::from_fn(3, 10, |n, t| (n * 10 + t) as f32))
    }

    #[test]
    fn new_validates_lengths_and_order() {
        let m = Matrix::zeros(2, 3);
        assert!(MultivariateSeries::new(m.clone(), vec![0.0, 1.0]).is_err());
        assert!(MultivariateSeries::new(m.clone(), vec![0.0, 2.0, 1.0]).is_err());
        assert!(MultivariateSeries::new(m, vec![0.0, 1.0, 2.0]).is_ok());
    }

    #[test]
    fn window_extracts_trailing_columns() {
        let s = demo();
        let w = s.window(4, 3).unwrap();
        assert_eq!(w.shape(), (3, 3));
        assert_eq!(w.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(w.row(2), &[22.0, 23.0, 24.0]);
    }

    #[test]
    fn window_bounds_checked() {
        let s = demo();
        assert!(s.window(10, 3).is_err()); // end past series
        assert!(s.window(1, 3).is_err()); // window longer than prefix
        assert!(s.window(2, 3).is_ok());
    }

    #[test]
    fn window_ends_respect_stride() {
        let s = demo();
        let ends: Vec<usize> = s.window_ends(4, 2).collect();
        assert_eq!(ends, vec![3, 5, 7, 9]);
        let all: Vec<usize> = s.window_ends(4, 1).collect();
        assert_eq!(all, vec![3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn intervals_of_irregular_series() {
        let m = Matrix::zeros(1, 4);
        let s = MultivariateSeries::new(m, vec![0.0, 1.0, 3.0, 7.0]).unwrap();
        assert_eq!(s.intervals(), vec![0.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn split_preserves_totals() {
        let s = demo();
        let (a, b) = s.split_at(6).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 4);
        assert_eq!(a.num_variates(), 3);
        assert_eq!(b.get(0, 0), 6.0);
    }

    #[test]
    fn select_variates_picks_named_rows() {
        let s = demo();
        let t = s.select_variates(&[2, 0]).unwrap();
        assert_eq!(t.num_variates(), 2);
        assert_eq!(t.len(), 10);
        assert_eq!(t.get(0, 1), 21.0);
        assert_eq!(t.get(1, 1), 1.0);
        assert!(s.select_variates(&[3]).is_err());
        assert_eq!(s.select_variates(&[]).unwrap().num_variates(), 0);
    }

    #[test]
    fn take_variates_truncates_rows() {
        let s = demo();
        let t = s.take_variates(2).unwrap();
        assert_eq!(t.num_variates(), 2);
        assert_eq!(t.len(), 10);
        assert!(s.take_variates(4).is_err());
    }
}
