//! Per-variate min-max normalization.
//!
//! AERO's decoder ends in a sigmoid (Eq. 9), so inputs are scaled to `[0, 1]`
//! per variate using statistics from the *training* split only — applying the
//! same transform to the test split, as the paper's pipeline does.

use aero_tensor::Matrix;

use crate::error::{Result, TsError};
use crate::series::MultivariateSeries;

/// Fitted per-variate min-max scaler.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    ranges: Vec<f32>,
}

impl MinMaxScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns per-variate min/max from `series`.
    ///
    /// Degenerate variates (constant value) get range 1 so they map to 0.
    pub fn fit(&mut self, series: &MultivariateSeries) -> &mut Self {
        let n = series.num_variates();
        self.mins = Vec::with_capacity(n);
        self.ranges = Vec::with_capacity(n);
        for v in 0..n {
            let row = series.values().row(v);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &x in row {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            if !lo.is_finite() || !hi.is_finite() {
                lo = 0.0;
                hi = 1.0;
            }
            let range = hi - lo;
            self.mins.push(lo);
            self.ranges.push(if range > 1e-12 { range } else { 1.0 });
        }
        self
    }

    /// True once `fit` has run.
    pub fn is_fitted(&self) -> bool {
        !self.mins.is_empty()
    }

    /// Maps each variate to `[0, 1]` using the fitted statistics; values
    /// outside the training range are clamped to `[-0.1, 1.1]`.
    ///
    /// The tight clamp does two jobs: it bounds the effect of extreme
    /// test-time outliers on the network input, and it *saturates* extreme
    /// concurrent-noise excursions to a common level across stars, which
    /// makes the noise module's cross-star reconstruction near-exact. The
    /// cost — deep dips/flares cap their residual at ~0.1–1.1 — is harmless
    /// because nominal residuals sit near 0.01, an order of magnitude lower
    /// (widening the clamp to ±0.5 was measured to triple noise false
    /// alarms while adding nothing to recall).
    pub fn transform(&self, series: &MultivariateSeries) -> Result<MultivariateSeries> {
        self.transform_reusing(series, Vec::new())
    }

    /// Like [`MinMaxScaler::transform`] but filling a caller-provided
    /// timestamp spine (cleared first) instead of allocating a fresh one —
    /// streaming scorers thread the same `Vec` through every push via
    /// [`MultivariateSeries::into_parts`].
    pub fn transform_reusing(
        &self,
        series: &MultivariateSeries,
        mut timestamps: Vec<f64>,
    ) -> Result<MultivariateSeries> {
        if !self.is_fitted() {
            return Err(TsError::NotFitted);
        }
        if series.num_variates() != self.mins.len() {
            return Err(TsError::LengthMismatch {
                what: "scaler variates",
                expected: self.mins.len(),
                got: series.num_variates(),
            });
        }
        let (n, t) = (series.num_variates(), series.len());
        let mut out = Matrix::zeros(n, t);
        for v in 0..n {
            let (lo, range) = (self.mins[v], self.ranges[v]);
            let src = series.values().row(v);
            for (dst, &x) in out.row_mut(v).iter_mut().zip(src) {
                *dst = ((x - lo) / range).clamp(-0.1, 1.1);
            }
        }
        timestamps.clear();
        timestamps.extend_from_slice(series.timestamps());
        MultivariateSeries::new(out, timestamps)
    }

    /// Convenience: fit on `train`, transform both splits.
    pub fn fit_transform_pair(
        train: &MultivariateSeries,
        test: &MultivariateSeries,
    ) -> Result<(MultivariateSeries, MultivariateSeries)> {
        let mut scaler = Self::new();
        scaler.fit(train);
        Ok((scaler.transform(train)?, scaler.transform(test)?))
    }

    /// Fitted per-variate minima (empty before `fit`).
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Fitted per-variate ranges (empty before `fit`).
    pub fn ranges(&self) -> &[f32] {
        &self.ranges
    }

    /// Reconstructs a fitted scaler from saved statistics (model loading).
    pub fn from_parts(mins: Vec<f32>, ranges: Vec<f32>) -> Result<Self> {
        if mins.len() != ranges.len() {
            return Err(TsError::LengthMismatch {
                what: "scaler parts",
                expected: mins.len(),
                got: ranges.len(),
            });
        }
        Ok(Self { mins, ranges })
    }

    /// Inverse map for variate `v` (unclamped).
    pub fn inverse(&self, v: usize, normalized: f32) -> Result<f32> {
        if !self.is_fitted() {
            return Err(TsError::NotFitted);
        }
        if v >= self.mins.len() {
            return Err(TsError::VariateOutOfRange { index: v, count: self.mins.len() });
        }
        Ok(normalized * self.ranges[v] + self.mins[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: Vec<Vec<f32>>) -> MultivariateSeries {
        let n = rows.len();
        let t = rows[0].len();
        let flat: Vec<f32> = rows.into_iter().flatten().collect();
        MultivariateSeries::regular(Matrix::from_vec(n, t, flat).unwrap())
    }

    #[test]
    fn transform_maps_train_to_unit_interval() {
        let s = series(vec![vec![10.0, 20.0, 30.0], vec![-1.0, 0.0, 1.0]]);
        let mut sc = MinMaxScaler::new();
        sc.fit(&s);
        let t = sc.transform(&s).unwrap();
        assert_eq!(t.values().row(0), &[0.0, 0.5, 1.0]);
        assert_eq!(t.values().row(1), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn unfitted_scaler_errors() {
        let s = series(vec![vec![1.0, 2.0]]);
        assert_eq!(MinMaxScaler::new().transform(&s), Err(TsError::NotFitted));
    }

    #[test]
    fn out_of_range_test_values_are_clamped() {
        let train = series(vec![vec![0.0, 1.0]]);
        let test = series(vec![vec![-10.0, 100.0]]);
        let mut sc = MinMaxScaler::new();
        sc.fit(&train);
        let t = sc.transform(&test).unwrap();
        assert_eq!(t.values().row(0), &[-0.1, 1.1]);
    }

    #[test]
    fn constant_variate_maps_to_zero() {
        let s = series(vec![vec![5.0, 5.0, 5.0]]);
        let mut sc = MinMaxScaler::new();
        sc.fit(&s);
        let t = sc.transform(&s).unwrap();
        assert_eq!(t.values().row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn inverse_roundtrips() {
        let s = series(vec![vec![10.0, 20.0, 30.0]]);
        let mut sc = MinMaxScaler::new();
        sc.fit(&s);
        let norm = sc.transform(&s).unwrap();
        for t in 0..3 {
            let back = sc.inverse(0, norm.get(0, t)).unwrap();
            assert!((back - s.get(0, t)).abs() < 1e-4);
        }
    }

    #[test]
    fn variate_count_mismatch_rejected() {
        let train = series(vec![vec![0.0, 1.0]]);
        let test = series(vec![vec![0.0, 1.0], vec![0.0, 1.0]]);
        let mut sc = MinMaxScaler::new();
        sc.fit(&train);
        assert!(sc.transform(&test).is_err());
    }
}
