//! Gap handling for irregular observation series.
//!
//! GWAC-style data has weather interruptions: long stretches with no frames.
//! Detectors that assume a roughly regular cadence benefit from explicit
//! gap handling — this module finds large gaps and can fill them by linear
//! interpolation, returning a mask of the synthetic points so downstream
//! evaluation can exclude them.

use aero_tensor::Matrix;

use crate::error::Result;
use crate::labels::LabelGrid;
use crate::series::MultivariateSeries;

/// A detected observation gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap {
    /// Index of the observation *before* the gap.
    pub after_index: usize,
    /// Gap duration in time units.
    pub duration: f64,
}

/// Finds gaps whose duration exceeds `factor ×` the median inter-frame
/// interval. Returns an empty list for series shorter than 3 points.
pub fn find_gaps(series: &MultivariateSeries, factor: f64) -> Vec<Gap> {
    let ts = series.timestamps();
    if ts.len() < 3 {
        return Vec::new();
    }
    let mut intervals: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
    let mut sorted = intervals.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2];
    let threshold = median * factor.max(1.0);
    intervals
        .drain(..)
        .enumerate()
        .filter(|(_, d)| *d > threshold)
        .map(|(i, d)| Gap { after_index: i, duration: d })
        .collect()
}

/// Fills gaps larger than `factor ×` the median cadence with linearly
/// interpolated points at the median cadence. Returns the regularized
/// series and a mask marking the synthetic points.
pub fn fill_gaps(
    series: &MultivariateSeries,
    factor: f64,
) -> Result<(MultivariateSeries, LabelGrid)> {
    let ts = series.timestamps();
    let n = series.num_variates();
    if ts.len() < 3 {
        return Ok((series.clone(), LabelGrid::new(n, series.len())));
    }
    let mut sorted: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2].max(1e-9);
    let threshold = median * factor.max(1.0);

    let mut new_ts: Vec<f64> = Vec::with_capacity(ts.len());
    let mut columns: Vec<Vec<f32>> = Vec::with_capacity(ts.len());
    let mut synthetic: Vec<bool> = Vec::with_capacity(ts.len());

    let col = |t: usize| -> Vec<f32> { (0..n).map(|v| series.get(v, t)).collect() };

    new_ts.push(ts[0]);
    columns.push(col(0));
    synthetic.push(false);
    for t in 1..ts.len() {
        let dt = ts[t] - ts[t - 1];
        if dt > threshold {
            // Insert points at median cadence, linearly interpolated.
            let missing = ((dt / median).round() as usize).saturating_sub(1);
            for k in 1..=missing {
                let frac = k as f64 / (missing + 1) as f64;
                let stamp = ts[t - 1] + dt * frac;
                let prev = col(t - 1);
                let next = col(t);
                let interp: Vec<f32> = prev
                    .iter()
                    .zip(&next)
                    .map(|(a, b)| a + (b - a) * frac as f32)
                    .collect();
                new_ts.push(stamp);
                columns.push(interp);
                synthetic.push(true);
            }
        }
        new_ts.push(ts[t]);
        columns.push(col(t));
        synthetic.push(false);
    }

    let len = new_ts.len();
    let mut values = Matrix::zeros(n, len);
    for (t, c) in columns.iter().enumerate() {
        for (v, &x) in c.iter().enumerate() {
            values.set(v, t, x);
        }
    }
    let mut mask = LabelGrid::new(n, len);
    for (t, &s) in synthetic.iter().enumerate() {
        if s {
            for v in 0..n {
                mask.set(v, t, true);
            }
        }
    }
    Ok((MultivariateSeries::new(values, new_ts)?, mask))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gapped() -> MultivariateSeries {
        // Cadence 1.0 with one gap of 5.0 between indices 3 and 4.
        let ts = vec![0.0, 1.0, 2.0, 3.0, 8.0, 9.0, 10.0];
        let values = Matrix::from_fn(2, 7, |v, t| (v * 10 + t) as f32);
        MultivariateSeries::new(values, ts).unwrap()
    }

    #[test]
    fn find_gaps_locates_the_break() {
        let gaps = find_gaps(&gapped(), 3.0);
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].after_index, 3);
        assert!((gaps[0].duration - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regular_series_has_no_gaps() {
        let s = MultivariateSeries::regular(Matrix::zeros(1, 50));
        assert!(find_gaps(&s, 3.0).is_empty());
    }

    #[test]
    fn fill_gaps_inserts_interpolated_points() {
        let (filled, mask) = fill_gaps(&gapped(), 3.0).unwrap();
        // Gap of 5.0 at cadence 1.0 → 4 synthetic points.
        assert_eq!(filled.len(), 11);
        assert_eq!(mask.count(), 4 * 2); // per variate
        // Timestamps strictly increasing and interpolation linear.
        let ts = filled.timestamps();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        // Value halfway through the gap is halfway between endpoints.
        // Synthetic points live at indices 4..8.
        assert!(mask.get(0, 4) && mask.get(0, 7));
        assert!(!mask.get(0, 3) && !mask.get(0, 8));
        let before = filled.get(0, 3);
        let after = filled.get(0, 8);
        let mid = filled.get(0, 5);
        assert!(mid > before && mid < after);
    }

    #[test]
    fn short_series_passthrough() {
        let s = MultivariateSeries::regular(Matrix::zeros(1, 2));
        let (filled, mask) = fill_gaps(&s, 3.0).unwrap();
        assert_eq!(filled.len(), 2);
        assert_eq!(mask.count(), 0);
    }
}
