//! Boolean label grids (anomaly ground truth, concurrent-noise masks) and
//! contiguous-segment extraction.

use crate::error::{Result, TsError};

/// A dense `variates × timestamps` boolean grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelGrid {
    rows: usize,
    cols: usize,
    data: Vec<bool>,
}

/// A contiguous run `[start, end]` (inclusive) of `true` labels on one variate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Variate the segment belongs to.
    pub variate: usize,
    /// First labelled index.
    pub start: usize,
    /// Last labelled index (inclusive).
    pub end: usize,
}

impl Segment {
    /// Number of points in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Segments are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when `t` falls inside the segment.
    pub fn contains(&self, t: usize) -> bool {
        (self.start..=self.end).contains(&t)
    }
}

impl LabelGrid {
    /// All-false grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![false; rows * cols] }
    }

    /// Builds a grid from a closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut g = Self::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    g.set(r, c, true);
                }
            }
        }
        g
    }

    /// Number of variates.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of timestamps.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads label `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r * self.cols + c]
    }

    /// Writes label `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        self.data[r * self.cols + c] = v;
    }

    /// Marks `[start, end]` (inclusive, clamped to the grid) on variate `r`.
    pub fn mark_range(&mut self, r: usize, start: usize, end: usize) -> Result<()> {
        if r >= self.rows {
            return Err(TsError::VariateOutOfRange { index: r, count: self.rows });
        }
        for c in start..=end.min(self.cols.saturating_sub(1)) {
            self.set(r, c, true);
        }
        Ok(())
    }

    /// Total number of `true` labels.
    pub fn count(&self) -> usize {
        self.data.iter().filter(|&&v| v).count()
    }

    /// Fraction of `true` labels in the grid.
    pub fn fraction(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.data.len() as f64
        }
    }

    /// Row `r` as a bool slice.
    pub fn row(&self, r: usize) -> &[bool] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of variates with at least one `true` label.
    pub fn affected_variates(&self) -> usize {
        (0..self.rows)
            .filter(|&r| self.row(r).iter().any(|&v| v))
            .count()
    }

    /// Extracts all maximal contiguous `true` segments, per variate.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        for r in 0..self.rows {
            let row = self.row(r);
            let mut start = None;
            for (c, &v) in row.iter().enumerate() {
                match (v, start) {
                    (true, None) => start = Some(c),
                    (false, Some(s)) => {
                        out.push(Segment { variate: r, start: s, end: c - 1 });
                        start = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = start {
                out.push(Segment { variate: r, start: s, end: self.cols - 1 });
            }
        }
        out
    }

    /// Elementwise OR with another grid of the same shape.
    pub fn union(&self, other: &Self) -> Result<Self> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(TsError::LengthMismatch {
                what: "label grid",
                expected: self.data.len(),
                got: other.data.len(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a || b)
            .collect();
        Ok(Self { rows: self.rows, cols: self.cols, data })
    }

    /// Keeps exactly the rows named by `indices`, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let mut out = Self::new(indices.len(), self.cols);
        for (r, &n) in indices.iter().enumerate() {
            if n >= self.rows {
                return Err(TsError::VariateOutOfRange { index: n, count: self.rows });
            }
            out.data[r * self.cols..(r + 1) * self.cols].copy_from_slice(self.row(n));
        }
        Ok(out)
    }

    /// Keeps only the first `n` variates.
    pub fn take_rows(&self, n: usize) -> Result<Self> {
        if n > self.rows {
            return Err(TsError::VariateOutOfRange { index: n, count: self.rows });
        }
        Ok(Self { rows: n, cols: self.cols, data: self.data[..n * self.cols].to_vec() })
    }

    /// Splits at column `at` into `(left, right)`.
    pub fn split_at(&self, at: usize) -> Result<(Self, Self)> {
        if at > self.cols {
            return Err(TsError::WindowOutOfRange { end: at, window: 0, len: self.cols });
        }
        let mut left = Self::new(self.rows, at);
        let mut right = Self::new(self.rows, self.cols - at);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    if c < at {
                        left.set(r, c, true);
                    } else {
                        right.set(r, c - at, true);
                    }
                }
            }
        }
        Ok((left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_range_and_count() {
        let mut g = LabelGrid::new(2, 10);
        g.mark_range(0, 2, 4).unwrap();
        g.mark_range(1, 8, 20).unwrap(); // clamped to 9
        assert_eq!(g.count(), 5);
        assert!((g.fraction() - 0.25).abs() < 1e-12);
        assert!(g.mark_range(2, 0, 1).is_err());
    }

    #[test]
    fn segments_are_maximal_runs() {
        let mut g = LabelGrid::new(1, 8);
        g.mark_range(0, 1, 2).unwrap();
        g.mark_range(0, 5, 7).unwrap();
        let segs = g.segments();
        assert_eq!(
            segs,
            vec![
                Segment { variate: 0, start: 1, end: 2 },
                Segment { variate: 0, start: 5, end: 7 },
            ]
        );
        assert_eq!(segs[0].len(), 2);
        assert!(segs[1].contains(6));
        assert!(!segs[1].contains(4));
    }

    #[test]
    fn segment_reaching_series_end_is_closed() {
        let mut g = LabelGrid::new(1, 4);
        g.mark_range(0, 3, 3).unwrap();
        assert_eq!(g.segments(), vec![Segment { variate: 0, start: 3, end: 3 }]);
    }

    #[test]
    fn union_and_affected_variates() {
        let mut a = LabelGrid::new(2, 4);
        a.mark_range(0, 0, 1).unwrap();
        let mut b = LabelGrid::new(2, 4);
        b.mark_range(1, 2, 3).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.count(), 4);
        assert_eq!(u.affected_variates(), 2);
        assert_eq!(a.affected_variates(), 1);
    }

    #[test]
    fn split_at_partitions_labels() {
        let mut g = LabelGrid::new(1, 6);
        g.mark_range(0, 2, 4).unwrap();
        let (l, r) = g.split_at(3).unwrap();
        assert_eq!(l.count(), 1); // index 2
        assert_eq!(r.count(), 2); // indices 3, 4 → 0, 1
        assert!(r.get(0, 0) && r.get(0, 1));
    }
}
