//! A complete benchmark dataset: train/test splits, anomaly ground truth on
//! the test split, and the concurrent-noise mask used for analysis (Fig. 8's
//! ground-truth graph) and for Table I statistics.

use crate::error::{Result, TsError};
use crate::labels::LabelGrid;
use crate::series::MultivariateSeries;

/// Summary statistics matching the columns of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Training timestamps.
    pub train_len: usize,
    /// Test timestamps.
    pub test_len: usize,
    /// Number of variates (stars).
    pub variates: usize,
    /// Fraction of anomalous points in the test split (%).
    pub anomaly_pct: f64,
    /// Fraction of noise-affected points in the test split (%).
    pub noise_pct: f64,
    /// Anomaly-to-noise ratio `A/N`.
    pub a_n_ratio: f64,
    /// Number of contiguous anomaly segments in the test split.
    pub anomaly_segments: usize,
    /// Variates affected by concurrent noise, e.g. "17/24".
    pub noise_variates: String,
}

/// Train/test splits plus ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. "SyntheticMiddle").
    pub name: String,
    /// Training series (assumed anomaly-free or nearly so; unsupervised).
    pub train: MultivariateSeries,
    /// Test series to score.
    pub test: MultivariateSeries,
    /// Point-wise anomaly ground truth over the test split.
    pub test_labels: LabelGrid,
    /// Point-wise concurrent-noise mask over the test split (analysis only —
    /// detectors never see it).
    pub test_noise: LabelGrid,
    /// Concurrent-noise mask over the train split (for Fig. 8 style analysis).
    pub train_noise: LabelGrid,
}

impl Dataset {
    /// Validates internal shape consistency.
    pub fn validate(&self) -> Result<()> {
        let n = self.train.num_variates();
        if self.test.num_variates() != n {
            return Err(TsError::LengthMismatch {
                what: "test variates",
                expected: n,
                got: self.test.num_variates(),
            });
        }
        let checks = [
            (self.test_labels.rows(), n, "label rows"),
            (self.test_labels.cols(), self.test.len(), "label cols"),
            (self.test_noise.rows(), n, "noise rows"),
            (self.test_noise.cols(), self.test.len(), "noise cols"),
            (self.train_noise.rows(), n, "train-noise rows"),
            (self.train_noise.cols(), self.train.len(), "train-noise cols"),
        ];
        for (got, expected, what) in checks {
            if got != expected {
                return Err(TsError::LengthMismatch { what, expected, got });
            }
        }
        Ok(())
    }

    /// Number of variates.
    pub fn num_variates(&self) -> usize {
        self.train.num_variates()
    }

    /// Computes the Table I row for this dataset.
    pub fn stats(&self) -> DatasetStats {
        let anomaly_pct = self.test_labels.fraction() * 100.0;
        let noise_pct = self.test_noise.fraction() * 100.0;
        let a_n = if noise_pct > 0.0 { anomaly_pct / noise_pct } else { f64::INFINITY };
        // Count noise-affected variates over both splits (union), as Table I
        // reports per-dataset totals.
        let affected = (0..self.num_variates())
            .filter(|&v| {
                self.train_noise.row(v).iter().any(|&b| b)
                    || self.test_noise.row(v).iter().any(|&b| b)
            })
            .count();
        DatasetStats {
            name: self.name.clone(),
            train_len: self.train.len(),
            test_len: self.test.len(),
            variates: self.num_variates(),
            anomaly_pct,
            noise_pct,
            a_n_ratio: a_n,
            anomaly_segments: self.test_labels.segments().len(),
            noise_variates: format!("{affected}/{}", self.num_variates()),
        }
    }

    /// Shortens the training split to its first `len` columns (harness-scale
    /// runs keep the full test split — and therefore the full ground truth —
    /// while cutting training cost).
    pub fn truncate_train(&self, len: usize) -> Result<Self> {
        if len >= self.train.len() {
            return Ok(self.clone());
        }
        let (train, _) = self.train.split_at(len)?;
        let (train_noise, _) = self.train_noise.split_at(len)?;
        Ok(Self {
            name: self.name.clone(),
            train,
            test: self.test.clone(),
            test_labels: self.test_labels.clone(),
            test_noise: self.test_noise.clone(),
            train_noise,
        })
    }

    /// Restricts the dataset to exactly the variates named by `indices`, in
    /// the given order (one fleet shard's slice of a full-sky night).
    pub fn select_variates(&self, indices: &[usize]) -> Result<Self> {
        Ok(Self {
            name: format!("{}[shard of {}]", self.name, indices.len()),
            train: self.train.select_variates(indices)?,
            test: self.test.select_variates(indices)?,
            test_labels: self.test_labels.select_rows(indices)?,
            test_noise: self.test_noise.select_rows(indices)?,
            train_noise: self.train_noise.select_rows(indices)?,
        })
    }

    /// Restricts the dataset to its first `n` variates (scalability sweeps).
    pub fn take_variates(&self, n: usize) -> Result<Self> {
        Ok(Self {
            name: format!("{}[N={n}]", self.name),
            train: self.train.take_variates(n)?,
            test: self.test.take_variates(n)?,
            test_labels: self.test_labels.take_rows(n)?,
            test_noise: self.test_noise.take_rows(n)?,
            train_noise: self.train_noise.take_rows(n)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_tensor::Matrix;

    fn tiny() -> Dataset {
        let train = MultivariateSeries::regular(Matrix::zeros(2, 20));
        let test = MultivariateSeries::regular(Matrix::zeros(2, 10));
        let mut labels = LabelGrid::new(2, 10);
        labels.mark_range(0, 2, 3).unwrap();
        let mut noise = LabelGrid::new(2, 10);
        noise.mark_range(0, 6, 9).unwrap();
        noise.mark_range(1, 6, 9).unwrap();
        Dataset {
            name: "tiny".into(),
            train,
            test,
            test_labels: labels,
            test_noise: noise,
            train_noise: LabelGrid::new(2, 20),
        }
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_label_shape_mismatch() {
        let mut d = tiny();
        d.test_labels = LabelGrid::new(2, 5);
        assert!(d.validate().is_err());
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = tiny().stats();
        assert_eq!(s.variates, 2);
        assert_eq!(s.train_len, 20);
        assert_eq!(s.test_len, 10);
        assert!((s.anomaly_pct - 10.0).abs() < 1e-9); // 2 of 20 points
        assert!((s.noise_pct - 40.0).abs() < 1e-9); // 8 of 20 points
        assert!((s.a_n_ratio - 0.25).abs() < 1e-9);
        assert_eq!(s.anomaly_segments, 1);
        assert_eq!(s.noise_variates, "2/2");
    }

    #[test]
    fn truncate_train_keeps_test_intact() {
        let d = tiny().truncate_train(5).unwrap();
        assert!(d.validate().is_ok());
        assert_eq!(d.train.len(), 5);
        assert_eq!(d.test.len(), 10);
        assert_eq!(d.test_labels.count(), 2);
        // No-op when len >= train length.
        assert_eq!(tiny().truncate_train(100).unwrap().train.len(), 20);
    }

    #[test]
    fn select_variates_slices_by_index() {
        let d = tiny().select_variates(&[1]).unwrap();
        assert!(d.validate().is_ok());
        assert_eq!(d.num_variates(), 1);
        assert_eq!(d.test_labels.count(), 0, "labels live on variate 0");
        assert_eq!(d.test_noise.count(), 4);
        assert!(tiny().select_variates(&[2]).is_err());
    }

    #[test]
    fn take_variates_slices_everything() {
        let d = tiny().take_variates(1).unwrap();
        assert!(d.validate().is_ok());
        assert_eq!(d.num_variates(), 1);
        assert_eq!(d.test_labels.rows(), 1);
    }
}
