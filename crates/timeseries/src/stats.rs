//! Scalar statistics helpers shared across the workspace.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Empirical quantile via linear interpolation; `q ∈ [0, 1]`.
///
/// Returns 0 on empty input. Not streaming — sorts a copy.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Exponentially-weighted moving average with smoothing factor `alpha`
/// (`alpha = 1` copies the input; smaller is smoother).
pub fn ewma(xs: &[f32], alpha: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    let mut state = None;
    for &x in xs {
        let next = match state {
            None => x,
            Some(prev) => alpha * x + (1.0 - alpha) * prev,
        };
        out.push(next);
        state = Some(next);
    }
    out
}

/// Centered moving average with window `w` (edges use the available span).
pub fn moving_average(xs: &[f32], w: usize) -> Vec<f32> {
    let w = w.max(1);
    let half = w / 2;
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            mean(&xs[lo..hi])
        })
        .collect()
}

/// Pearson correlation of two equal-length slices (0 when degenerate).
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0f32;
    let mut va = 0.0f32;
    let mut vb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    let denom = (va * vb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        cov / denom
    }
}

/// Cosine similarity of two equal-length slices (0 when degenerate) —
/// the window-wise graph weight of AERO Eq. 12.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na * nb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        dot / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn ewma_smooths_towards_input() {
        let out = ewma(&[1.0, 1.0, 0.0], 0.5);
        assert_eq!(out, vec![1.0, 1.0, 0.5]);
        assert_eq!(ewma(&[3.0], 0.2), vec![3.0]);
    }

    #[test]
    fn moving_average_handles_edges() {
        let out = moving_average(&[0.0, 3.0, 6.0], 3);
        assert_eq!(out, vec![1.5, 3.0, 4.5]);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
