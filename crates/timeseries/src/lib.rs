//! # aero-timeseries
//!
//! Core time-series containers for the AERO reproduction: the `N × T`
//! [`MultivariateSeries`] with irregular timestamps and sliding-window
//! extraction (paper Fig. 3), boolean [`LabelGrid`]s for anomaly ground
//! truth and concurrent-noise masks, per-variate [`MinMaxScaler`]
//! normalization, benchmark [`Dataset`] bundles with Table-I statistics,
//! scalar statistics helpers, and CSV persistence.
//!
//! ```
//! use aero_tensor::Matrix;
//! use aero_timeseries::MultivariateSeries;
//!
//! // 3 stars × 100 observations, regular cadence.
//! let series = MultivariateSeries::regular(Matrix::from_fn(3, 100, |v, t| {
//!     ((t + v) as f32 * 0.2).sin()
//! }));
//! // The paper's sliding-window instance X_t ∈ R^{N×W}.
//! let window = series.window(99, 20).unwrap();
//! assert_eq!(window.shape(), (3, 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod gaps;
pub mod io;
pub mod labels;
pub mod normalize;
pub mod series;
pub mod stats;

pub use dataset::{Dataset, DatasetStats};
pub use error::{Result, TsError};
pub use gaps::{fill_gaps, find_gaps, Gap};
pub use labels::{LabelGrid, Segment};
pub use normalize::MinMaxScaler;
pub use series::MultivariateSeries;
