//! The AERO detector: two-stage offline training (Algorithm 1) and online
//! scoring (Algorithm 2), wired behind the common [`Detector`] interface.

use std::sync::{Arc, Mutex};

use aero_nn::{Activation, EarlyStopping, GcnLayer, NanRecovery, TrainingHistory};
use aero_tensor::{Adam, GradBuffer, Graph, Matrix, ParamId, ParamStore};
use aero_timeseries::{MinMaxScaler, MultivariateSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adapter::{AdapterSet, StarAdapter};
use crate::config::{AeroConfig, NoiseFeatures};
use crate::detector::{Detector, DetectorError, DetectorResult};
use crate::graph_learn::GraphBuilder;
use crate::supervisor::{SupervisionError, Supervisor, SupervisorPolicy};
use crate::temporal::TemporalModule;

/// A per-variate failure isolated by supervised scoring: the star's row was
/// zero-filled and the rest of the frame completed normally.
pub type ShardFailure = SupervisionError<DetectorError>;

/// How much of the two-stage pipeline one star receives in a degraded
/// scoring pass ([`Aero::score_with_modes`]) — the per-star rungs of the
/// overload ladder (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreMode {
    /// Both stages: score is the noise-cancelled residual `|R|`.
    Full,
    /// Stage 1 only: score is the raw reconstruction error `|E|` — noisier
    /// (concurrent noise is not cancelled) but skips the GCN refinement.
    Stage1,
    /// No model work at all: the star's Stage-1 transformer never runs and
    /// its scores are 0. Used for shed stars; cheaper rungs (SR fallback /
    /// hold-last) are layered on top by the stream governor.
    Skip,
}

/// Stage-1 output held between the two halves of the split scoring
/// pipeline: the scaled series, its scoring windows and their error
/// matrices, plus the degradation modes the pass was started with. Produced
/// by [`Aero::score_stage1`], consumed by [`Aero::score_stage2`] /
/// [`Aero::score_stage2_detached`] — the pipelined push holds one of these
/// per in-flight frame.
#[derive(Debug)]
pub(crate) struct PendingStage1 {
    scaled: MultivariateSeries,
    ends: Vec<usize>,
    errors: Vec<Matrix>,
    modes: Option<Vec<ScoreMode>>,
    run_stage2: bool,
}

/// Fault-injection hook for chaos testing: called with the variate index at
/// the top of every supervised per-variate work item (Stage-1 training
/// shards and supervised scoring). The crash-recovery suite installs hooks
/// that panic or stall for chosen stars to prove isolation; production
/// leaves it unset, where it costs one `Option` check.
#[derive(Clone)]
pub struct ChaosHook(Arc<dyn Fn(usize) + Send + Sync>);

impl ChaosHook {
    /// Wraps a closure called with each variate index before its work runs.
    pub fn new(f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    fn fire(&self, variate: usize) {
        (self.0)(variate);
    }
}

impl std::fmt::Debug for ChaosHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ChaosHook(..)")
    }
}

/// Active supervision context for one scoring pass (see
/// [`Aero::begin_supervised`]).
#[derive(Debug)]
struct SupervisionCell {
    sup: Arc<Supervisor>,
    /// Per-variate failures recorded by the supervised scoring path; slot
    /// `v` is `Some` iff variate `v`'s row was zero-filled.
    failures: Mutex<Vec<Option<ShardFailure>>>,
}

/// Recycled `Vec` spines for the streaming score hot path (the matrix
/// payloads inside them come from the tensor workspace pool regardless).
/// Kept behind a mutex because Stage-1 scores with `&self`; the lock is
/// uncontended — each pass takes a spine out or hands one back and releases
/// immediately.
#[derive(Debug, Default)]
struct ScoreScratch {
    ends: Vec<usize>,
    errors: Vec<Matrix>,
    residuals: Vec<(Matrix, Matrix)>,
    failures: Vec<Option<ShardFailure>>,
    /// Timestamp spine for the scaled copy of each pass's input.
    timestamps: Vec<f64>,
}

/// Fixed shard count for per-variate gradient accumulation.
///
/// Work is decomposed into this many shards regardless of how many threads
/// the pool runs, and shard buffers are merged in shard order — so the f32
/// gradient accumulation sequence (and therefore training) is bitwise
/// identical at any `AERO_THREADS` setting. See DESIGN.md § parallelism.
const GRAD_SHARDS: usize = 16;

/// The AERO anomaly detector.
///
/// ```
/// use aero_core::{Aero, AeroConfig, Detector};
/// use aero_datagen::SyntheticConfig;
///
/// let dataset = SyntheticConfig::tiny(1).build();
/// let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
/// aero.fit(&dataset.train).unwrap();
/// let scores = aero.score(&dataset.test).unwrap();
/// assert_eq!(scores.rows(), dataset.num_variates());
/// ```
#[derive(Debug)]
pub struct Aero {
    config: AeroConfig,
    store: ParamStore,
    temporal: Option<TemporalModule>,
    temporal_ids: Vec<ParamId>,
    gcn: Option<GcnLayer>,
    scaler: MinMaxScaler,
    graphs: GraphBuilder,
    trained: bool,
    /// Stage-1 loss trajectory (temporal module).
    pub stage1_history: TrainingHistory,
    /// Stage-2 loss trajectory (noise module).
    pub stage2_history: TrainingHistory,
    /// When `Some`, per-variate scoring runs under this supervisor and
    /// isolates failures instead of propagating them (set per scoring pass
    /// by [`Aero::begin_supervised`]).
    supervision: Option<SupervisionCell>,
    /// Optional chaos-testing fault hook (see [`ChaosHook`]).
    chaos_hook: Option<ChaosHook>,
    /// Programmatic override of `config.batched_inference` (A/B harnesses);
    /// `None` falls through to the `AERO_BATCHED` env var, then the config.
    batched_override: Option<bool>,
    /// Per-star adapter heads over the (frozen) backbone; `Some` iff
    /// `config.adapter_rank > 0` and modules are built.
    adapters: Option<AdapterSet>,
    /// Programmatic override of `config.quantized_rungs`; `None` falls
    /// through to the `AERO_QUANT` env var, then the config.
    quant_override: Option<bool>,
    /// Recycled scoring-pass allocations (see [`ScoreScratch`]).
    scratch: Mutex<ScoreScratch>,
}

impl Aero {
    /// Creates an untrained AERO with the given configuration.
    pub fn new(config: AeroConfig) -> DetectorResult<Self> {
        config.validate().map_err(DetectorError::Invalid)?;
        let graphs = GraphBuilder::with_edge_threshold(config.graph_mode, config.edge_threshold);
        Ok(Self {
            config,
            store: ParamStore::new(),
            temporal: None,
            temporal_ids: Vec::new(),
            gcn: None,
            scaler: MinMaxScaler::new(),
            graphs,
            trained: false,
            stage1_history: TrainingHistory::default(),
            stage2_history: TrainingHistory::default(),
            supervision: None,
            chaos_hook: None,
            batched_override: None,
            adapters: None,
            quant_override: None,
            scratch: Mutex::new(ScoreScratch::default()),
        })
    }

    /// Locks the scratch pool, recovering from a poisoned lock (scratch
    /// holds only recycled buffers, so a panic mid-hold leaves no invariant
    /// to protect).
    fn scratch_lock(&self) -> std::sync::MutexGuard<'_, ScoreScratch> {
        self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Forces the batched Stage-1 path on or off for this instance,
    /// overriding both `config.batched_inference` and the `AERO_BATCHED`
    /// env var. Used by the equivalence tests and A/B benchmarks.
    pub fn set_batched(&mut self, on: bool) {
        self.batched_override = Some(on);
    }

    /// Whether Stage-1 scoring routes through the batched cross-star path.
    /// Precedence: [`Aero::set_batched`] > `AERO_BATCHED=0/1` > config.
    pub fn batched_enabled(&self) -> bool {
        if let Some(on) = self.batched_override {
            return on;
        }
        static ENV: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
        let env = ENV.get_or_init(|| match std::env::var("AERO_BATCHED") {
            Ok(v) if v == "0" => Some(false),
            Ok(v) if v == "1" => Some(true),
            _ => None,
        });
        env.unwrap_or(self.config.batched_inference)
    }

    /// Forces the int8 quantized degraded-rung path on or off for this
    /// instance, overriding both `config.quantized_rungs` and the
    /// `AERO_QUANT` env var. Enabling it also opts the process into the
    /// tensor layer's quant mode (a [`aero_tensor::QuantScope`] is still
    /// required per thread, and only degraded-star scoring enters one, so
    /// other in-process detectors stay on the pinned f32 path).
    pub fn set_quantized(&mut self, on: bool) {
        self.quant_override = Some(on);
        if on {
            aero_tensor::set_quant(true);
        }
    }

    /// Whether degraded-rung (`Stage1`) scoring routes through the int8
    /// quantized GEMM path. Precedence: [`Aero::set_quantized`] >
    /// `AERO_QUANT=1` > config. `Full` stars never do, regardless.
    pub fn quantized_enabled(&self) -> bool {
        if let Some(on) = self.quant_override {
            return on;
        }
        aero_tensor::quant_opt_in() || self.config.quantized_rungs
    }

    /// Enters a quantized-GEMM scope when this instance has quantization
    /// enabled (and makes sure the process-level opt-in agrees, e.g. when
    /// only `config.quantized_rungs` asked for it).
    fn quant_scope(&self) -> Option<aero_tensor::QuantScope> {
        if !self.quantized_enabled() {
            return None;
        }
        if !aero_tensor::quant_opt_in() {
            aero_tensor::set_quant(true);
        }
        Some(aero_tensor::QuantScope::enter())
    }

    /// Installs (or clears) the chaos-testing fault hook.
    pub fn set_chaos_hook(&mut self, hook: Option<ChaosHook>) {
        self.chaos_hook = hook;
    }

    /// Arms supervised scoring: until [`Aero::end_supervised`], the
    /// per-variate scoring path runs each star under `supervisor` unit `v`
    /// (panic capture, deadline, retry, breaker) and zero-fills the row on
    /// failure instead of propagating. Any previous context is discarded, so
    /// a retried pass that panicked mid-flight starts from a clean slate.
    pub(crate) fn begin_supervised(&mut self, supervisor: Arc<Supervisor>, num_variates: usize) {
        let mut failures = std::mem::take(&mut self.scratch_lock().failures);
        failures.clear();
        failures.resize_with(num_variates, || None);
        self.supervision = Some(SupervisionCell {
            sup: supervisor,
            failures: Mutex::new(failures),
        });
    }

    /// Hands a failures vector from [`Aero::end_supervised`] back for reuse
    /// by the next [`Aero::begin_supervised`] (streaming pushes call this
    /// once per frame after draining the entries).
    pub(crate) fn recycle_failures(&self, mut failures: Vec<Option<ShardFailure>>) {
        failures.clear();
        self.scratch_lock().failures = failures;
    }

    /// Disarms supervised scoring and returns the per-variate failures
    /// recorded since [`Aero::begin_supervised`].
    pub(crate) fn end_supervised(&mut self) -> Vec<Option<ShardFailure>> {
        match self.supervision.take() {
            Some(cell) => cell.failures.into_inner().unwrap_or_else(|e| e.into_inner()),
            None => Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AeroConfig {
        &self.config
    }

    /// Total scalar parameter count (0 before `fit`).
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// True once `fit` has completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    fn omega(&self) -> usize {
        self.config.effective_short_window()
    }

    /// Window positions/intervals for the long window ending at `end`.
    ///
    /// Positions are *window-relative* (`0..W`): every window sees the same
    /// positional ramp, so scoring positions beyond the training range stays
    /// in-distribution. The irregular-sampling information enters through
    /// the real inter-observation intervals `Δ_t` (Eq. 1's learnable phase
    /// shift), which are taken from the actual timestamps.
    fn window_times(series: &MultivariateSeries, end: usize, w: usize) -> (Vec<f32>, Vec<f32>) {
        let start = end + 1 - w;
        let ts = series.timestamps();
        let positions: Vec<f32> = (0..w).map(|i| i as f32).collect();
        let deltas: Vec<f32> = (start..=end)
            .map(|t| if t == 0 { 0.0 } else { (ts[t] - ts[t - 1]) as f32 })
            .collect();
        (positions, deltas)
    }

    /// Stage-1 error matrix for the window ending at `end`: the backbone's
    /// `E = Y − Ŷ₁` ([`Aero::window_errors_backbone`]) minus each star's
    /// adapter-head correction (when adapters are enabled and trained).
    fn window_errors_internal(
        &self,
        scaled: &MultivariateSeries,
        end: usize,
        skip: Option<&[bool]>,
        cheap: Option<&[bool]>,
    ) -> DetectorResult<Matrix> {
        let mut e = self.window_errors_backbone(scaled, end, skip, cheap)?;
        self.apply_adapters(scaled, end, skip, &mut e)?;
        Ok(e)
    }

    /// Subtracts each star's adapter-predicted systematic residual from its
    /// error row. Identity heads (never trained) are skipped outright —
    /// `e − 0.0` would flip `−0.0` rows, and the skip is what keeps
    /// adapter-capable but untouched stars bitwise on the pinned path.
    fn apply_adapters(
        &self,
        scaled: &MultivariateSeries,
        end: usize,
        skip: Option<&[bool]>,
        e: &mut Matrix,
    ) -> DetectorResult<()> {
        let Some(adapters) = &self.adapters else {
            return Ok(());
        };
        if (0..adapters.len()).all(|v| adapters.head(v).is_none_or(StarAdapter::is_identity)) {
            return Ok(());
        }
        let omega = self.omega();
        let y = scaled.window(end, omega)?;
        let mut latent = vec![0.0f32; adapters.rank()];
        let mut pred = vec![0.0f32; omega];
        for v in 0..e.rows() {
            if skip.is_some_and(|s| s.get(v).copied().unwrap_or(false)) {
                continue;
            }
            let Some(head) = adapters.head(v) else { continue };
            if head.is_identity() {
                continue;
            }
            head.predict_into(y.row(v), &mut latent, &mut pred);
            for (slot, p) in e.row_mut(v).iter_mut().zip(&pred) {
                *slot -= p;
            }
        }
        Ok(())
    }

    /// Evaluates the temporal module's error matrix `E = Y − Ŷ₁ ∈ R^{N×ω}`
    /// for the window ending at `end` (forward only, no gradients kept).
    ///
    /// `skip[v] = true` zero-fills variate `v`'s row without running its
    /// transformer — checked *before* the chaos hook and the supervisor, so
    /// a skipped star costs nothing and leaves its breaker state untouched.
    ///
    /// `cheap[v] = true` marks a degraded-rung (`Stage1`) star: when the
    /// int8 quant mode is enabled, that star's transformer runs inside a
    /// [`aero_tensor::QuantScope`]. With quantization off (the default)
    /// `cheap` changes nothing and the pass stays bitwise.
    fn window_errors_backbone(
        &self,
        scaled: &MultivariateSeries,
        end: usize,
        skip: Option<&[bool]>,
        cheap: Option<&[bool]>,
    ) -> DetectorResult<Matrix> {
        let w = self.config.window;
        let omega = self.omega();
        let is_skipped = |v: usize| skip.is_some_and(|s| s.get(v).copied().unwrap_or(false));
        let y = scaled.window(end, omega)?;
        let Some(temporal) = &self.temporal else {
            // Ablation 1i (w/o temporal): Ŷ₁ = 0, so E = Y.
            let mut y = y;
            for v in 0..y.rows() {
                if is_skipped(v) {
                    y.row_mut(v).fill(0.0);
                }
            }
            return Ok(y);
        };
        let x = scaled.window(end, w)?;
        let (positions, deltas) = Self::window_times(scaled, end, w);
        let n = scaled.num_variates();

        if self.config.univariate_input {
            // Batched cross-star path: all active stars' windows stacked
            // row-wise and run through one GEMM per layer. Bitwise identical
            // to the per-star path (tier-1 gated), including under nominal
            // supervision — supervision adds no data flow when nothing
            // fails, and the batched forward has no per-star failure
            // boundary anyway (an error fails the whole frame). Chaos tests
            // need per-star fault isolation, so an installed hook keeps the
            // per-star path.
            if self.chaos_hook.is_none() && self.batched_enabled() {
                return self.window_errors_batched(temporal, &x, &y, &positions, &deltas, skip, cheap);
            }
            // Each variate owns an independent tape over a shared read-only
            // store — embarrassingly parallel. Rows land by variate index,
            // so the result is order-deterministic.
            let hook = self.chaos_hook.clone();
            let is_cheap = |v: usize| cheap.is_some_and(|c| c.get(v).copied().unwrap_or(false));
            let score_one = |v: usize| -> DetectorResult<Vec<f32>> {
                if is_skipped(v) {
                    return Ok(vec![0.0; omega]);
                }
                if let Some(hook) = &hook {
                    hook.fire(v);
                }
                // Degraded-rung stars may take the int8 GEMM path; the scope
                // is thread-local, so Full stars scored by sibling pool
                // threads stay on the pinned f32 path.
                let _quant = if is_cheap(v) { self.quant_scope() } else { None };
                let long = Matrix::col_vector(x.row(v));
                let short = Matrix::col_vector(y.row(v));
                let mut g = Graph::new();
                let out =
                    temporal.reconstruct(&mut g, &self.store, &long, &short, &positions, &deltas)?;
                let recon = g.value(out)?;
                Ok((0..omega).map(|t| y.get(v, t) - recon.get(t, 0)).collect())
            };
            let mut e = Matrix::zeros(n, omega);
            if let Some(cell) = &self.supervision {
                // Supervised (online) path: each star runs under its own
                // supervisor unit; a failure zero-fills that star's row and
                // is recorded for the caller, the other stars are untouched.
                // When nothing fails, rows are bitwise identical to the
                // unsupervised path — supervision adds no data flow.
                let rows: Vec<Option<Vec<f32>>> = aero_parallel::parallel_map_range(n, |v| {
                    if is_skipped(v) {
                        // Shed star: zero row, no supervisor involvement —
                        // the breaker must not see a synthetic success.
                        return None;
                    }
                    match cell.sup.run(v, || score_one(v)) {
                        Ok(row) => Some(row),
                        Err(failure) => {
                            let mut failures =
                                cell.failures.lock().unwrap_or_else(|e| e.into_inner());
                            if let Some(slot) = failures.get_mut(v) {
                                *slot = Some(failure);
                            }
                            None
                        }
                    }
                });
                for (v, row) in rows.into_iter().enumerate() {
                    if let Some(row) = row {
                        e.row_mut(v).copy_from_slice(&row);
                    }
                }
            } else {
                // Batch path: a panic becomes a typed error for the caller
                // (never an unwind across the pool), and any per-variate
                // error fails the whole batch as before.
                let rows = aero_parallel::supervised_map_range(n, score_one);
                for (v, row) in rows.into_iter().enumerate() {
                    let row = row.map_err(DetectorError::from)??;
                    e.row_mut(v).copy_from_slice(&row);
                }
            }
            Ok(e)
        } else {
            let long = x.transpose(); // W × N tokens
            let short = y.transpose();
            // Joint input runs one whole-frame forward, so the int8 path can
            // only engage when *every* scored star is on a degraded rung —
            // a single Full star keeps the frame on the pinned f32 path.
            let all_cheap = cheap.is_some_and(|c| {
                (0..n).all(|v| is_skipped(v) || c.get(v).copied().unwrap_or(false))
            });
            let _quant = if all_cheap { self.quant_scope() } else { None };
            let mut g = Graph::new();
            let out =
                temporal.reconstruct(&mut g, &self.store, &long, &short, &positions, &deltas)?;
            let recon = g.value(out)?; // ω × N
            let mut e = Matrix::zeros(n, omega);
            for v in 0..n {
                if is_skipped(v) {
                    continue; // whole-frame transformer ran anyway; drop the row
                }
                for t in 0..omega {
                    e.set(v, t, y.get(v, t) - recon.get(t, v));
                }
            }
            Ok(e)
        }
    }

    /// Batched Stage-1 error matrix: the univariate path's per-star windows
    /// stacked into one `(A·W) × 1` / `(A·ω) × 1` pair (A = active stars)
    /// and reconstructed in a single tape-free forward pass — one GEMM per
    /// layer instead of A small ones. Results are de-interleaved back into
    /// per-star rows of `E`. Skipped stars keep zero rows and never enter
    /// the stack, matching the per-star path exactly.
    ///
    /// With the int8 quant mode enabled and a mixed frame, the stack splits
    /// in two: `Full` stars in one f32 stack, degraded (`cheap`) stars in a
    /// second stack evaluated inside a quant scope. The batched forward is
    /// bitwise independent of stack composition (per-star equivalence is
    /// tier-1 gated), so the split changes nothing for the `Full` stars; and
    /// with quantization off (default) there is exactly one stack, same as
    /// before.
    #[allow(clippy::too_many_arguments)]
    fn window_errors_batched(
        &self,
        temporal: &TemporalModule,
        x: &Matrix,
        y: &Matrix,
        positions: &[f32],
        deltas: &[f32],
        skip: Option<&[bool]>,
        cheap: Option<&[bool]>,
    ) -> DetectorResult<Matrix> {
        let n = x.rows();
        let omega = y.cols();
        let is_skipped = |v: usize| skip.is_some_and(|s| s.get(v).copied().unwrap_or(false));
        let is_cheap = |v: usize| cheap.is_some_and(|c| c.get(v).copied().unwrap_or(false));
        let active: Vec<usize> = (0..n).filter(|&v| !is_skipped(v)).collect();
        let mut e = Matrix::zeros(n, omega);
        if active.is_empty() {
            return Ok(e);
        }
        let quantize = self.quantized_enabled() && active.iter().any(|&v| is_cheap(v));
        let stacks: Vec<(Vec<usize>, bool)> = if quantize {
            let (cheap_stars, full_stars): (Vec<usize>, Vec<usize>) =
                active.iter().partition(|&&v| is_cheap(v));
            [(full_stars, false), (cheap_stars, true)]
                .into_iter()
                .filter(|(stars, _)| !stars.is_empty())
                .collect()
        } else {
            vec![(active, false)]
        };
        for (stars, quant) in stacks {
            let _scope = if quant { self.quant_scope() } else { None };
            self.run_batched_stack(temporal, x, y, positions, deltas, &stars, &mut e)?;
        }
        Ok(e)
    }

    /// Runs one stacked batched forward over `stars` and writes their error
    /// rows into `e`.
    #[allow(clippy::too_many_arguments)]
    fn run_batched_stack(
        &self,
        temporal: &TemporalModule,
        x: &Matrix,
        y: &Matrix,
        positions: &[f32],
        deltas: &[f32],
        stars: &[usize],
        e: &mut Matrix,
    ) -> DetectorResult<()> {
        let w = x.cols();
        let omega = y.cols();
        let blocks = stars.len();
        let mut long = Matrix::zeros(blocks * w, 1);
        let mut short = Matrix::zeros(blocks * omega, 1);
        for (b, &v) in stars.iter().enumerate() {
            long.as_mut_slice()[b * w..(b + 1) * w].copy_from_slice(x.row(v));
            short.as_mut_slice()[b * omega..(b + 1) * omega].copy_from_slice(y.row(v));
        }
        let recon =
            temporal.reconstruct_batched(&self.store, &long, &short, positions, deltas, blocks)?;
        for (b, &v) in stars.iter().enumerate() {
            for t in 0..omega {
                e.set(v, t, y.get(v, t) - recon.get(b * omega + t, 0));
            }
        }
        Ok(())
    }

    /// Snapshot of every parameter value, for divergence rollback.
    ///
    /// O(1) per parameter: values are `Arc`-shared with the store, and the
    /// optimizer's copy-on-write update path copies a buffer only when it
    /// actually writes that parameter — i.e. the snapshot materializes
    /// exactly the params whose values changed since it was taken.
    fn snapshot_params(&self) -> Vec<(ParamId, Arc<Matrix>)> {
        self.store.iter().map(|(id, p)| (id, Arc::clone(p.value_arc()))).collect()
    }

    /// Restores a parameter snapshot taken by [`Self::snapshot_params`].
    fn restore_params(&mut self, snapshot: &[(ParamId, Arc<Matrix>)]) -> DetectorResult<()> {
        for (id, value) in snapshot {
            self.store.set_value_arc(*id, Arc::clone(value))?;
        }
        Ok(())
    }

    /// Stage 1: train the temporal module to reconstruct normal patterns.
    ///
    /// A diverged (non-finite loss) epoch rolls the parameters back to the
    /// best snapshot and retries with a halved learning rate, up to the
    /// [`NanRecovery`] budget; exhausting the budget keeps the best
    /// snapshot rather than erroring out of the whole fit.
    fn train_stage1(&mut self, scaled: &MultivariateSeries) -> DetectorResult<()> {
        let Some(temporal) = self.temporal.clone() else {
            return Ok(());
        };
        let w = self.config.window;
        let omega = self.omega();
        let ends: Vec<usize> = scaled.window_ends(w, self.config.train_stride).collect();
        if ends.is_empty() {
            return Err(DetectorError::Invalid(format!(
                "training series of length {} shorter than window W={w}",
                scaled.len()
            )));
        }
        let mut lr = self.config.lr;
        let mut opt = Adam::new(lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let mut recovery = NanRecovery::bounded_default();
        let mut best_loss = f32::INFINITY;
        let mut best = self.snapshot_params();
        let n = scaled.num_variates();
        // Shard supervisor: a transient panic in one gradient shard is
        // retried (the shard is a pure function of the frozen window + the
        // current parameters, so the retry is bitwise identical); a
        // persistent one surfaces as a typed error, never a pool abort.
        // The breaker is disabled — silently skipping a shard would corrupt
        // the gradient sum, so training prefers a hard typed failure.
        let shard_sup = Supervisor::new(
            SupervisorPolicy {
                circuit_threshold: u32::MAX,
                ..SupervisorPolicy::default()
            },
            GRAD_SHARDS,
        );
        let hook = self.chaos_hook.clone();

        let mut epoch = 0usize;
        while epoch < self.config.max_epochs {
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for &end in &ends {
                let x = scaled.window(end, w)?;
                let y = scaled.window(end, omega)?;
                let (positions, deltas) = Self::window_times(scaled, end, w);
                self.store.zero_grads();
                let mut window_loss = 0.0f64;
                if self.config.univariate_input {
                    // Per-variate tapes are independent, so shards accumulate
                    // gradients into thread-local buffers against a shared
                    // `&store`, and the buffers are merged in shard order
                    // before the optimizer step. Shard boundaries are fixed
                    // (GRAD_SHARDS), so the merge — and training — is
                    // bitwise identical at any thread count.
                    let shards = aero_parallel::shard_ranges(n, GRAD_SHARDS);
                    let store = &self.store;
                    let shard_sup = &shard_sup;
                    let hook = &hook;
                    let partials: Vec<Result<(f64, GradBuffer), SupervisionError<DetectorError>>> =
                        aero_parallel::parallel_map(&shards, |s, range| {
                            shard_sup.run(s, || {
                                let mut grads = GradBuffer::for_store(store);
                                let mut loss_sum = 0.0f64;
                                for v in range.clone() {
                                    if let Some(hook) = hook {
                                        hook.fire(v);
                                    }
                                    let long = Matrix::col_vector(x.row(v));
                                    let short = Matrix::col_vector(y.row(v));
                                    let mut g = Graph::new();
                                    let out = temporal.reconstruct(
                                        &mut g, store, &long, &short, &positions, &deltas,
                                    )?;
                                    let loss = g.mse_loss(out, &short)?;
                                    loss_sum += g.value(loss)?.scalar_value()? as f64;
                                    g.backward_into(loss, &mut grads)?;
                                }
                                Ok((loss_sum, grads))
                            })
                        });
                    for partial in partials {
                        let (shard_loss, mut grads) =
                            partial.map_err(SupervisionError::into_detector_error)?;
                        window_loss += shard_loss;
                        grads.merge_into(&mut self.store)?;
                    }
                    window_loss /= n as f64;
                } else {
                    let long = x.transpose();
                    let short = y.transpose();
                    let mut g = Graph::new();
                    let out = temporal
                        .reconstruct(&mut g, &self.store, &long, &short, &positions, &deltas)?;
                    let loss = g.mse_loss(out, &short)?;
                    window_loss = g.value(loss)?.scalar_value()? as f64;
                    g.backward(loss, &mut self.store)?;
                }
                if !window_loss.is_finite() {
                    // Any further steps would just propagate NaN through the
                    // optimizer state; abandon the epoch now.
                    epoch_loss = f64::NAN;
                    break;
                }
                opt.step(&mut self.store)?;
                epoch_loss += window_loss;
                batches += 1;
            }
            let mean = (epoch_loss / batches.max(1) as f64) as f32;
            if !mean.is_finite() {
                self.restore_params(&best)?;
                if recovery.should_retry() {
                    lr *= recovery.lr_decay();
                    opt = Adam::new(lr).with_clip_norm(5.0);
                    self.stage1_history.record_rollback();
                    continue; // retry the epoch from the rolled-back state
                }
                break; // budget exhausted: settle for the best snapshot
            }
            if mean < best_loss {
                best_loss = mean;
                best = self.snapshot_params();
            }
            self.stage1_history.push(mean);
            epoch += 1;
            if !stop.update(mean) {
                break;
            }
        }
        Ok(())
    }

    /// Stage 2: freeze the temporal module, train the GCN to reconstruct the
    /// concurrent-noise component of the stage-1 errors.
    fn train_stage2(&mut self, scaled: &MultivariateSeries) -> DetectorResult<()> {
        let Some(gcn) = self.gcn.clone() else {
            return Ok(());
        };
        let w = self.config.window;
        let omega = self.omega();
        let ends: Vec<usize> = scaled.window_ends(w, self.config.train_stride).collect();

        // Freeze module 1 (Algorithm 1 trains M₂ with M₁'s parameters fixed)
        // — which also means each window's error matrix is a constant we can
        // precompute once instead of re-running the Transformer every epoch.
        self.store.set_frozen(&self.temporal_ids, true)?;
        let mut errors = Vec::with_capacity(ends.len());
        for &end in &ends {
            // Backbone errors on purpose: the GCN learns to reconstruct the
            // *shared* Stage-1 error structure; per-star heads are layered on
            // afterwards (and are identity during fit anyway).
            errors.push(self.window_errors_backbone(scaled, end, None, None)?);
        }

        let mut lr = self.config.lr;
        let mut opt = Adam::new(lr).with_clip_norm(5.0);
        let mut stop = EarlyStopping::new(self.config.patience, 0.0);
        let mut recovery = NanRecovery::bounded_default();
        let mut best_loss = f32::INFINITY;
        let mut best = self.snapshot_params();

        let mut epoch = 0usize;
        while epoch < self.config.max_epochs {
            self.graphs.reset();
            let mut epoch_loss = 0.0f64;
            for (&end, e) in ends.iter().zip(&errors) {
                let feats_m = match self.config.noise_features {
                    NoiseFeatures::Errors => e.clone(),
                    NoiseFeatures::Window => scaled.window(end, omega)?,
                };
                let p = self.graphs.propagation(e);
                self.store.zero_grads();
                let mut g = Graph::new();
                let feats = g.constant(feats_m);
                let yhat2 = gcn.forward(&mut g, &self.store, &p, feats)?;
                // loss₂ = (Y − Ŷ₁) − Ŷ₂ = E − Ŷ₂  →  MSE(Ŷ₂, E).
                let loss = g.mse_loss(yhat2, e)?;
                let batch_loss = g.value(loss)?.scalar_value()? as f64;
                if !batch_loss.is_finite() {
                    epoch_loss = f64::NAN;
                    break;
                }
                g.backward(loss, &mut self.store)?;
                opt.step(&mut self.store)?;
                epoch_loss += batch_loss;
            }
            let mean = (epoch_loss / ends.len().max(1) as f64) as f32;
            if !mean.is_finite() {
                // Same divergence-recovery policy as stage 1.
                self.restore_params(&best)?;
                if recovery.should_retry() {
                    lr *= recovery.lr_decay();
                    opt = Adam::new(lr).with_clip_norm(5.0);
                    self.stage2_history.record_rollback();
                    continue;
                }
                break;
            }
            if mean < best_loss {
                best_loss = mean;
                best = self.snapshot_params();
            }
            self.stage2_history.push(mean);
            epoch += 1;
            if !stop.update(mean) {
                break;
            }
        }
        self.store.set_frozen(&self.temporal_ids, false)?;
        Ok(())
    }

    /// Final residual `R = Y − Ŷ₁ − Ŷ₂` for the window ending at `end` of an
    /// already-scaled series. Also returns the stage-1 error `E`.
    ///
    /// Takes the graph builder explicitly so stateless graph modes can score
    /// windows in parallel with per-window builder clones, while the EWMA
    /// mode threads one builder through the windows sequentially.
    fn window_residual_with(
        &self,
        scaled: &MultivariateSeries,
        end: usize,
        graphs: &mut GraphBuilder,
        skip: Option<&[bool]>,
        run_stage2: bool,
    ) -> DetectorResult<(Matrix, Matrix)> {
        let e = self.window_errors_internal(scaled, end, skip, None)?;
        self.stage2_from_error(scaled, end, e, graphs, run_stage2)
    }

    /// Stage-2 noise cancellation for one window given its precomputed
    /// Stage-1 error matrix — the second half of [`window_residual_with`]
    /// (split out so the pipelined push can run Stage-2 of frame `t−1`
    /// while Stage-1 of frame `t` scores concurrently).
    fn stage2_from_error(
        &self,
        scaled: &MultivariateSeries,
        end: usize,
        e: Matrix,
        graphs: &mut GraphBuilder,
        run_stage2: bool,
    ) -> DetectorResult<(Matrix, Matrix)> {
        let omega = self.omega();
        if !run_stage2 {
            // Degraded pass with no Full-mode star left: Stage-2's residual
            // would be read by nobody, so skip the GCN and alias R = E.
            return Ok((e.clone(), e));
        }
        let Some(gcn) = &self.gcn else {
            return Ok((e.clone(), e));
        };
        let mut residual = e.clone();
        let iterations = match self.config.noise_features {
            NoiseFeatures::Errors => self.config.noise_iterations.max(1),
            // The raw-window variant has no meaningful iterate (features do
            // not shrink as noise is explained), so run a single round.
            NoiseFeatures::Window => 1,
        };
        for _ in 0..iterations {
            let feats_m = match self.config.noise_features {
                NoiseFeatures::Errors => residual.clone(),
                NoiseFeatures::Window => scaled.window(end, omega)?,
            };
            let p = graphs.propagation(&residual);
            let mut g = Graph::new();
            let feats = g.constant(feats_m);
            let yhat2 = gcn.forward(&mut g, &self.store, &p, feats)?;
            let mut y2 = g.value(yhat2)?.clone();
            if self.config.amplitude_matching {
                for v in 0..y2.rows() {
                    let (mut dot, mut norm2) = (0.0f32, 0.0f32);
                    for (a, b) in y2.row(v).iter().zip(residual.row(v)) {
                        dot += a * b;
                        norm2 += a * a;
                    }
                    let alpha = if norm2 > 1e-12 { (dot / norm2).clamp(0.0, 2.0) } else { 0.0 };
                    for a in y2.row_mut(v) {
                        *a *= alpha;
                    }
                }
            }
            residual = residual.sub(&y2)?;
        }
        Ok((e, residual))
    }

    /// Residuals for a batch of scoring windows, in window order.
    ///
    /// Stateless graph modes (window-wise, static) score windows in parallel
    /// with per-window builder clones; the dynamic-EWMA mode is inherently
    /// sequential (each window's adjacency depends on the previous one), so
    /// it threads one builder through the windows serially. Either way the
    /// caller min-combines in window order, which is order-insensitive.
    fn window_residuals(
        &mut self,
        scaled: &MultivariateSeries,
        ends: &[usize],
        skip: Option<&[bool]>,
        run_stage2: bool,
    ) -> DetectorResult<Vec<(Matrix, Matrix)>> {
        self.graphs.reset();
        if self.graphs.is_stateful() {
            let mut graphs = self.graphs.clone();
            let mut out = Vec::with_capacity(ends.len());
            for &end in ends {
                out.push(self.window_residual_with(scaled, end, &mut graphs, skip, run_stage2)?);
            }
            self.graphs = graphs;
            Ok(out)
        } else {
            let this = &*self;
            // supervised_map: a panicking window becomes a typed error for
            // the caller instead of unwinding across the pool join.
            aero_parallel::supervised_map(ends, |_, &end| {
                let mut graphs = this.graphs.clone();
                this.window_residual_with(scaled, end, &mut graphs, skip, run_stage2)
            })
            .into_iter()
            .map(|r| r.map_err(DetectorError::from)?)
            .collect()
        }
    }

    /// Stage-1 half of the split scoring pipeline: scales the series, runs
    /// the temporal module over every scoring window and returns the error
    /// matrices plus everything Stage-2 needs to finish the pass.
    /// `modes = None` means an undegraded pass (all stars `Full`).
    pub(crate) fn score_stage1(
        &self,
        series: &MultivariateSeries,
        modes: Option<&[ScoreMode]>,
    ) -> DetectorResult<PendingStage1> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let ts_spine = std::mem::take(&mut self.scratch_lock().timestamps);
        let scaled = self.scaler.transform_reusing(series, ts_spine)?;
        let n = scaled.num_variates();
        if let Some(modes) = modes {
            if modes.len() != n {
                return Err(DetectorError::Invalid(format!(
                    "{} score modes for {n} variates",
                    modes.len()
                )));
            }
        }
        let skip: Option<Vec<bool>> =
            modes.map(|m| m.iter().map(|mode| *mode == ScoreMode::Skip).collect());
        // Degraded (Stage-1-only) stars are eligible for the opt-in int8
        // path; `Full` stars never are, so FullAero scoring stays bitwise.
        let cheap: Option<Vec<bool>> =
            modes.map(|m| m.iter().map(|mode| *mode == ScoreMode::Stage1).collect());
        let run_stage2 = modes.is_none_or(|m| m.contains(&ScoreMode::Full));
        let ends = self.score_ends(scaled.len());
        let errors = {
            let skip = skip.as_deref();
            let cheap = cheap.as_deref();
            if ends.len() == 1 {
                // Streaming fast path: one scoring window per push, so skip
                // the fan-out (and its per-call result vectors) and reuse
                // the recycled spine. A panic converts to the same typed
                // supervision error the mapped path would report.
                let mut out = std::mem::take(&mut self.scratch_lock().errors);
                out.clear();
                let end = ends[0];
                let e = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.window_errors_internal(&scaled, end, skip, cheap)
                }))
                .unwrap_or_else(|payload| {
                    Err(DetectorError::from(aero_parallel::ShardError {
                        shard: 0,
                        message: aero_parallel::panic_message(payload),
                    }))
                })?;
                out.push(e);
                out
            } else {
                aero_parallel::supervised_map(&ends, |_, &end| {
                    self.window_errors_internal(&scaled, end, skip, cheap)
                })
                .into_iter()
                .map(|r| r.map_err(DetectorError::from)?)
                .collect::<DetectorResult<Vec<Matrix>>>()?
            }
        };
        Ok(PendingStage1 {
            scaled,
            ends,
            errors,
            modes: modes.map(<[ScoreMode]>::to_vec),
            run_stage2,
        })
    }

    /// Stage-2 half: noise-cancels the pending error matrices and
    /// min-combines them into the final score matrix. Composing this with
    /// [`Aero::score_stage1`] is exactly [`Detector::score`] (modes `None`)
    /// or [`Aero::score_with_modes`] — both delegate here.
    pub(crate) fn score_stage2(&mut self, pending: PendingStage1) -> DetectorResult<Matrix> {
        self.graphs.reset();
        let residuals = if self.graphs.is_stateful() {
            let mut graphs = self.graphs.clone();
            let mut out = std::mem::take(&mut self.scratch_lock().residuals);
            out.clear();
            for (&end, e) in pending.ends.iter().zip(&pending.errors) {
                out.push(self.stage2_from_error(
                    &pending.scaled,
                    end,
                    e.clone(),
                    &mut graphs,
                    pending.run_stage2,
                )?);
            }
            self.graphs = graphs;
            out
        } else if pending.ends.len() == 1 {
            // Streaming fast path — mirror of the Stage-1 single-window
            // branch: direct call on a recycled spine, panics converted to
            // the typed supervision error.
            let mut out = std::mem::take(&mut self.scratch_lock().residuals);
            out.clear();
            let this = &*self;
            let p = &pending;
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut graphs = this.graphs.clone();
                this.stage2_from_error(&p.scaled, p.ends[0], p.errors[0].clone(), &mut graphs, p.run_stage2)
            }))
            .unwrap_or_else(|payload| {
                Err(DetectorError::from(aero_parallel::ShardError {
                    shard: 0,
                    message: aero_parallel::panic_message(payload),
                }))
            })?;
            out.push(r);
            out
        } else {
            let this = &*self;
            let p = &pending;
            aero_parallel::supervised_map(&pending.ends, |i, &end| {
                let mut graphs = this.graphs.clone();
                this.stage2_from_error(&p.scaled, end, p.errors[i].clone(), &mut graphs, p.run_stage2)
            })
            .into_iter()
            .map(|r| r.map_err(DetectorError::from)?)
            .collect::<DetectorResult<Vec<_>>>()?
        };
        let scores = self.combine_scores(&pending, &residuals);
        self.recycle_pending(pending, residuals);
        Ok(scores)
    }

    /// Returns a finished pass's `Vec` spines to the scratch pool. The
    /// matrix payloads drop back into the tensor workspace pool as the
    /// spines are cleared, so the next push's Stage-1 reuses both layers.
    fn recycle_pending(&self, pending: PendingStage1, mut residuals: Vec<(Matrix, Matrix)>) {
        let PendingStage1 { scaled, mut ends, mut errors, .. } = pending;
        let (_values, mut ts) = scaled.into_parts();
        ts.clear();
        ends.clear();
        errors.clear();
        residuals.clear();
        let mut scratch = self.scratch_lock();
        scratch.ends = ends;
        scratch.errors = errors;
        scratch.residuals = residuals;
        scratch.timestamps = ts;
    }

    /// Like [`Aero::score_stage2`] but borrowing `self` immutably, so the
    /// pipelined push can finish frame `t−1` while frame `t`'s Stage-1
    /// scores concurrently on another thread. Works on a reset clone of the
    /// graph builder; every scoring pass resets the builder on entry anyway,
    /// so discarding the clone's state afterwards is indistinguishable from
    /// the sequential path.
    pub(crate) fn score_stage2_detached(&self, pending: &PendingStage1) -> DetectorResult<Matrix> {
        let mut graphs = self.graphs.clone();
        graphs.reset();
        let mut residuals = Vec::with_capacity(pending.ends.len());
        for (&end, e) in pending.ends.iter().zip(&pending.errors) {
            residuals.push(self.stage2_from_error(
                &pending.scaled,
                end,
                e.clone(),
                &mut graphs,
                pending.run_stage2,
            )?);
        }
        Ok(self.combine_scores(pending, &residuals))
    }

    /// Min-combines window residuals into the final `N × len` score matrix
    /// (mode-aware), zeroes unscored (warmup) columns, and applies score
    /// smoothing — the shared tail of both scoring paths.
    fn combine_scores(&self, pending: &PendingStage1, residuals: &[(Matrix, Matrix)]) -> Matrix {
        let n = pending.scaled.num_variates();
        let len = pending.scaled.len();
        let omega = self.omega();
        let mut scores = Matrix::full(n, len, f32::INFINITY);
        for (&end, (e, r)) in pending.ends.iter().zip(residuals) {
            let start = end + 1 - omega;
            for v in 0..n {
                let mode = pending.modes.as_ref().map_or(ScoreMode::Full, |m| m[v]);
                let src = match mode {
                    ScoreMode::Full => r,
                    ScoreMode::Stage1 => e,
                    ScoreMode::Skip => continue, // stays ∞, zeroed below
                };
                for t in 0..omega {
                    let cur = scores.get(v, start + t);
                    scores.set(v, start + t, cur.min(src.get(v, t).abs()));
                }
            }
        }
        for v in scores.as_mut_slice() {
            if v.is_infinite() {
                *v = 0.0;
            }
        }
        if self.config.score_smoothing > 1 {
            let w = self.config.score_smoothing;
            let warm = self.warmup();
            for v in 0..n {
                let smoothed =
                    aero_timeseries::stats::moving_average(&scores.row(v)[warm..], w);
                scores.row_mut(v)[warm..].copy_from_slice(&smoothed);
            }
        }
        scores
    }

    /// Scoring window end indices: the first full window, then steps of
    /// `ω/2` (half-overlapping short windows), plus a final tail window.
    /// Each column is scored by up to two window contexts; the residuals
    /// are min-combined, so a concurrent-noise event clipped at one block
    /// boundary still gets fully reconstructed by the neighbouring context.
    fn score_ends(&self, len: usize) -> Vec<usize> {
        let w = self.config.window;
        let omega = self.omega();
        let stride = (omega / 2).max(1);
        let mut ends = std::mem::take(&mut self.scratch_lock().ends);
        ends.clear();
        if len < w {
            return ends;
        }
        let mut e = w - 1;
        while e < len {
            ends.push(e);
            e += stride;
        }
        if ends.last().copied() != Some(len - 1) {
            ends.push(len - 1);
        }
        ends
    }

    /// Exposes the window-wise adjacency for analysis (Fig. 8). The series
    /// is scaled internally; `end` is the window's last column.
    pub fn window_graph(
        &mut self,
        series: &MultivariateSeries,
        end: usize,
    ) -> DetectorResult<Matrix> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let e = self.window_errors_internal(&scaled, end, None, None)?;
        Ok(crate::graph_learn::window_adjacency(&e))
    }

    /// Per-stage reconstruction errors for analysis (Fig. 9): returns
    /// `(|E|, |R|)` score matrices over the whole series.
    pub fn stage_scores(
        &mut self,
        series: &MultivariateSeries,
    ) -> DetectorResult<(Matrix, Matrix)> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let scaled = self.scaler.transform(series)?;
        let n = scaled.num_variates();
        let len = scaled.len();
        let omega = self.omega();
        let mut e_scores = Matrix::full(n, len, f32::INFINITY);
        let mut r_scores = Matrix::full(n, len, f32::INFINITY);
        let ends = self.score_ends(len);
        let residuals = self.window_residuals(&scaled, &ends, None, true)?;
        for (&end, (e, r)) in ends.iter().zip(&residuals) {
            let start = end + 1 - omega;
            for v in 0..n {
                for t in 0..omega {
                    let ce = e_scores.get(v, start + t);
                    e_scores.set(v, start + t, ce.min(e.get(v, t).abs()));
                    let cr = r_scores.get(v, start + t);
                    r_scores.set(v, start + t, cr.min(r.get(v, t).abs()));
                }
            }
        }
        for m in [&mut e_scores, &mut r_scores] {
            for v in m.as_mut_slice() {
                if v.is_infinite() {
                    *v = 0.0;
                }
            }
        }
        Ok((e_scores, r_scores))
    }

    /// [`Detector::score`] with a per-star degradation mode (the overload
    /// ladder's model rungs, DESIGN.md §11): `Full` stars get the two-stage
    /// residual `|R|`, `Stage1` stars the raw error `|E|`, and `Skip` stars
    /// a zero row with their transformer never invoked.
    ///
    /// With every mode `Full` this delegates to [`Detector::score`] and is
    /// bitwise identical to it — degradation is strictly opt-in per star.
    /// When no star is `Full` the Stage-2 GCN is skipped entirely. Note that
    /// skipping stars zero-fills their rows of the error matrix the GCN
    /// propagates over, so `Full` scores under a partial mask legitimately
    /// differ from an unmasked pass; the mask itself is a deterministic
    /// function of arrival order, keeping the verdict stream reproducible.
    pub fn score_with_modes(
        &mut self,
        series: &MultivariateSeries,
        modes: &[ScoreMode],
    ) -> DetectorResult<Matrix> {
        if modes.iter().all(|m| *m == ScoreMode::Full) {
            return self.score(series);
        }
        let pending = self.score_stage1(series, Some(modes))?;
        self.score_stage2(pending)
    }
}

impl Aero {
    /// (Re)builds modules and the parameter store for `n` variates.
    /// Deterministic given the config seed — identical register order on
    /// every call, which is what makes [`Aero::load`] possible.
    pub(crate) fn build_modules(&mut self, n: usize) -> DetectorResult<()> {
        self.store = ParamStore::new();
        self.stage1_history = TrainingHistory::default();
        self.stage2_history = TrainingHistory::default();
        let in_dim = if self.config.univariate_input { 1 } else { n };
        if self.config.use_temporal {
            let t = TemporalModule::new(&mut self.store, &self.config, in_dim, self.config.seed)?;
            self.temporal_ids = t.param_ids();
            self.temporal = Some(t);
        } else {
            self.temporal = None;
            self.temporal_ids = Vec::new();
        }
        if self.config.use_noise_module {
            let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed);
            let omega = self.omega();
            self.gcn = Some(GcnLayer::new_identity(
                &mut self.store,
                "noise.gcn",
                omega,
                Activation::Tanh,
                &mut rng,
            ));
        } else {
            self.gcn = None;
        }
        self.adapters = if self.config.adapter_rank > 0 {
            Some(AdapterSet::new(
                n,
                self.omega(),
                self.config.adapter_rank,
                self.config.seed,
            ))
        } else {
            None
        };
        Ok(())
    }

    /// Direct access to the parameter store (used by persistence).
    pub(crate) fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameter store (used by persistence).
    pub(crate) fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The fitted scaler (used by persistence).
    pub(crate) fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// Restores trained state (used by persistence).
    pub(crate) fn restore(&mut self, scaler: MinMaxScaler) {
        self.scaler = scaler;
        self.trained = true;
    }

    /// The per-star adapter heads (`None` when `adapter_rank == 0`).
    pub fn adapters(&self) -> Option<&AdapterSet> {
        self.adapters.as_ref()
    }

    /// Mutable adapter access (persistence / migration install paths).
    pub(crate) fn adapters_mut(&mut self) -> Option<&mut AdapterSet> {
        self.adapters.as_mut()
    }

    /// One online SGD step for star `v`'s adapter head: runs the frozen
    /// backbone's Stage-1 forward for that star alone over the newest window
    /// of `series` and nudges the head toward predicting the residual. The
    /// trunk never moves — only the star's `2·r·ω + O(1)` delta scalars do.
    ///
    /// Deterministic given the call sequence, so WAL replay reproduces the
    /// exact head state. Returns the head's total update count.
    pub fn adapt_star(&mut self, v: usize, series: &MultivariateSeries) -> DetectorResult<u64> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        if self.adapters.is_none() {
            return Err(DetectorError::Invalid(
                "adapter_rank is 0: no per-star heads to adapt".into(),
            ));
        }
        if !self.config.univariate_input {
            return Err(DetectorError::Invalid(
                "per-star adaptation requires univariate_input".into(),
            ));
        }
        let scaled = self.scaler.transform(series)?;
        if v >= scaled.num_variates() {
            return Err(DetectorError::Invalid(format!(
                "star {v} out of range ({} variates)",
                scaled.num_variates()
            )));
        }
        let w = self.config.window;
        if scaled.len() < w {
            return Err(DetectorError::Invalid(format!(
                "series of length {} too short for W={w}",
                scaled.len()
            )));
        }
        let omega = self.omega();
        let end = scaled.len() - 1;
        let y = scaled.window(end, omega)?;
        let residual: Vec<f32> = match &self.temporal {
            Some(temporal) => {
                let x = scaled.window(end, w)?;
                let (positions, deltas) = Self::window_times(&scaled, end, w);
                let long = Matrix::col_vector(x.row(v));
                let short = Matrix::col_vector(y.row(v));
                let mut g = Graph::new();
                let out = temporal
                    .reconstruct(&mut g, &self.store, &long, &short, &positions, &deltas)?;
                let recon = g.value(out)?;
                (0..omega).map(|t| y.get(v, t) - recon.get(t, 0)).collect()
            }
            // Ablation 1i: E = Y, the head learns the star's raw pattern.
            None => y.row(v).to_vec(),
        };
        let lr = self.config.adapter_lr;
        let head = self
            .adapters
            .as_mut()
            .and_then(|a| a.head_mut(v))
            .ok_or_else(|| DetectorError::Invalid(format!("no adapter head for star {v}")))?;
        head.sgd_step(y.row(v), &residual, lr);
        Ok(head.updates())
    }

    /// Snapshots the trained trunk for `Arc`-sharing: every parameter by
    /// registration name, values aliased (not copied). Detectors assembled
    /// from the snapshot via [`Aero::from_backbone`] share these buffers
    /// byte-for-byte, so a fleet of N shards holds **one** trunk.
    pub fn backbone(&self) -> DetectorResult<BackboneSnapshot> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let params = self
            .store
            .iter()
            .map(|(_, p)| (p.name().to_string(), Arc::clone(p.value_arc())))
            .collect();
        BackboneSnapshot::from_parts(self.config.clone(), params)
    }

    /// Star `v`'s full per-star state beyond the shared trunk: its scaler
    /// column plus (when adapters are enabled) its trained head. This is the
    /// kilobyte-scale unit that v3 checkpoints and mid-night migration move.
    pub fn star_delta(&self, v: usize) -> DetectorResult<StarDelta> {
        if !self.trained {
            return Err(DetectorError::Invalid("call fit() first".into()));
        }
        let (Some(&min), Some(&range)) = (self.scaler.mins().get(v), self.scaler.ranges().get(v))
        else {
            return Err(DetectorError::Invalid(format!(
                "star {v} out of range ({} variates)",
                self.scaler.mins().len()
            )));
        };
        Ok(StarDelta {
            scaler_min: min,
            scaler_range: range,
            adapter: self.adapters.as_ref().and_then(|a| a.head(v)).cloned(),
        })
    }

    /// Assembles a trained detector from a shared backbone plus one delta
    /// per star. The trunk parameters are `Arc`-aliased (zero copies) and
    /// frozen; the rebuilt module layout must match the snapshot exactly —
    /// any missing or extra parameter is a typed error, never silence.
    ///
    /// With identity (or absent) adapter heads the assembled detector scores
    /// **bitwise identically** to the monolithic model it was split from:
    /// same config, same buffers, same module layout (tier-1 gated).
    pub fn from_backbone(backbone: &BackboneSnapshot, deltas: &[StarDelta]) -> DetectorResult<Self> {
        if deltas.is_empty() {
            return Err(DetectorError::Invalid(
                "from_backbone needs at least one star delta".into(),
            ));
        }
        let mut aero = Self::new(backbone.config().clone())?;
        aero.build_modules(deltas.len())?;
        let mut ids = Vec::with_capacity(backbone.params().len());
        for (name, value) in backbone.params() {
            let Some(id) = aero.store.id_by_name(name) else {
                return Err(DetectorError::Invalid(format!(
                    "backbone parameter `{name}` has no slot in the rebuilt module layout"
                )));
            };
            aero.store.set_value_arc(id, Arc::clone(value))?;
            ids.push(id);
        }
        if ids.len() != aero.store.len() {
            return Err(DetectorError::Invalid(format!(
                "backbone holds {} parameters, rebuilt layout expects {}",
                ids.len(),
                aero.store.len()
            )));
        }
        aero.store.set_frozen(&ids, true)?;
        let mins: Vec<f32> = deltas.iter().map(|d| d.scaler_min).collect();
        let ranges: Vec<f32> = deltas.iter().map(|d| d.scaler_range).collect();
        aero.scaler = MinMaxScaler::from_parts(mins, ranges)?;
        for (v, d) in deltas.iter().enumerate() {
            if let Some(head) = &d.adapter {
                let Some(adapters) = &mut aero.adapters else {
                    return Err(DetectorError::Invalid(format!(
                        "star {v}'s delta carries an adapter head but adapter_rank is 0"
                    )));
                };
                adapters.install_head(v, head.clone())?;
            }
        }
        aero.trained = true;
        Ok(aero)
    }

    /// Measured resident bytes of this detector's owned buffers, with
    /// `Arc`-shared trunk parameters deduplicated across detectors via
    /// `seen` (keyed by buffer address). The first detector to visit a
    /// shared buffer pays for it; replicas assembled via
    /// [`Aero::from_backbone`] then count only their per-star state. Feed a
    /// fresh set to measure one detector standalone.
    pub fn resident_bytes(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        let mut bytes = self.store.resident_bytes(seen);
        bytes += (self.scaler.mins().len() + self.scaler.ranges().len())
            * std::mem::size_of::<f32>();
        if let Some(adapters) = &self.adapters {
            bytes += adapters.delta_bytes();
        }
        bytes
    }
}

/// The shared frozen trunk — Stage-1 Transformer + GCN parameters — trained
/// once per night on a sampled subset of stars and then `Arc`-shared by
/// every detector assembled from it ([`Aero::from_backbone`]). Parameters
/// are keyed by registration name; [`Aero::build_modules`] is deterministic,
/// so the rebuilt layout always offers the same names.
#[derive(Debug, Clone)]
pub struct BackboneSnapshot {
    config: AeroConfig,
    params: Vec<(String, Arc<Matrix>)>,
}

impl BackboneSnapshot {
    /// Builds a snapshot from a validated config and named parameters.
    pub fn from_parts(
        config: AeroConfig,
        params: Vec<(String, Arc<Matrix>)>,
    ) -> DetectorResult<Self> {
        config.validate().map_err(DetectorError::Invalid)?;
        Ok(Self { config, params })
    }

    /// The training configuration the trunk was fit under.
    pub fn config(&self) -> &AeroConfig {
        &self.config
    }

    /// The named trunk parameters (values `Arc`-aliased, never copied).
    pub fn params(&self) -> &[(String, Arc<Matrix>)] {
        &self.params
    }

    /// Unique trunk bytes — each parameter buffer counted exactly once,
    /// regardless of how many detectors share it.
    pub fn param_bytes(&self) -> usize {
        self.params.iter().map(|(_, m)| m.len() * std::mem::size_of::<f32>()).sum()
    }
}

/// One star's detector state beyond the shared trunk: its scaler column and
/// (when adapters are enabled) its trained head. Kilobytes, not a model —
/// the unit v3 checkpoints store per star and mid-night migration ships.
#[derive(Debug, Clone, PartialEq)]
pub struct StarDelta {
    /// The star's fitted min (scaler statistics).
    pub scaler_min: f32,
    /// The star's fitted range (scaler statistics).
    pub scaler_range: f32,
    /// The star's adapter head, `None` when `adapter_rank == 0`.
    pub adapter: Option<StarAdapter>,
}

impl StarDelta {
    /// Serialized size of this delta in bytes.
    pub fn delta_bytes(&self) -> usize {
        2 * std::mem::size_of::<f32>()
            + self.adapter.as_ref().map_or(0, StarAdapter::delta_bytes)
    }
}

impl Detector for Aero {
    fn name(&self) -> String {
        "AERO".into()
    }

    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()> {
        if train.len() < self.config.window + 1 {
            return Err(DetectorError::Invalid(format!(
                "training series of length {} too short for W={}",
                train.len(),
                self.config.window
            )));
        }
        self.scaler = MinMaxScaler::new();
        self.scaler.fit(train);
        let scaled = self.scaler.transform(train)?;

        self.build_modules(train.num_variates())?;

        self.train_stage1(&scaled)?;
        self.train_stage2(&scaled)?;
        self.trained = true;
        Ok(())
    }

    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
        let pending = self.score_stage1(series, None)?;
        self.score_stage2(pending)
    }

    fn warmup(&self) -> usize {
        self.config.window.saturating_sub(self.omega())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphMode;
    use aero_datagen::SyntheticConfig;

    fn tiny_dataset() -> aero_timeseries::Dataset {
        SyntheticConfig::tiny(11).build()
    }

    #[test]
    fn fit_then_score_shapes() {
        let ds = tiny_dataset();
        let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
        aero.fit(&ds.train).unwrap();
        assert!(aero.is_trained());
        assert!(aero.num_parameters() > 0);
        let scores = aero.score(&ds.test).unwrap();
        assert_eq!(scores.shape(), (ds.num_variates(), ds.test.len()));
        assert!(!scores.has_non_finite());
    }

    #[test]
    fn score_before_fit_errors() {
        let ds = tiny_dataset();
        let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
        assert!(aero.score(&ds.test).is_err());
    }

    #[test]
    fn short_training_series_rejected() {
        let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
        let short = MultivariateSeries::regular(aero_tensor::Matrix::zeros(2, 10));
        assert!(aero.fit(&short).is_err());
    }

    #[test]
    fn stage_losses_decrease() {
        let ds = tiny_dataset();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 4;
        let mut aero = Aero::new(cfg).unwrap();
        aero.fit(&ds.train).unwrap();
        assert!(aero.stage1_history.epochs() >= 2);
        assert!(aero.stage1_history.improved(), "{:?}", aero.stage1_history);
        assert!(aero.stage2_history.epochs() >= 1);
    }

    #[test]
    fn warmup_matches_window_difference() {
        let cfg = AeroConfig::tiny();
        let aero = Aero::new(cfg.clone()).unwrap();
        assert_eq!(aero.warmup(), cfg.window - cfg.short_window);
    }

    #[test]
    fn ablation_variants_all_run() {
        let ds = tiny_dataset();
        let variants: Vec<AeroConfig> = vec![
            // 1i: w/o temporal
            AeroConfig { use_temporal: false, ..AeroConfig::tiny() },
            // 1ii: multivariate input
            AeroConfig { univariate_input: false, ..AeroConfig::tiny() },
            // 2i: w/o noise module
            AeroConfig { use_noise_module: false, ..AeroConfig::tiny() },
            // 2iii: static graph
            AeroConfig { graph_mode: GraphMode::StaticComplete, ..AeroConfig::tiny() },
            // 2iv: dynamic graph
            AeroConfig { graph_mode: GraphMode::DynamicEwma { beta: 0.9 }, ..AeroConfig::tiny() },
        ];
        for cfg in variants {
            let mut aero = Aero::new(cfg).unwrap();
            aero.fit(&ds.train).unwrap();
            let scores = aero.score(&ds.test).unwrap();
            assert!(!scores.has_non_finite());
        }
    }

    #[test]
    fn window_graph_is_square() {
        let ds = tiny_dataset();
        let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
        aero.fit(&ds.train).unwrap();
        let g = aero
            .window_graph(&ds.test, ds.test.len() - 1)
            .unwrap();
        assert_eq!(g.shape(), (ds.num_variates(), ds.num_variates()));
    }

    #[test]
    fn score_with_modes_degrades_per_star() {
        let ds = tiny_dataset();
        let n = ds.num_variates();
        let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
        aero.fit(&ds.train).unwrap();
        let full = aero.score(&ds.test).unwrap();

        // All-Full must be bitwise identical to the plain scoring path.
        let modes = vec![ScoreMode::Full; n];
        let same = aero.score_with_modes(&ds.test, &modes).unwrap();
        assert_eq!(full.as_slice(), same.as_slice());

        // Mixed: star 0 skipped, star 1 stage-1 only, the rest full.
        let mut modes = vec![ScoreMode::Full; n];
        modes[0] = ScoreMode::Skip;
        modes[1] = ScoreMode::Stage1;
        let mixed = aero.score_with_modes(&ds.test, &modes).unwrap();
        assert_eq!(mixed.shape(), full.shape());
        assert!(mixed.row(0).iter().all(|&s| s == 0.0), "skipped star scores 0");
        assert!(!mixed.has_non_finite());

        // All stars off Full skips the GCN and scores |E| / zeros only.
        let stage1_only = vec![ScoreMode::Stage1; n];
        let e_scores = aero.score_with_modes(&ds.test, &stage1_only).unwrap();
        assert!(!e_scores.has_non_finite());
        let (expected_e, _) = aero.stage_scores(&ds.test).unwrap();
        // stage_scores applies no smoothing; compare only when disabled.
        if aero.config().score_smoothing <= 1 {
            assert_eq!(e_scores.as_slice(), expected_e.as_slice());
        }

        // Mode-count mismatch is rejected.
        assert!(aero.score_with_modes(&ds.test, &modes[..1]).is_err());
    }

    #[test]
    fn stage_scores_cover_post_warmup_region() {
        let ds = tiny_dataset();
        let mut aero = Aero::new(AeroConfig::tiny()).unwrap();
        aero.fit(&ds.train).unwrap();
        let (e, r) = aero.stage_scores(&ds.test).unwrap();
        assert_eq!(e.shape(), r.shape());
        let warm = aero.warmup();
        // After warmup, at least some scores should be non-zero.
        let nonzero = (warm..ds.test.len()).any(|t| e.get(0, t) > 0.0);
        assert!(nonzero);
    }
}
