//! Supervision layer for per-variate work units.
//!
//! The online pipeline decomposes into many small, independent units of work:
//! one Stage-1 gradient shard, one star's scoring pass, one POT refit. Any of
//! them can panic (a bug tripped by pathological input), wedge (a deadline
//! blown on a loaded host), or fail with a typed error. Before this module a
//! single such failure unwound through the scoped pool and tore down the whole
//! stream; now each unit runs under a [`Supervisor`] that
//!
//! 1. catches panics (`catch_unwind`) and converts them to typed
//!    [`SupervisionError`]s,
//! 2. enforces an optional per-attempt **deadline budget**,
//! 3. retries failed attempts a bounded number of times with **deterministic
//!    exponential backoff** (no jitter — reproducibility beats thundering-herd
//!    avoidance in a single-process pipeline), and
//! 4. trips a per-unit **circuit breaker** after enough *consecutive*
//!    exhausted-retry failures, so a repeat offender is short-circuited
//!    instead of re-panicking every frame. `OnlineAero` maps an open breaker
//!    onto the existing [`StarStatus::Quarantined`](crate::online::StarStatus)
//!    escalation.
//!
//! The supervisor only adds control flow, never data flow: when every attempt
//! succeeds first try, results are bitwise identical to unsupervised
//! execution, which is what lets the crash-recovery suite assert bitwise
//! equality across kill/resume runs (see DESIGN.md §10).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use aero_parallel::panic_message;

use crate::detector::DetectorError;

/// Retry / deadline / circuit-breaker policy for a [`Supervisor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Per-attempt wall-clock budget. An attempt that finishes (even
    /// successfully) after the budget counts as a failure — its result is
    /// discarded, because a frame that arrives late is a frame the stream
    /// already moved past. `None` disables the check (and its `Instant`
    /// reads) entirely.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (so `max_retries = 2` means at most 3
    /// attempts per `run` call).
    pub max_retries: u32,
    /// Backoff before the first retry; doubled (times [`backoff_factor`
    /// (field)](Self::backoff_factor)) for each further retry.
    pub backoff_base: Duration,
    /// Multiplier applied to the backoff for each subsequent retry.
    pub backoff_factor: u32,
    /// Consecutive exhausted `run` failures on one unit that trip its
    /// circuit breaker. `u32::MAX` disables the breaker.
    pub circuit_threshold: u32,
    /// Half-open recovery: after this many short-circuited calls, an open
    /// breaker admits one unretried **probe** attempt. A successful probe
    /// closes the breaker ([`SupervisorStats::circuits_closed`]); a failed
    /// one re-arms the wait. `u32::MAX` (the default) disables half-open —
    /// an open breaker then stays open until [`Supervisor::reset`], which
    /// preserves the PR 3 behaviour the crash-recovery gates pin down.
    /// The probe schedule counts *calls*, not wall-clock, so it is exactly
    /// reproduced by a WAL replay.
    pub probe_after: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            deadline: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_factor: 2,
            circuit_threshold: 3,
            probe_after: u32::MAX,
        }
    }
}

impl SupervisorPolicy {
    /// Deterministic backoff before retry `retry` (0-based):
    /// `backoff_base * backoff_factor^retry`, saturating.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let factor = self
            .backoff_factor
            .max(1)
            .saturating_pow(retry.min(16))
            .min(1 << 16);
        self.backoff_base.saturating_mul(factor)
    }
}

/// Why a supervised unit of work was abandoned.
#[derive(Debug, Clone)]
pub enum SupervisionError<E> {
    /// Every attempt returned a typed task error; carries the last one.
    Task {
        /// Unit index the failure belongs to.
        unit: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// The final attempt's error.
        error: E,
    },
    /// Every attempt panicked; carries the last panic's message.
    Panic {
        /// Unit index the failure belongs to.
        unit: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// Stringified panic payload of the final attempt.
        message: String,
    },
    /// Every attempt blew its wall-clock budget.
    DeadlineExceeded {
        /// Unit index the failure belongs to.
        unit: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// Wall-clock time of the final attempt.
        elapsed: Duration,
        /// The configured per-attempt budget.
        budget: Duration,
    },
    /// The unit's circuit breaker is open; the task was not attempted.
    CircuitOpen {
        /// Unit index the failure belongs to.
        unit: usize,
    },
}

impl<E> SupervisionError<E> {
    /// The unit index this failure belongs to.
    pub fn unit(&self) -> usize {
        match self {
            Self::Task { unit, .. }
            | Self::Panic { unit, .. }
            | Self::DeadlineExceeded { unit, .. }
            | Self::CircuitOpen { unit } => *unit,
        }
    }
}

impl<E: fmt::Display> fmt::Display for SupervisionError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Task {
                unit,
                attempts,
                error,
            } => write!(f, "unit {unit} failed after {attempts} attempt(s): {error}"),
            Self::Panic {
                unit,
                attempts,
                message,
            } => write!(
                f,
                "unit {unit} panicked on all of {attempts} attempt(s): {message}"
            ),
            Self::DeadlineExceeded {
                unit,
                attempts,
                elapsed,
                budget,
            } => write!(
                f,
                "unit {unit} blew its {budget:?} deadline on all of {attempts} attempt(s) \
                 (last attempt took {elapsed:?})"
            ),
            Self::CircuitOpen { unit } => {
                write!(f, "unit {unit} short-circuited: circuit breaker is open")
            }
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for SupervisionError<E> {}

impl SupervisionError<DetectorError> {
    /// Flattens into the pipeline's error type: typed task errors pass
    /// through unchanged; panics, blown deadlines, and open breakers become
    /// [`DetectorError::Supervision`].
    pub fn into_detector_error(self) -> DetectorError {
        match self {
            Self::Task { error, .. } => error,
            other => DetectorError::Supervision(other.to_string()),
        }
    }
}

/// Cumulative counters across every `run` call on a [`Supervisor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Attempts that panicked (across all units, including retried ones).
    pub panics: usize,
    /// Attempts that finished past their deadline budget.
    pub deadline_misses: usize,
    /// Attempts that returned a typed task error.
    pub task_failures: usize,
    /// Retries performed (attempts beyond each call's first).
    pub retries: usize,
    /// Circuit breakers that transitioned closed → open.
    pub circuits_opened: usize,
    /// `run` calls rejected immediately because the breaker was open.
    pub short_circuits: usize,
    /// Half-open probe attempts admitted through an open breaker.
    pub probes: usize,
    /// Circuit breakers that transitioned open → closed via a successful
    /// half-open probe (manual [`Supervisor::reset`] calls are not counted).
    pub circuits_closed: usize,
}

/// Per-unit circuit-breaker state. All atomic so shards on different pool
/// threads can report failures concurrently.
#[derive(Debug, Default)]
struct UnitBreaker {
    /// Consecutive exhausted `run` failures; reset to 0 on any success.
    consecutive: AtomicU32,
    open: AtomicBool,
    /// Calls short-circuited since the breaker opened (or since the last
    /// failed probe); drives the half-open probe schedule.
    short_circuited: AtomicU32,
}

/// A plain-data snapshot of one unit's circuit breaker, used by the fleet
/// migration path to transplant a star's breaker history onto the
/// destination shard's supervisor (see `crate::migrate`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerState {
    /// Consecutive exhausted failures so far.
    pub consecutive: u32,
    /// Whether the breaker is open (unit short-circuited).
    pub open: bool,
    /// Short-circuited calls since opening (half-open probe schedule).
    pub short_circuited: u32,
}

/// Runs closures with panic capture, deadline budgets, bounded deterministic
/// retry, and per-unit circuit breaking. See the module docs for the model.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    units: Vec<UnitBreaker>,
    panics: AtomicUsize,
    deadline_misses: AtomicUsize,
    task_failures: AtomicUsize,
    retries: AtomicUsize,
    circuits_opened: AtomicUsize,
    short_circuits: AtomicUsize,
    probes: AtomicUsize,
    circuits_closed: AtomicUsize,
}

/// Outcome of a single attempt, before retry policy is applied.
enum Attempt<T, E> {
    Ok(T),
    Failed(SupervisionError<E>),
}

impl Supervisor {
    /// A supervisor with `units` independent circuit breakers.
    pub fn new(policy: SupervisorPolicy, units: usize) -> Self {
        let mut breakers = Vec::with_capacity(units);
        breakers.resize_with(units, UnitBreaker::default);
        Self {
            policy,
            units: breakers,
            panics: AtomicUsize::new(0),
            deadline_misses: AtomicUsize::new(0),
            task_failures: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            circuits_opened: AtomicUsize::new(0),
            short_circuits: AtomicUsize::new(0),
            probes: AtomicUsize::new(0),
            circuits_closed: AtomicUsize::new(0),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Number of supervised units (circuit breakers).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Whether `unit`'s circuit breaker is open.
    pub fn is_open(&self, unit: usize) -> bool {
        self.units
            .get(unit)
            .is_some_and(|u| u.open.load(Ordering::Relaxed))
    }

    /// Closes `unit`'s breaker and zeroes its consecutive-failure count
    /// (operator override / manual un-quarantine).
    pub fn reset(&self, unit: usize) {
        if let Some(u) = self.units.get(unit) {
            u.consecutive.store(0, Ordering::Relaxed);
            u.open.store(false, Ordering::Relaxed);
            u.short_circuited.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of one unit's breaker (all-default for out-of-range units).
    pub fn unit_state(&self, unit: usize) -> BreakerState {
        self.units.get(unit).map_or_else(BreakerState::default, |u| BreakerState {
            consecutive: u.consecutive.load(Ordering::Relaxed),
            open: u.open.load(Ordering::Relaxed),
            short_circuited: u.short_circuited.load(Ordering::Relaxed),
        })
    }

    /// Installs a previously exported breaker snapshot onto `unit`
    /// (no-op for out-of-range units). Together with
    /// [`install_stats`](Self::install_stats) this lets a rebuilt shard's
    /// supervisor continue exactly where the exported one stopped.
    pub fn install_unit_state(&self, unit: usize, state: BreakerState) {
        if let Some(u) = self.units.get(unit) {
            u.consecutive.store(state.consecutive, Ordering::Relaxed);
            u.open.store(state.open, Ordering::Relaxed);
            u.short_circuited.store(state.short_circuited, Ordering::Relaxed);
        }
    }

    /// Overwrites the cumulative counters with an exported snapshot
    /// (fleet-migration state transplant; see `crate::migrate`).
    pub fn install_stats(&self, stats: SupervisorStats) {
        self.panics.store(stats.panics, Ordering::Relaxed);
        self.deadline_misses.store(stats.deadline_misses, Ordering::Relaxed);
        self.task_failures.store(stats.task_failures, Ordering::Relaxed);
        self.retries.store(stats.retries, Ordering::Relaxed);
        self.circuits_opened.store(stats.circuits_opened, Ordering::Relaxed);
        self.short_circuits.store(stats.short_circuits, Ordering::Relaxed);
        self.probes.store(stats.probes, Ordering::Relaxed);
        self.circuits_closed.store(stats.circuits_closed, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            panics: self.panics.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            task_failures: self.task_failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            circuits_opened: self.circuits_opened.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            circuits_closed: self.circuits_closed.load(Ordering::Relaxed),
        }
    }

    /// Runs `task` under the full policy: breaker check, panic capture, the
    /// policy deadline, bounded retry with deterministic backoff.
    pub fn run<T, E>(
        &self,
        unit: usize,
        task: impl FnMut() -> Result<T, E>,
    ) -> Result<T, SupervisionError<E>> {
        self.run_with(unit, self.policy.deadline, true, task)
    }

    /// [`run`](Self::run) with an explicit deadline override and the option
    /// to bypass the unit's circuit breaker (`use_breaker = false`): the
    /// POT-refit unit retries forever-hopeful because scores may become
    /// refittable again, and whole-frame scoring has no meaningful
    /// per-attempt budget.
    pub fn run_with<T, E>(
        &self,
        unit: usize,
        deadline: Option<Duration>,
        use_breaker: bool,
        mut task: impl FnMut() -> Result<T, E>,
    ) -> Result<T, SupervisionError<E>> {
        let breaker = self.units.get(unit);
        if use_breaker {
            if let Some(b) = breaker {
                if b.open.load(Ordering::Relaxed) {
                    let waited = b.short_circuited.fetch_add(1, Ordering::Relaxed) + 1;
                    let probe_due =
                        self.policy.probe_after != u32::MAX && waited > self.policy.probe_after;
                    if !probe_due {
                        self.short_circuits.fetch_add(1, Ordering::Relaxed);
                        return Err(SupervisionError::CircuitOpen { unit });
                    }
                    // Half-open: admit exactly one unretried probe. Success
                    // closes the breaker; failure re-arms the wait.
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    return match self.attempt_once(unit, 1, deadline, &mut task) {
                        Attempt::Ok(value) => {
                            b.short_circuited.store(0, Ordering::Relaxed);
                            b.consecutive.store(0, Ordering::Relaxed);
                            b.open.store(false, Ordering::Relaxed);
                            self.circuits_closed.fetch_add(1, Ordering::Relaxed);
                            Ok(value)
                        }
                        Attempt::Failed(failure) => {
                            b.short_circuited.store(0, Ordering::Relaxed);
                            Err(failure)
                        }
                    };
                }
            }
        }
        let attempts_allowed = self.policy.max_retries.saturating_add(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt_once(unit, attempt, deadline, &mut task) {
                Attempt::Ok(value) => {
                    if let Some(b) = breaker {
                        b.consecutive.store(0, Ordering::Relaxed);
                    }
                    return Ok(value);
                }
                Attempt::Failed(failure) => {
                    if attempt < attempts_allowed {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.policy.backoff_delay(attempt - 1));
                        continue;
                    }
                    if use_breaker {
                        if let Some(b) = breaker {
                            let consecutive = b.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
                            if consecutive >= self.policy.circuit_threshold
                                && !b.open.swap(true, Ordering::Relaxed)
                            {
                                self.circuits_opened.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    return Err(failure);
                }
            }
        }
    }

    fn attempt_once<T, E>(
        &self,
        unit: usize,
        attempt: u32,
        deadline: Option<Duration>,
        task: &mut impl FnMut() -> Result<T, E>,
    ) -> Attempt<T, E> {
        let start = deadline.map(|_| Instant::now());
        let outcome = catch_unwind(AssertUnwindSafe(&mut *task));
        match outcome {
            Ok(Ok(value)) => {
                if let (Some(budget), Some(start)) = (deadline, start) {
                    let elapsed = start.elapsed();
                    if elapsed > budget {
                        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                        return Attempt::Failed(SupervisionError::DeadlineExceeded {
                            unit,
                            attempts: attempt,
                            elapsed,
                            budget,
                        });
                    }
                }
                Attempt::Ok(value)
            }
            Ok(Err(error)) => {
                self.task_failures.fetch_add(1, Ordering::Relaxed);
                Attempt::Failed(SupervisionError::Task {
                    unit,
                    attempts: attempt,
                    error,
                })
            }
            Err(payload) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                Attempt::Failed(SupervisionError::Panic {
                    unit,
                    attempts: attempt,
                    message: panic_message(payload),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32 as Counter;

    fn quiet_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            backoff_base: Duration::from_micros(10),
            ..SupervisorPolicy::default()
        }
    }

    #[test]
    fn success_passes_through() {
        let sup = Supervisor::new(quiet_policy(), 1);
        let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || Ok(7));
        assert_eq!(out.unwrap(), 7);
        assert_eq!(sup.stats(), SupervisorStats::default());
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        let sup = Supervisor::new(quiet_policy(), 1);
        let calls = Counter::new(0);
        let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            Ok(42)
        });
        assert_eq!(out.unwrap(), 42);
        let stats = sup.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.retries, 1);
        assert!(!sup.is_open(0), "success must not count toward the breaker");
    }

    #[test]
    fn persistent_panic_exhausts_retries_then_trips_breaker() {
        let policy = SupervisorPolicy {
            max_retries: 1,
            circuit_threshold: 2,
            ..quiet_policy()
        };
        let sup = Supervisor::new(policy, 2);
        for round in 0..2 {
            let out: Result<(), SupervisionError<DetectorError>> =
                sup.run(0, || panic!("always bad"));
            match out.unwrap_err() {
                SupervisionError::Panic {
                    unit,
                    attempts,
                    message,
                } => {
                    assert_eq!(unit, 0);
                    assert_eq!(attempts, 2);
                    assert_eq!(message, "always bad");
                }
                other => panic!("unexpected: {other}"),
            }
            assert_eq!(sup.is_open(0), round == 1);
        }
        // Third call short-circuits without running the task.
        let out: Result<(), SupervisionError<DetectorError>> =
            sup.run(0, || panic!("must not run"));
        assert!(matches!(
            out.unwrap_err(),
            SupervisionError::CircuitOpen { unit: 0 }
        ));
        let stats = sup.stats();
        assert_eq!(stats.panics, 4);
        assert_eq!(stats.circuits_opened, 1);
        assert_eq!(stats.short_circuits, 1);
        assert!(!sup.is_open(1), "breakers are per-unit");
        sup.reset(0);
        assert!(!sup.is_open(0));
        let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || Ok(9));
        assert_eq!(out.unwrap(), 9);
    }

    #[test]
    fn task_errors_carry_the_typed_error() {
        let sup = Supervisor::new(quiet_policy(), 1);
        let out: Result<(), SupervisionError<DetectorError>> =
            sup.run(0, || Err(DetectorError::Invalid("bad width".into())));
        let err = out.unwrap_err();
        assert_eq!(err.unit(), 0);
        match err.into_detector_error() {
            DetectorError::Invalid(msg) => assert_eq!(msg, "bad width"),
            other => panic!("unexpected: {other}"),
        }
        assert_eq!(sup.stats().task_failures, 3, "default = 2 retries");
    }

    #[test]
    fn blown_deadline_discards_the_result() {
        let policy = SupervisorPolicy {
            deadline: Some(Duration::from_micros(1)),
            max_retries: 0,
            ..quiet_policy()
        };
        let sup = Supervisor::new(policy, 1);
        let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || {
            std::thread::sleep(Duration::from_millis(5));
            Ok(1)
        });
        match out.unwrap_err() {
            SupervisionError::DeadlineExceeded {
                elapsed, budget, ..
            } => {
                assert!(elapsed >= budget);
            }
            other => panic!("unexpected: {other}"),
        }
        assert_eq!(sup.stats().deadline_misses, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let policy = SupervisorPolicy {
            backoff_base: Duration::from_millis(3),
            backoff_factor: 2,
            ..SupervisorPolicy::default()
        };
        assert_eq!(policy.backoff_delay(0), Duration::from_millis(3));
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(6));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(12));
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(24));
    }

    #[test]
    fn half_open_probe_recovers_breaker() {
        let policy = SupervisorPolicy {
            max_retries: 0,
            circuit_threshold: 1,
            probe_after: 2,
            ..quiet_policy()
        };
        let sup = Supervisor::new(policy, 1);
        let out: Result<(), SupervisionError<DetectorError>> = sup.run(0, || panic!("down"));
        assert!(matches!(out.unwrap_err(), SupervisionError::Panic { .. }));
        assert!(sup.is_open(0));

        // Two calls short-circuit while the breaker waits out `probe_after`.
        for _ in 0..2 {
            let out: Result<(), SupervisionError<DetectorError>> =
                sup.run(0, || panic!("must not run"));
            assert!(matches!(
                out.unwrap_err(),
                SupervisionError::CircuitOpen { unit: 0 }
            ));
        }
        assert_eq!(sup.stats().short_circuits, 2);

        // Third call is the probe; it still fails, so the breaker re-arms.
        let out: Result<(), SupervisionError<DetectorError>> = sup.run(0, || panic!("still down"));
        match out.unwrap_err() {
            SupervisionError::Panic { attempts, .. } => {
                assert_eq!(attempts, 1, "probes are never retried");
            }
            other => panic!("unexpected: {other}"),
        }
        assert!(sup.is_open(0), "failed probe keeps the breaker open");
        assert_eq!(sup.stats().probes, 1);
        assert_eq!(sup.stats().circuits_closed, 0);

        // Re-armed: two more short-circuits, then a probe that succeeds and
        // closes the breaker.
        for _ in 0..2 {
            let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || Ok(1));
            assert!(matches!(
                out.unwrap_err(),
                SupervisionError::CircuitOpen { unit: 0 }
            ));
        }
        let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || Ok(5));
        assert_eq!(out.unwrap(), 5, "successful probe returns its value");
        assert!(!sup.is_open(0), "successful probe closes the breaker");
        let stats = sup.stats();
        assert_eq!(stats.probes, 2);
        assert_eq!(stats.circuits_closed, 1);
        assert_eq!(stats.short_circuits, 4);
        assert_eq!(stats.retries, 0);

        // Breaker is fully closed again: normal calls run the task.
        let out: Result<u32, SupervisionError<DetectorError>> = sup.run(0, || Ok(6));
        assert_eq!(out.unwrap(), 6);
    }

    #[test]
    fn stats_are_deterministic_across_thread_counts() {
        // The same failing workload, fanned out over the pool at different
        // thread counts, must land on identical cumulative stats — the
        // counters are pure functions of the work, not of the schedule.
        let run_workload = |threads: usize| {
            let saved = aero_parallel::max_threads();
            aero_parallel::set_max_threads(threads);
            let policy = SupervisorPolicy {
                max_retries: 1,
                circuit_threshold: u32::MAX,
                ..quiet_policy()
            };
            let sup = Supervisor::new(policy, 8);
            aero_parallel::parallel_map_range(8, |unit| {
                let out: Result<u32, SupervisionError<DetectorError>> = sup.run(unit, || {
                    if unit % 2 == 0 {
                        Err(DetectorError::Invalid(format!("unit {unit}")))
                    } else {
                        Ok(unit as u32)
                    }
                });
                out.is_ok()
            });
            let stats = sup.stats();
            aero_parallel::set_max_threads(saved);
            stats
        };
        let serial = run_workload(1);
        let parallel = run_workload(4);
        assert_eq!(serial, parallel);
        // 4 even units × 2 attempts each (1 retry), odd units succeed.
        assert_eq!(serial.task_failures, 8);
        assert_eq!(serial.retries, 4);
        assert_eq!(serial.panics, 0);
    }

    #[test]
    fn backoff_schedule_is_deterministic_across_thread_counts() {
        let policy = SupervisorPolicy {
            backoff_base: Duration::from_millis(2),
            backoff_factor: 3,
            ..SupervisorPolicy::default()
        };
        let expected: Vec<Duration> = (0..6).map(|r| policy.backoff_delay(r)).collect();
        for threads in [1usize, 4] {
            let saved = aero_parallel::max_threads();
            aero_parallel::set_max_threads(threads);
            let schedules = aero_parallel::parallel_map_range(4, |_| {
                (0..6).map(|r| policy.backoff_delay(r)).collect::<Vec<_>>()
            });
            aero_parallel::set_max_threads(saved);
            for schedule in schedules {
                assert_eq!(schedule, expected);
            }
        }
        assert_eq!(expected[0], Duration::from_millis(2));
        assert_eq!(expected[1], Duration::from_millis(6));
        assert_eq!(expected[2], Duration::from_millis(18));
    }

    #[test]
    fn run_with_can_bypass_the_breaker() {
        let policy = SupervisorPolicy {
            max_retries: 0,
            circuit_threshold: 1,
            ..quiet_policy()
        };
        let sup = Supervisor::new(policy, 1);
        for _ in 0..3 {
            let out: Result<(), SupervisionError<DetectorError>> =
                sup.run_with(0, None, false, || {
                    Err(DetectorError::Invalid("still failing".into()))
                });
            assert!(matches!(out.unwrap_err(), SupervisionError::Task { .. }));
        }
        assert!(!sup.is_open(0), "bypassed breaker never opens");
        assert_eq!(sup.stats().short_circuits, 0);
    }
}
