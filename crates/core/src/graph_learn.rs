//! Window-wise graph structure learning (paper §III-D, Eq. 12–13) and the
//! static / dynamic alternatives used by the Table IV ablations.

use aero_nn::normalize_adjacency_thresholded;
use aero_tensor::Matrix;
use aero_timeseries::stats::cosine_similarity;

use crate::config::GraphMode;

/// Builds the window-wise adjacency `A_t` from the temporal module's error
/// matrix `E_t ∈ R^{N×ω}` (Eq. 12–13): `A_t^{mn} = cos(E_t^{(m)}, E_t^{(n)})`.
pub fn window_adjacency(errors: &Matrix) -> Matrix {
    let n = errors.rows();
    let mut adj = Matrix::zeros(n, n);
    for m in 0..n {
        adj.set(m, m, 1.0);
        for k in (m + 1)..n {
            let sim = cosine_similarity(errors.row(m), errors.row(k));
            adj.set(m, k, sim);
            adj.set(k, m, sim);
        }
    }
    adj
}

/// Stateful graph builder covering the full model and both graph ablations.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    mode: GraphMode,
    /// Minimum edge weight kept during normalization.
    edge_threshold: f32,
    /// EWMA state for the dynamic mode.
    state: Option<Matrix>,
}

impl GraphBuilder {
    /// Creates a builder for the given mode (no edge thresholding).
    pub fn new(mode: GraphMode) -> Self {
        Self { mode, edge_threshold: 0.0, state: None }
    }

    /// Creates a builder that drops edges below `edge_threshold`.
    pub fn with_edge_threshold(mode: GraphMode, edge_threshold: f32) -> Self {
        Self { mode, edge_threshold, state: None }
    }

    /// Resets dynamic state (call between training and scoring passes).
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// True when the adjacency depends on previous windows (EWMA state).
    /// Stateful builders must see windows sequentially; stateless modes can
    /// score windows in parallel with per-window clones.
    pub fn is_stateful(&self) -> bool {
        matches!(self.mode, GraphMode::DynamicEwma { .. })
    }

    /// Raw adjacency (self-loops still present) for the current window.
    pub fn adjacency(&mut self, errors: &Matrix) -> Matrix {
        match self.mode {
            GraphMode::WindowWise => window_adjacency(errors),
            GraphMode::StaticComplete => Matrix::ones(errors.rows(), errors.rows()),
            GraphMode::DynamicEwma { beta } => {
                let current = window_adjacency(errors);
                let next = match self.state.take() {
                    Some(prev) if prev.shape() == current.shape() => {
                        let mut m = current.clone();
                        for (o, p) in m.as_mut_slice().iter_mut().zip(prev.as_slice()) {
                            *o = beta * p + (1.0 - beta) * *o;
                        }
                        m
                    }
                    _ => current,
                };
                self.state = Some(next.clone());
                next
            }
        }
    }

    /// Propagation matrix `D̃^{-1}·Ã` with self-loops removed (Eq. 14's
    /// message-passing operator).
    pub fn propagation(&mut self, errors: &Matrix) -> Matrix {
        let threshold = match self.mode {
            // The static complete graph ablation keeps every edge at weight
            // 1, so thresholding would be a no-op anyway; skip it for
            // clarity.
            GraphMode::StaticComplete => 0.0,
            _ => self.edge_threshold,
        };
        normalize_adjacency_thresholded(&self.adjacency(errors), threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric_with_unit_diagonal() {
        let e = Matrix::from_fn(4, 6, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let a = window_adjacency(&e);
        for i in 0..4 {
            assert!((a.get(i, i) - 1.0).abs() < 1e-6);
            for j in 0..4 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn correlated_noise_rows_link_strongly() {
        // Variates 0 and 1 share an identical error burst; 2 is independent.
        let mut e = Matrix::zeros(3, 10);
        for t in 3..7 {
            e.set(0, t, 2.0);
            e.set(1, t, 2.0);
            e.set(2, 9 - t, if t % 2 == 0 { 1.0 } else { -1.0 });
        }
        let a = window_adjacency(&e);
        assert!(a.get(0, 1) > 0.99, "noise pair similarity = {}", a.get(0, 1));
        assert!(a.get(0, 2).abs() < 0.7, "independent similarity = {}", a.get(0, 2));
    }

    #[test]
    fn static_mode_ignores_errors() {
        let mut b = GraphBuilder::new(GraphMode::StaticComplete);
        let e1 = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let e2 = Matrix::zeros(3, 4);
        assert_eq!(b.adjacency(&e1), Matrix::ones(3, 3));
        assert_eq!(b.adjacency(&e2), Matrix::ones(3, 3));
    }

    #[test]
    fn dynamic_mode_smooths_over_windows() {
        let mut b = GraphBuilder::new(GraphMode::DynamicEwma { beta: 0.9 });
        // First window: strong 0-1 similarity.
        let mut e1 = Matrix::zeros(2, 4);
        e1.set(0, 0, 1.0);
        e1.set(1, 0, 1.0);
        let a1 = b.adjacency(&e1);
        assert!(a1.get(0, 1) > 0.99);
        // Second window: orthogonal errors → instant similarity 0, but the
        // EWMA keeps most of the old edge.
        let mut e2 = Matrix::zeros(2, 4);
        e2.set(0, 0, 1.0);
        e2.set(1, 1, 1.0);
        let a2 = b.adjacency(&e2);
        assert!(a2.get(0, 1) > 0.8, "EWMA edge = {}", a2.get(0, 1));
        // Window-wise mode would have dropped straight to ~0.
        let direct = window_adjacency(&e2);
        assert!(direct.get(0, 1).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_dynamic_state() {
        let mut b = GraphBuilder::new(GraphMode::DynamicEwma { beta: 0.9 });
        let mut e1 = Matrix::zeros(2, 4);
        e1.set(0, 0, 1.0);
        e1.set(1, 0, 1.0);
        b.adjacency(&e1);
        b.reset();
        let mut e2 = Matrix::zeros(2, 4);
        e2.set(0, 0, 1.0);
        e2.set(1, 1, 1.0);
        let a = b.adjacency(&e2);
        assert!(a.get(0, 1).abs() < 1e-6);
    }

    #[test]
    fn propagation_has_no_self_loops() {
        let mut b = GraphBuilder::new(GraphMode::WindowWise);
        let e = Matrix::from_fn(3, 5, |r, c| ((r + 1) * (c + 1)) as f32 * 0.1);
        let p = b.propagation(&e);
        for i in 0..3 {
            assert_eq!(p.get(i, i), 0.0);
        }
    }
}
