//! Live shard migration: WAL-fenced two-phase star handoff (DESIGN.md §16).
//!
//! PR 6's measured-cost LPT plans were applied only at fleet build time, so
//! a shard that turns hot mid-night stays hot until dawn. This module gives
//! [`crate::fleet::FleetCoordinator`] the machinery to apply a plan *live*
//! without ever violating the system's core invariant — every verdict
//! stream bitwise identical to an uninterrupted run, even when the process
//! is killed at any instant mid-migration:
//!
//! 1. **Fence** — each affected shard drains its in-flight queue under a
//!    fence (no shedding, ladder frozen: an administrative drain is not
//!    load), then its per-star state (window lanes, ladder rung, suspect
//!    countdown, refit score history, supervisor/breaker counters, POT
//!    threshold) is exported into a [`ShardSnapshot`].
//! 2. **Begin** — the snapshots, the plan, and the fence point are appended
//!    to `wal/fleet-plan/migrations.log` as one checksummed
//!    [`MigrationRecord::Begin`] frame.
//! 3. **Commit** — destination shards are rebuilt with the new membership,
//!    snapshots are installed (a moved star's window column is aligned to
//!    its destination's timestamps by [`align_star_lane`]), new
//!    epoch-versioned WAL directories are created, a
//!    [`MigrationRecord::Commit`] frame lands in the log, a commit marker
//!    lands in every new shard directory, and the coordinator flips routing
//!    atomically in memory.
//!
//! Recovery reads the log's longest valid prefix: a trailing `Begin`
//! without its `Commit` is **rolled back** (partial epoch directories
//! deleted, log truncated — the migration re-executes deterministically on
//! the next service poll), while a committed migration is **rolled
//! forward** from the recorded snapshots. Either way the night converges to
//! exactly one outcome, derived from the WAL alone.

// Migration runs unattended mid-night; a stray `unwrap` is a latent crash,
// so the lint gate forbids them outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::Write;
use std::path::{Path, PathBuf};

use aero_evt::{FitMethod, PotThreshold};

use crate::detector::{DetectorError, DetectorResult};
use crate::online::{HealthReport, StarStatus};
use crate::overload::{LadderLevel, OverloadCounters, TenantRollup};
use crate::persist::Fnv64;
use crate::supervisor::{BreakerState, SupervisorStats};
use crate::wal::WalIdentity;

/// Phase boundaries at which the chaos harness kills the coordinator
/// mid-migration (see `FleetConfig::chaos_migration_kill`). Each names the
/// instant *before* the listed action runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKillPoint {
    /// Before any affected shard is fenced: nothing drained, nothing logged.
    PreFence,
    /// After the fence drain + snapshot export, before the `Begin` record
    /// is appended: snapshots exist only in the dying process's memory.
    PostFence,
    /// After `Begin` is durable and the new shards (and their epoch
    /// directories) are built, before the `Commit` record: recovery must
    /// roll this back.
    PreCommit,
    /// After `Commit` is durable, before the in-memory routing flip:
    /// recovery must roll this forward.
    PostCommit,
}

/// One star's portable detector-side state: its window column, imputation
/// flags, data-quality status, refit score history, circuit breaker, and
/// (when the fleet runs per-star adapter heads) its trained adapter delta.
#[derive(Debug, Clone, PartialEq)]
pub struct StarLane {
    /// The star's column of the rolling window, oldest sample first
    /// (parallel to [`DetectorState::timestamps`]).
    pub window: Vec<f32>,
    /// Which window samples were imputed/synthesised.
    pub imputed: Vec<bool>,
    /// Data-quality status at the fence.
    pub status: StarStatus,
    /// The star's lane of the POT refit history (most recent last).
    pub score_history: Vec<f32>,
    /// The star's supervision circuit breaker.
    pub breaker: BreakerState,
    /// The star's adapter head at the fence (`None` when the shard runs
    /// without adapters). Online SGD state travels with the star, so a
    /// migrated star keeps learning where it left off — kilobytes, not a
    /// model. Snapshots with no adapters anywhere encode with the original
    /// [`TAG_BEGIN`], keeping pre-adapter logs and byte streams identical.
    pub adapter: Option<crate::adapter::StarAdapter>,
}

/// The detector half of a [`ShardSnapshot`]: shard-wide clocks plus one
/// [`StarLane`] per member star, in the shard's local variate order.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorState {
    /// Window timestamps, oldest first.
    pub timestamps: Vec<f64>,
    /// EWMA cadence estimate.
    pub cadence: f64,
    /// Frames pushed so far (including dropped ones).
    pub frames_seen: u64,
    /// Frames scored so far (drives the refit schedule).
    pub scored_frames: u64,
    /// The calibrated (or most recently refit) POT threshold.
    pub threshold: PotThreshold,
    /// Cumulative health counters at the fence.
    pub health: HealthReport,
    /// Supervisor counter totals at the fence.
    pub sup_stats: SupervisorStats,
    /// The POT-refit unit's breaker (unit `n`).
    pub refit_breaker: BreakerState,
    /// The whole-frame unit's breaker (unit `n + 1`).
    pub frame_breaker: BreakerState,
    /// Per-star lanes, local variate order.
    pub stars: Vec<StarLane>,
}

/// One star's governor-side state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorStarState {
    /// Degradation-ladder rung.
    pub level: LadderLevel,
    /// Service polls left on the star's suspect hold (0 = not suspect).
    /// Stored relative to the shard's poll clock so it survives a transplant
    /// onto a destination with a different clock.
    pub suspect_remaining: u64,
    /// Last emitted score (hold-last memory).
    pub last_score: f32,
    /// Last emitted anomaly flag (hold-last memory).
    pub last_anomalous: bool,
}

/// The governor half of a [`ShardSnapshot`]: poll clocks, ladder streaks,
/// tenant buckets, and one [`GovernorStarState`] per member star.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorState {
    /// Frames serviced so far.
    pub polls: u64,
    /// Service polls since the last accepted offer (WAL meta seed).
    pub polls_since_offer: u32,
    /// Consecutive polls above the high watermark.
    pub pressure_streak: u64,
    /// Consecutive polls at or below the low watermark.
    pub headroom_streak: u64,
    /// Per-tenant token buckets, ascending by tenant id.
    pub tenant_buckets: Vec<(u32, u32)>,
    /// Per-star lanes, local variate order.
    pub stars: Vec<GovernorStarState>,
}

/// Everything one fenced shard exports: membership plus both state halves.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: u32,
    /// Member stars at the fence (global variate indices, ascending).
    pub members: Vec<u32>,
    /// Detector-side state.
    pub detector: DetectorState,
    /// Governor-side state.
    pub governor: GovernorState,
}

/// The `Begin` half of a two-phase migration: the plan being applied, the
/// fence point, and a [`ShardSnapshot`] for every shard whose membership
/// changes. Written before any destination state exists, so recovery can
/// always roll back to it — or re-derive the whole handoff from it.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationBegin {
    /// The rebalance-plan epoch being applied (1-based).
    pub epoch: u64,
    /// Full-sky frames the coordinator had routed at the fence.
    pub frames_routed: u64,
    /// The planned star→shard vector.
    pub shard_of: Vec<u32>,
    /// Snapshots of every affected shard, ascending by shard index.
    pub affected: Vec<ShardSnapshot>,
}

/// The `Commit` half: the epoch is now live. Anything between `Begin` and
/// `Commit` on disk is garbage to be rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCommit {
    /// The committed plan epoch.
    pub epoch: u64,
}

/// One record of the migration log.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationRecord {
    /// Fence taken, snapshots durable, destinations not yet live.
    Begin(MigrationBegin),
    /// The epoch's handoff is complete.
    Commit(MigrationCommit),
}

/// Record-type tags on the wire. `TAG_BEGIN_ADAPTERS` frames the same
/// `Begin` payload with one adapter slot appended per star lane; the writer
/// emits it only when some lane actually carries a head, so adapter-free
/// fleets keep producing (and re-reading) byte-identical `TAG_BEGIN`
/// records, and logs written before adapters existed decode unchanged.
const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_BEGIN_ADAPTERS: u8 = 3;
/// Refuses absurd lengths before allocating (matches the WAL's cap).
const MAX_RECORD_BYTES: u32 = 1 << 26;

// ---------------------------------------------------------------------------
// Binary codec. Little-endian throughout; floats as raw bits so NaN patterns
// survive; every record framed as [len:u32][payload][fnv64(payload):u64].
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Cursor over a decoded payload; every read is bounds-checked so a
/// bit-flipped length can't panic the recovery path.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> DetectorResult<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(DetectorError::Corrupt(
                "migration record truncated mid-field".into(),
            ));
        };
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> DetectorResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DetectorResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> DetectorResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> DetectorResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> DetectorResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length prefix for a vector of `elem_bytes`-wide elements, validated
    /// against the remaining payload so a corrupt count can't OOM.
    fn len(&mut self, elem_bytes: usize) -> DetectorResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes.max(1)) > self.bytes.len() - self.at {
            return Err(DetectorError::Corrupt(format!(
                "migration record count {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }

    /// Bytes left unread in the payload.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn done(&self) -> DetectorResult<()> {
        if self.at != self.bytes.len() {
            return Err(DetectorError::Corrupt(format!(
                "{} trailing bytes after migration record",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

fn put_breaker(buf: &mut Vec<u8>, b: BreakerState) {
    put_u32(buf, b.consecutive);
    put_u8(buf, u8::from(b.open));
    put_u32(buf, b.short_circuited);
}

fn get_breaker(r: &mut Reader<'_>) -> DetectorResult<BreakerState> {
    Ok(BreakerState {
        consecutive: r.u32()?,
        open: r.u8()? != 0,
        short_circuited: r.u32()?,
    })
}

fn put_threshold(buf: &mut Vec<u8>, t: &PotThreshold) {
    put_f64(buf, t.threshold);
    put_f64(buf, t.initial);
    put_u64(buf, t.peaks as u64);
    put_f64(buf, t.gamma);
    put_f64(buf, t.sigma);
    put_u8(buf, match t.method {
        FitMethod::GrimshawMle => 0,
        FitMethod::MethodOfMoments => 1,
    });
}

fn get_threshold(r: &mut Reader<'_>) -> DetectorResult<PotThreshold> {
    Ok(PotThreshold {
        threshold: r.f64()?,
        initial: r.f64()?,
        peaks: r.u64()? as usize,
        gamma: r.f64()?,
        sigma: r.f64()?,
        method: match r.u8()? {
            0 => FitMethod::GrimshawMle,
            1 => FitMethod::MethodOfMoments,
            other => {
                return Err(DetectorError::Corrupt(format!(
                    "unknown POT fit method tag {other}"
                )))
            }
        },
    })
}

fn put_health(buf: &mut Vec<u8>, h: &HealthReport) {
    for v in [
        h.frames_accepted,
        h.frames_dropped_stale,
        h.frames_dropped_duplicate,
        h.frames_gap_filled,
        h.gap_fill_truncations,
        h.values_imputed,
        h.scores_suppressed,
        h.stars_degraded,
        h.stars_quarantined,
        h.quarantine_events,
        h.threshold_refits,
        h.threshold_refit_failures,
        h.shard_panics,
        h.shard_deadline_misses,
        h.shard_failures,
        h.frames_suppressed,
        h.circuit_breaker_trips,
    ] {
        put_u64(buf, v as u64);
    }
    let o = &h.overload;
    for v in [
        o.queue_depth,
        o.queue_peak,
        o.frames_rejected,
        o.star_sheds,
        o.ladder_steps_down,
        o.ladder_steps_up,
        o.stars_below_full,
        o.fallback_scores,
        o.held_verdicts,
        o.frames_behind,
    ] {
        put_u64(buf, v as u64);
    }
    put_u32(buf, h.tenants.lanes().len() as u32);
    for lane in h.tenants.lanes() {
        put_u32(buf, lane.tenant);
        for v in [
            lane.offered,
            lane.admitted,
            lane.shed,
            lane.rejected_backpressure,
            lane.rejected_quota,
        ] {
            put_u64(buf, v as u64);
        }
    }
}

// Field-by-field assignment mirrors `put_health`'s wire order exactly;
// a struct initializer would hide the pairing the codec depends on.
#[allow(clippy::field_reassign_with_default)]
fn get_health(r: &mut Reader<'_>) -> DetectorResult<HealthReport> {
    let mut h = HealthReport::default();
    h.frames_accepted = r.u64()? as usize;
    h.frames_dropped_stale = r.u64()? as usize;
    h.frames_dropped_duplicate = r.u64()? as usize;
    h.frames_gap_filled = r.u64()? as usize;
    h.gap_fill_truncations = r.u64()? as usize;
    h.values_imputed = r.u64()? as usize;
    h.scores_suppressed = r.u64()? as usize;
    h.stars_degraded = r.u64()? as usize;
    h.stars_quarantined = r.u64()? as usize;
    h.quarantine_events = r.u64()? as usize;
    h.threshold_refits = r.u64()? as usize;
    h.threshold_refit_failures = r.u64()? as usize;
    h.shard_panics = r.u64()? as usize;
    h.shard_deadline_misses = r.u64()? as usize;
    h.shard_failures = r.u64()? as usize;
    h.frames_suppressed = r.u64()? as usize;
    h.circuit_breaker_trips = r.u64()? as usize;
    let mut o = OverloadCounters::default();
    o.queue_depth = r.u64()? as usize;
    o.queue_peak = r.u64()? as usize;
    o.frames_rejected = r.u64()? as usize;
    o.star_sheds = r.u64()? as usize;
    o.ladder_steps_down = r.u64()? as usize;
    o.ladder_steps_up = r.u64()? as usize;
    o.stars_below_full = r.u64()? as usize;
    o.fallback_scores = r.u64()? as usize;
    o.held_verdicts = r.u64()? as usize;
    o.frames_behind = r.u64()? as usize;
    h.overload = o;
    let mut tenants = TenantRollup::default();
    let lanes = r.len(44)?;
    for _ in 0..lanes {
        let tenant = r.u32()?;
        let lane = tenants.lane_mut(tenant);
        lane.offered = r.u64()? as usize;
        lane.admitted = r.u64()? as usize;
        lane.shed = r.u64()? as usize;
        lane.rejected_backpressure = r.u64()? as usize;
        lane.rejected_quota = r.u64()? as usize;
    }
    h.tenants = tenants;
    Ok(h)
}

fn put_sup_stats(buf: &mut Vec<u8>, s: SupervisorStats) {
    for v in [
        s.panics,
        s.deadline_misses,
        s.task_failures,
        s.retries,
        s.circuits_opened,
        s.short_circuits,
        s.probes,
        s.circuits_closed,
    ] {
        put_u64(buf, v as u64);
    }
}

fn get_sup_stats(r: &mut Reader<'_>) -> DetectorResult<SupervisorStats> {
    Ok(SupervisorStats {
        panics: r.u64()? as usize,
        deadline_misses: r.u64()? as usize,
        task_failures: r.u64()? as usize,
        retries: r.u64()? as usize,
        circuits_opened: r.u64()? as usize,
        short_circuits: r.u64()? as usize,
        probes: r.u64()? as usize,
        circuits_closed: r.u64()? as usize,
    })
}

/// One adapter slot: presence byte, then shape + weights + norm stats.
fn put_adapter(buf: &mut Vec<u8>, adapter: Option<&crate::adapter::StarAdapter>) {
    let Some(a) = adapter else {
        put_u8(buf, 0);
        return;
    };
    put_u8(buf, 1);
    put_u32(buf, a.omega() as u32);
    put_u32(buf, a.rank() as u32);
    for &v in a.p.iter().chain(&a.q) {
        put_f32(buf, v);
    }
    for v in [a.bias, a.mean, a.var] {
        put_f32(buf, v);
    }
    put_u64(buf, a.updates());
}

fn get_adapter(r: &mut Reader<'_>) -> DetectorResult<Option<crate::adapter::StarAdapter>> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let omega = r.u32()? as usize;
            let rank = r.u32()? as usize;
            // Bound the implied weight count against the remaining payload
            // before allocating, like every other length in this codec.
            let weights = omega.saturating_mul(rank).saturating_mul(2);
            if weights.saturating_mul(4) > r.remaining() {
                return Err(DetectorError::Corrupt(format!(
                    "adapter shape ω={omega} r={rank} exceeds remaining payload"
                )));
            }
            let mut p = Vec::with_capacity(omega * rank);
            for _ in 0..omega * rank {
                p.push(r.f32()?);
            }
            let mut q = Vec::with_capacity(rank * omega);
            for _ in 0..rank * omega {
                q.push(r.f32()?);
            }
            let bias = r.f32()?;
            let mean = r.f32()?;
            let var = r.f32()?;
            let updates = r.u64()?;
            crate::adapter::StarAdapter::from_parts(omega, rank, p, q, bias, mean, var, updates)
                .map(Some)
                .map_err(|e| DetectorError::Corrupt(format!("migrated adapter delta: {e}")))
        }
        other => Err(DetectorError::Corrupt(format!(
            "unknown adapter presence tag {other}"
        ))),
    }
}

fn put_detector(buf: &mut Vec<u8>, d: &DetectorState, with_adapters: bool) {
    put_u32(buf, d.timestamps.len() as u32);
    for &ts in &d.timestamps {
        put_f64(buf, ts);
    }
    put_f64(buf, d.cadence);
    put_u64(buf, d.frames_seen);
    put_u64(buf, d.scored_frames);
    put_threshold(buf, &d.threshold);
    put_health(buf, &d.health);
    put_sup_stats(buf, d.sup_stats);
    put_breaker(buf, d.refit_breaker);
    put_breaker(buf, d.frame_breaker);
    put_u32(buf, d.stars.len() as u32);
    for lane in &d.stars {
        put_u32(buf, lane.window.len() as u32);
        for &v in &lane.window {
            put_f32(buf, v);
        }
        put_u32(buf, lane.imputed.len() as u32);
        for &v in &lane.imputed {
            put_u8(buf, u8::from(v));
        }
        put_u8(buf, match lane.status {
            StarStatus::Nominal => 0,
            StarStatus::Degraded => 1,
            StarStatus::Quarantined => 2,
        });
        put_u32(buf, lane.score_history.len() as u32);
        for &v in &lane.score_history {
            put_f32(buf, v);
        }
        put_breaker(buf, lane.breaker);
        if with_adapters {
            put_adapter(buf, lane.adapter.as_ref());
        }
    }
}

fn get_star_status(r: &mut Reader<'_>) -> DetectorResult<StarStatus> {
    match r.u8()? {
        0 => Ok(StarStatus::Nominal),
        1 => Ok(StarStatus::Degraded),
        2 => Ok(StarStatus::Quarantined),
        other => Err(DetectorError::Corrupt(format!(
            "unknown star status tag {other}"
        ))),
    }
}

fn get_detector(r: &mut Reader<'_>, with_adapters: bool) -> DetectorResult<DetectorState> {
    let ts_len = r.len(8)?;
    let mut timestamps = Vec::with_capacity(ts_len);
    for _ in 0..ts_len {
        timestamps.push(r.f64()?);
    }
    let cadence = r.f64()?;
    let frames_seen = r.u64()?;
    let scored_frames = r.u64()?;
    let threshold = get_threshold(r)?;
    let health = get_health(r)?;
    let sup_stats = get_sup_stats(r)?;
    let refit_breaker = get_breaker(r)?;
    let frame_breaker = get_breaker(r)?;
    let n = r.len(1)?;
    let mut stars = Vec::with_capacity(n);
    for _ in 0..n {
        let w = r.len(4)?;
        let mut window = Vec::with_capacity(w);
        for _ in 0..w {
            window.push(r.f32()?);
        }
        let im = r.len(1)?;
        let mut imputed = Vec::with_capacity(im);
        for _ in 0..im {
            imputed.push(r.u8()? != 0);
        }
        let status = get_star_status(r)?;
        let hl = r.len(4)?;
        let mut score_history = Vec::with_capacity(hl);
        for _ in 0..hl {
            score_history.push(r.f32()?);
        }
        let breaker = get_breaker(r)?;
        let adapter = if with_adapters { get_adapter(r)? } else { None };
        stars.push(StarLane {
            window,
            imputed,
            status,
            score_history,
            breaker,
            adapter,
        });
    }
    Ok(DetectorState {
        timestamps,
        cadence,
        frames_seen,
        scored_frames,
        threshold,
        health,
        sup_stats,
        refit_breaker,
        frame_breaker,
        stars,
    })
}

fn put_governor(buf: &mut Vec<u8>, g: &GovernorState) {
    put_u64(buf, g.polls);
    put_u32(buf, g.polls_since_offer);
    put_u64(buf, g.pressure_streak);
    put_u64(buf, g.headroom_streak);
    put_u32(buf, g.tenant_buckets.len() as u32);
    for &(t, b) in &g.tenant_buckets {
        put_u32(buf, t);
        put_u32(buf, b);
    }
    put_u32(buf, g.stars.len() as u32);
    for lane in &g.stars {
        put_u8(buf, match lane.level {
            LadderLevel::FullAero => 0,
            LadderLevel::Stage1Only => 1,
            LadderLevel::SrFallback => 2,
            LadderLevel::HoldLast => 3,
        });
        put_u64(buf, lane.suspect_remaining);
        put_f32(buf, lane.last_score);
        put_u8(buf, u8::from(lane.last_anomalous));
    }
}

fn get_governor(r: &mut Reader<'_>) -> DetectorResult<GovernorState> {
    let polls = r.u64()?;
    let polls_since_offer = r.u32()?;
    let pressure_streak = r.u64()?;
    let headroom_streak = r.u64()?;
    let nb = r.len(8)?;
    let mut tenant_buckets = Vec::with_capacity(nb);
    for _ in 0..nb {
        tenant_buckets.push((r.u32()?, r.u32()?));
    }
    let n = r.len(14)?;
    let mut stars = Vec::with_capacity(n);
    for _ in 0..n {
        let level = match r.u8()? {
            0 => LadderLevel::FullAero,
            1 => LadderLevel::Stage1Only,
            2 => LadderLevel::SrFallback,
            3 => LadderLevel::HoldLast,
            other => {
                return Err(DetectorError::Corrupt(format!(
                    "unknown ladder level tag {other}"
                )))
            }
        };
        stars.push(GovernorStarState {
            level,
            suspect_remaining: r.u64()?,
            last_score: r.f32()?,
            last_anomalous: r.u8()? != 0,
        });
    }
    Ok(GovernorState {
        polls,
        polls_since_offer,
        pressure_streak,
        headroom_streak,
        tenant_buckets,
        stars,
    })
}

fn encode_record(record: &MigrationRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    match record {
        MigrationRecord::Begin(b) => {
            // Adapter-free snapshots use the original tag so their byte
            // streams (and the chaos gates pinned on them) never change.
            let with_adapters = b
                .affected
                .iter()
                .any(|s| s.detector.stars.iter().any(|l| l.adapter.is_some()));
            put_u8(
                &mut payload,
                if with_adapters { TAG_BEGIN_ADAPTERS } else { TAG_BEGIN },
            );
            put_u64(&mut payload, b.epoch);
            put_u64(&mut payload, b.frames_routed);
            put_u32(&mut payload, b.shard_of.len() as u32);
            for &s in &b.shard_of {
                put_u32(&mut payload, s);
            }
            put_u32(&mut payload, b.affected.len() as u32);
            for snap in &b.affected {
                put_u32(&mut payload, snap.shard);
                put_u32(&mut payload, snap.members.len() as u32);
                for &m in &snap.members {
                    put_u32(&mut payload, m);
                }
                put_detector(&mut payload, &snap.detector, with_adapters);
                put_governor(&mut payload, &snap.governor);
            }
        }
        MigrationRecord::Commit(c) => {
            put_u8(&mut payload, TAG_COMMIT);
            put_u64(&mut payload, c.epoch);
        }
    }
    let mut framed = Vec::with_capacity(payload.len() + 12);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);
    let mut h = Fnv64::new();
    h.write(&payload);
    framed.extend_from_slice(&h.finish().to_le_bytes());
    framed
}

fn decode_payload(payload: &[u8]) -> DetectorResult<MigrationRecord> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        tag @ (TAG_BEGIN | TAG_BEGIN_ADAPTERS) => {
            let with_adapters = tag == TAG_BEGIN_ADAPTERS;
            let epoch = r.u64()?;
            let frames_routed = r.u64()?;
            let plan_len = r.len(4)?;
            let mut shard_of = Vec::with_capacity(plan_len);
            for _ in 0..plan_len {
                shard_of.push(r.u32()?);
            }
            let affected_len = r.len(1)?;
            let mut affected = Vec::with_capacity(affected_len);
            for _ in 0..affected_len {
                let shard = r.u32()?;
                let m = r.len(4)?;
                let mut members = Vec::with_capacity(m);
                for _ in 0..m {
                    members.push(r.u32()?);
                }
                let detector = get_detector(&mut r, with_adapters)?;
                let governor = get_governor(&mut r)?;
                affected.push(ShardSnapshot {
                    shard,
                    members,
                    detector,
                    governor,
                });
            }
            MigrationRecord::Begin(MigrationBegin {
                epoch,
                frames_routed,
                shard_of,
                affected,
            })
        }
        TAG_COMMIT => MigrationRecord::Commit(MigrationCommit { epoch: r.u64()? }),
        other => {
            return Err(DetectorError::Corrupt(format!(
                "unknown migration record tag {other}"
            )))
        }
    };
    r.done()?;
    Ok(record)
}

// ---------------------------------------------------------------------------
// The migration log.
// ---------------------------------------------------------------------------

/// `<plan-dir>/migrations.log` — the two-phase handoff journal. Lives next
/// to the coordinator's plan WAL; the segment scanner ignores it (it only
/// matches `wal-*.seg`).
pub fn migration_log_path(plan_dir: &Path) -> PathBuf {
    plan_dir.join("migrations.log")
}

/// One decoded record plus the byte offset its frame starts at (the
/// truncation point if this record has to be rolled back).
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedRecord {
    /// Byte offset of the record's length prefix.
    pub offset: u64,
    /// The record.
    pub record: MigrationRecord,
}

/// Appends one record to the migration log (created on first append) and
/// fsyncs it — the record must be durable before the handoff proceeds.
pub fn append_migration(plan_dir: &Path, record: &MigrationRecord) -> DetectorResult<()> {
    std::fs::create_dir_all(plan_dir)
        .map_err(|e| log_io_err("create dir", plan_dir, e))?;
    let path = migration_log_path(plan_dir);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| log_io_err("open", &path, e))?;
    file.write_all(&encode_record(record))
        .map_err(|e| log_io_err("append", &path, e))?;
    file.sync_all().map_err(|e| log_io_err("sync", &path, e))?;
    Ok(())
}

/// Reads the log's longest valid prefix (missing file = empty log). A torn
/// or checksum-mismatched tail is tolerated — it is exactly what a crash
/// mid-append leaves — but anything after it is ignored.
pub fn read_migrations(plan_dir: &Path) -> DetectorResult<Vec<LoggedRecord>> {
    let path = migration_log_path(plan_dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(log_io_err("read", &path, e)),
    };
    let mut out = Vec::new();
    let mut at = 0usize;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        if len > MAX_RECORD_BYTES {
            break; // corrupt length: treat as torn tail
        }
        let len = len as usize;
        let Some(end) = at.checked_add(4 + len + 8).filter(|&e| e <= bytes.len()) else {
            break; // cut off mid-record
        };
        let payload = &bytes[at + 4..at + 4 + len];
        let mut stored = [0u8; 8];
        stored.copy_from_slice(&bytes[at + 4 + len..end]);
        let mut h = Fnv64::new();
        h.write(payload);
        if h.finish() != u64::from_le_bytes(stored) {
            break; // checksum mismatch: torn tail
        }
        let Ok(record) = decode_payload(payload) else {
            break; // checksummed but structurally invalid: stop here
        };
        out.push(LoggedRecord {
            offset: at as u64,
            record,
        });
        at = end;
    }
    Ok(out)
}

/// Truncates the log at `offset`, discarding the record there and everything
/// after it — the rollback half of recovery.
pub fn truncate_migrations(plan_dir: &Path, offset: u64) -> DetectorResult<()> {
    let path = migration_log_path(plan_dir);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .map_err(|e| log_io_err("open", &path, e))?;
    file.set_len(offset)
        .map_err(|e| log_io_err("truncate", &path, e))?;
    file.sync_all().map_err(|e| log_io_err("sync", &path, e))?;
    Ok(())
}

fn log_io_err(what: &str, path: &Path, e: std::io::Error) -> DetectorError {
    DetectorError::Io(format!("migration log {what} {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Commit markers.
// ---------------------------------------------------------------------------

/// Name of the per-shard commit marker dropped into every new epoch
/// directory at commit time: the `MigrationCommit` record "landing in both
/// shards' WALs", binding the directory to its epoch-versioned
/// [`WalIdentity`] and membership.
pub const COMMIT_MARKER: &str = "migration-commit.marker";

fn encode_marker(epoch: u64, identity: WalIdentity, members: &[u32]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, epoch);
    put_u32(&mut payload, identity.shard_id);
    put_u64(&mut payload, identity.catalog_hash);
    put_u32(&mut payload, members.len() as u32);
    for &m in members {
        put_u32(&mut payload, m);
    }
    let mut framed = Vec::with_capacity(payload.len() + 12);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);
    let mut h = Fnv64::new();
    h.write(&payload);
    framed.extend_from_slice(&h.finish().to_le_bytes());
    framed
}

/// Writes (or rewrites) a shard directory's commit marker.
pub fn write_commit_marker(
    shard_dir: &Path,
    epoch: u64,
    identity: WalIdentity,
    members: &[u32],
) -> DetectorResult<()> {
    let path = shard_dir.join(COMMIT_MARKER);
    std::fs::write(&path, encode_marker(epoch, identity, members))
        .map_err(|e| log_io_err("write", &path, e))?;
    Ok(())
}

/// Reads and validates a shard directory's commit marker. `Ok(None)` when
/// absent (a crash between the log commit and the marker write — the log is
/// authoritative); a typed [`DetectorError::Corrupt`] when present but
/// damaged or bound to a different identity.
pub fn read_commit_marker(
    shard_dir: &Path,
    expected: Option<WalIdentity>,
) -> DetectorResult<Option<(u64, WalIdentity, Vec<u32>)>> {
    let path = shard_dir.join(COMMIT_MARKER);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(log_io_err("read", &path, e)),
    };
    if bytes.len() < 12 {
        return Err(DetectorError::Corrupt(format!(
            "commit marker {} truncated",
            path.display()
        )));
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if 4 + len + 8 != bytes.len() {
        return Err(DetectorError::Corrupt(format!(
            "commit marker {} has inconsistent length",
            path.display()
        )));
    }
    let payload = &bytes[4..4 + len];
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&bytes[4 + len..]);
    let mut h = Fnv64::new();
    h.write(payload);
    if h.finish() != u64::from_le_bytes(stored) {
        return Err(DetectorError::Corrupt(format!(
            "commit marker {} checksum mismatch",
            path.display()
        )));
    }
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let identity = WalIdentity {
        shard_id: r.u32()?,
        catalog_hash: r.u64()?,
    };
    let m = r.len(4)?;
    let mut members = Vec::with_capacity(m);
    for _ in 0..m {
        members.push(r.u32()?);
    }
    r.done()?;
    if let Some(want) = expected {
        if want != identity {
            return Err(DetectorError::Corrupt(format!(
                "commit marker {} bound to {identity}, expected {want}",
                path.display()
            )));
        }
    }
    Ok(Some((epoch, identity, members)))
}

// ---------------------------------------------------------------------------
// State transplant helpers.
// ---------------------------------------------------------------------------

/// Aligns a moving star's window lane from its source shard's timestamps
/// onto its destination's. Source and destination drift apart only when one
/// shard dropped frames the other accepted (a shard-down window), so the
/// walk matches timestamps exactly (bitwise `f64` equality — both sides
/// logged the same offered value) and hold-last-fills the rest, flagging
/// those samples imputed.
pub fn align_star_lane(src_ts: &[f64], lane: &StarLane, dst_ts: &[f64]) -> StarLane {
    let mut window = Vec::with_capacity(dst_ts.len());
    let mut imputed = Vec::with_capacity(dst_ts.len());
    let mut i = 0usize;
    let mut last: Option<(f32, bool)> = None;
    for &t in dst_ts {
        while i < src_ts.len() && src_ts[i] < t {
            last = Some((lane.window[i], lane.imputed[i]));
            i += 1;
        }
        if i < src_ts.len() && src_ts[i].to_bits() == t.to_bits() {
            window.push(lane.window[i]);
            imputed.push(lane.imputed[i]);
            last = Some((lane.window[i], lane.imputed[i]));
            i += 1;
        } else {
            // No source sample at this instant: hold the last value the
            // star actually had (0 before any), and mark it synthetic.
            window.push(last.map(|(v, _)| v).unwrap_or(0.0));
            imputed.push(true);
        }
    }
    StarLane {
        window,
        imputed,
        status: lane.status,
        score_history: lane.score_history.clone(),
        breaker: lane.breaker,
        adapter: lane.adapter.clone(),
    }
}

/// Assembles the install state for one post-migration shard from a `Begin`
/// record: shard-wide clocks from the shard's own pre-fence snapshot, star
/// lanes gathered from whichever affected shard each new member lived on
/// (moved stars' windows aligned to the destination's timestamps). Pure —
/// recovery re-derives bitwise what the live commit derived.
pub fn merge_shard_state(
    begin: &MigrationBegin,
    old_shard_of: &[usize],
    shard: usize,
    new_members: &[usize],
) -> DetectorResult<(DetectorState, GovernorState)> {
    let snapshot_of = |k: usize| -> DetectorResult<&ShardSnapshot> {
        begin
            .affected
            .iter()
            .find(|s| s.shard as usize == k)
            .ok_or_else(|| {
                DetectorError::Corrupt(format!(
                    "migration epoch {} names shard {k} but carries no snapshot for it",
                    begin.epoch
                ))
            })
    };
    let base = snapshot_of(shard)?;
    let mut det_stars = Vec::with_capacity(new_members.len());
    let mut gov_stars = Vec::with_capacity(new_members.len());
    for &star in new_members {
        let src_shard = *old_shard_of.get(star).ok_or_else(|| {
            DetectorError::Corrupt(format!("star {star} outside the catalog"))
        })?;
        let src = snapshot_of(src_shard)?;
        let local = src
            .members
            .iter()
            .position(|&m| m as usize == star)
            .ok_or_else(|| {
                DetectorError::Corrupt(format!(
                    "star {star} not in shard {src_shard}'s snapshot membership"
                ))
            })?;
        let det_lane = src.detector.stars.get(local).ok_or_else(|| {
            DetectorError::Corrupt(format!(
                "shard {src_shard} snapshot has no detector lane {local}"
            ))
        })?;
        let gov_lane = *src.governor.stars.get(local).ok_or_else(|| {
            DetectorError::Corrupt(format!(
                "shard {src_shard} snapshot has no governor lane {local}"
            ))
        })?;
        if src_shard == shard {
            det_stars.push(det_lane.clone());
        } else {
            det_stars.push(align_star_lane(
                &src.detector.timestamps,
                det_lane,
                &base.detector.timestamps,
            ));
        }
        gov_stars.push(gov_lane);
    }
    let detector = DetectorState {
        timestamps: base.detector.timestamps.clone(),
        cadence: base.detector.cadence,
        frames_seen: base.detector.frames_seen,
        scored_frames: base.detector.scored_frames,
        threshold: base.detector.threshold,
        health: base.detector.health.clone(),
        sup_stats: base.detector.sup_stats,
        refit_breaker: base.detector.refit_breaker,
        frame_breaker: base.detector.frame_breaker,
        stars: det_stars,
    };
    let governor = GovernorState {
        polls: base.governor.polls,
        polls_since_offer: base.governor.polls_since_offer,
        pressure_streak: base.governor.pressure_streak,
        headroom_streak: base.governor.headroom_streak,
        tenant_buckets: base.governor.tenant_buckets.clone(),
        stars: gov_stars,
    };
    Ok((detector, governor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(window: Vec<f32>, imputed: Vec<bool>) -> StarLane {
        StarLane {
            window,
            imputed,
            status: StarStatus::Nominal,
            score_history: vec![0.5, 0.7],
            breaker: BreakerState::default(),
            adapter: None,
        }
    }

    fn tiny_detector(n: usize, len: usize) -> DetectorState {
        DetectorState {
            timestamps: (0..len).map(|t| t as f64).collect(),
            cadence: 1.0,
            frames_seen: len as u64,
            scored_frames: len as u64,
            threshold: PotThreshold {
                threshold: 1.5,
                initial: 1.2,
                peaks: 7,
                gamma: 0.1,
                sigma: 0.3,
                method: FitMethod::GrimshawMle,
            },
            health: HealthReport::default(),
            sup_stats: SupervisorStats::default(),
            refit_breaker: BreakerState::default(),
            frame_breaker: BreakerState {
                consecutive: 2,
                open: true,
                short_circuited: 5,
            },
            stars: (0..n)
                .map(|v| lane(vec![v as f32; len], vec![false; len]))
                .collect(),
        }
    }

    fn tiny_governor(n: usize) -> GovernorState {
        GovernorState {
            polls: 42,
            polls_since_offer: 3,
            pressure_streak: 1,
            headroom_streak: 0,
            tenant_buckets: vec![(0, 5), (7, 2)],
            stars: (0..n)
                .map(|v| GovernorStarState {
                    level: if v % 2 == 0 {
                        LadderLevel::FullAero
                    } else {
                        LadderLevel::HoldLast
                    },
                    suspect_remaining: v as u64,
                    last_score: v as f32 * 0.1,
                    last_anomalous: v % 3 == 0,
                })
                .collect(),
        }
    }

    fn begin_record() -> MigrationRecord {
        MigrationRecord::Begin(MigrationBegin {
            epoch: 2,
            frames_routed: 64,
            shard_of: vec![0, 1, 0, 1],
            affected: vec![
                ShardSnapshot {
                    shard: 0,
                    members: vec![0, 1],
                    detector: tiny_detector(2, 6),
                    governor: tiny_governor(2),
                },
                ShardSnapshot {
                    shard: 1,
                    members: vec![2, 3],
                    detector: tiny_detector(2, 6),
                    governor: tiny_governor(2),
                },
            ],
        })
    }

    #[test]
    fn records_round_trip_through_the_log() {
        let dir = std::env::temp_dir().join(format!("aero_miglog_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        append_migration(&dir, &begin_record()).unwrap();
        append_migration(&dir, &MigrationRecord::Commit(MigrationCommit { epoch: 2 })).unwrap();
        let records = read_migrations(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].offset, 0);
        assert_eq!(records[0].record, begin_record());
        assert_eq!(
            records[1].record,
            MigrationRecord::Commit(MigrationCommit { epoch: 2 })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncation_rolls_back() {
        let dir = std::env::temp_dir().join(format!("aero_migtear_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        append_migration(&dir, &MigrationRecord::Commit(MigrationCommit { epoch: 1 })).unwrap();
        append_migration(&dir, &begin_record()).unwrap();
        let records = read_migrations(&dir).unwrap();
        assert_eq!(records.len(), 2);
        let begin_offset = records[1].offset;
        // Corrupt the Begin's checksum byte: the prefix survives, the tail
        // is dropped.
        let path = migration_log_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let records = read_migrations(&dir).unwrap();
        assert_eq!(records.len(), 1);
        // Roll back: truncate at the Begin, leaving only the Commit.
        truncate_migrations(&dir, begin_offset).unwrap();
        let records = read_migrations(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].record,
            MigrationRecord::Commit(MigrationCommit { epoch: 1 })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_marker_round_trips_and_detects_damage() {
        let dir = std::env::temp_dir().join(format!("aero_migmark_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let identity = WalIdentity {
            shard_id: 3,
            catalog_hash: 0xDEADBEEF,
        };
        assert!(read_commit_marker(&dir, None).unwrap().is_none());
        write_commit_marker(&dir, 4, identity, &[1, 5, 9]).unwrap();
        let (epoch, id, members) = read_commit_marker(&dir, Some(identity)).unwrap().unwrap();
        assert_eq!((epoch, id, members), (4, identity, vec![1, 5, 9]));
        // Wrong expected identity is a typed corruption.
        let other = WalIdentity {
            shard_id: 3,
            catalog_hash: 1,
        };
        assert!(matches!(
            read_commit_marker(&dir, Some(other)),
            Err(DetectorError::Corrupt(_))
        ));
        // Flip a payload byte: checksum mismatch.
        let path = dir.join(COMMIT_MARKER);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[6] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_commit_marker(&dir, None),
            Err(DetectorError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn align_matches_exact_timestamps_and_holds_last_elsewhere() {
        let src_ts = [1.0, 2.0, 4.0];
        let lane = lane(vec![10.0, 20.0, 40.0], vec![false, true, false]);
        let dst_ts = [1.0, 2.0, 3.0, 4.0, 5.0];
        let aligned = align_star_lane(&src_ts, &lane, &dst_ts);
        assert_eq!(aligned.window, vec![10.0, 20.0, 20.0, 40.0, 40.0]);
        assert_eq!(aligned.imputed, vec![false, true, true, false, true]);
        assert_eq!(aligned.score_history, lane.score_history);
        // Destination starting before any source sample: zero-filled,
        // imputed.
        let aligned = align_star_lane(&src_ts, &lane, &[0.5, 1.0]);
        assert_eq!(aligned.window, vec![0.0, 10.0]);
        assert_eq!(aligned.imputed, vec![true, false]);
    }

    #[test]
    fn merge_pulls_moved_star_from_source_snapshot() {
        let MigrationRecord::Begin(mut begin) = begin_record() else {
            unreachable!()
        };
        // Distinguish the two shards' windows so the transplant is visible.
        for (v, lane) in begin.affected[1].detector.stars.iter_mut().enumerate() {
            lane.window = vec![100.0 + v as f32; 6];
        }
        // Old: shard0={0,1}, shard1={2,3}. Plan: star 2 moves to shard 0.
        let old_shard_of = [0usize, 0, 1, 1];
        let (det, gov) = merge_shard_state(&begin, &old_shard_of, 0, &[0, 1, 2]).unwrap();
        assert_eq!(det.stars.len(), 3);
        assert_eq!(gov.stars.len(), 3);
        // Stars 0/1 keep shard 0's lanes; star 2's lane came from shard 1.
        assert_eq!(det.stars[0].window, vec![0.0; 6]);
        assert_eq!(det.stars[1].window, vec![1.0; 6]);
        assert_eq!(det.stars[2].window, vec![100.0; 6]);
        // Shard-wide clocks come from shard 0's own snapshot.
        assert_eq!(gov.polls, begin.affected[0].governor.polls);
        // A member missing from every snapshot is typed corruption.
        assert!(matches!(
            merge_shard_state(&begin, &old_shard_of, 0, &[0, 9]),
            Err(DetectorError::Corrupt(_))
        ));
    }
}
