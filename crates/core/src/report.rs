//! Event reporting: turns point-wise anomaly flags into a ranked catalog of
//! candidate celestial events — the artefact an astronomer actually reviews.
//!
//! Nearby flagged points on the same star are merged into one event (real
//! flares produce runs of flags with occasional gaps); events are ranked by
//! peak score and annotated with duration and peak position.

use aero_tensor::Matrix;
use aero_timeseries::LabelGrid;

use crate::fleet::FleetHealth;

/// One candidate event on one star.
#[derive(Debug, Clone, PartialEq)]
pub struct EventCandidate {
    /// Star (variate) index.
    pub star: usize,
    /// First flagged timestamp index.
    pub start: usize,
    /// Last flagged timestamp index (inclusive).
    pub end: usize,
    /// Timestamp index of the peak score.
    pub peak_at: usize,
    /// Peak anomaly score inside the event.
    pub peak_score: f32,
    /// Mean anomaly score over the event span.
    pub mean_score: f32,
}

impl EventCandidate {
    /// Duration in samples.
    pub fn duration(&self) -> usize {
        self.end - self.start + 1
    }
}

/// Builds the event catalog from flags and scores.
///
/// Flag runs separated by at most `merge_gap` unflagged samples are merged
/// into one event. Events are returned sorted by descending peak score.
pub fn build_catalog(flags: &LabelGrid, scores: &Matrix, merge_gap: usize) -> Vec<EventCandidate> {
    debug_assert_eq!(flags.rows(), scores.rows());
    debug_assert_eq!(flags.cols(), scores.cols());
    let mut events = Vec::new();
    for star in 0..flags.rows() {
        let row = flags.row(star);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut current: Option<(usize, usize)> = None;
        for (t, &flagged) in row.iter().enumerate() {
            if flagged {
                current = match current {
                    Some((s, e)) if t <= e + merge_gap + 1 => Some((s, t)),
                    Some(span) => {
                        spans.push(span);
                        Some((t, t))
                    }
                    None => Some((t, t)),
                };
            }
        }
        if let Some(span) = current {
            spans.push(span);
        }
        for (start, end) in spans {
            let mut peak_at = start;
            let mut peak = f32::MIN;
            let mut sum = 0.0f32;
            for t in start..=end {
                let s = scores.get(star, t);
                sum += s;
                if s > peak {
                    peak = s;
                    peak_at = t;
                }
            }
            events.push(EventCandidate {
                star,
                start,
                end,
                peak_at,
                peak_score: peak,
                mean_score: sum / (end - start + 1) as f32,
            });
        }
    }
    events.sort_by(|a, b| {
        b.peak_score
            .partial_cmp(&a.peak_score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    events
}

/// Renders the catalog as a fixed-width report (top `limit` events).
pub fn render_catalog(events: &[EventCandidate], timestamps: &[f64], limit: usize) -> String {
    let mut out = String::from(
        "rank  star   start      end        peak@      duration  peak score  mean score\n",
    );
    for (i, e) in events.iter().take(limit).enumerate() {
        let ts = |idx: usize| {
            timestamps
                .get(idx)
                .map(|t| format!("{t:<10.1}"))
                .unwrap_or_else(|| format!("{idx:<10}"))
        };
        out.push_str(&format!(
            "{:<5} {:<6} {} {} {} {:<9} {:<11.4} {:<10.4}\n",
            i + 1,
            e.star,
            ts(e.start),
            ts(e.end),
            ts(e.peak_at),
            e.duration(),
            e.peak_score,
            e.mean_score
        ));
    }
    if events.len() > limit {
        out.push_str(&format!("… and {} more\n", events.len() - limit));
    }
    out
}

/// Renders a [`FleetHealth`] rollup as a fixed-width operator table: one row
/// per shard (state, stars, emitted verdicts, queue depth, accepted/shed
/// frames, last error) plus a fleet-wide summary line.
pub fn render_fleet_health(health: &FleetHealth) -> String {
    let mut out = String::from(
        "shard  state        stars  emitted  queue  accepted  shed   last error\n",
    );
    for s in &health.shards {
        out.push_str(&format!(
            "{:<6} {:<12} {:<6} {:<8} {:<6} {:<9} {:<6} {}\n",
            s.shard,
            s.state.label(),
            s.stars,
            s.emitted,
            s.queue_depth,
            s.health.frames_accepted,
            s.health.overload.star_sheds,
            s.last_error.as_deref().unwrap_or("-"),
        ));
    }
    out.push_str(&format!(
        "fleet: {} routed, {} lost, {} failures, {} restarts, {} down, {} plans, breaker {} open / {} closed / {} probes\n",
        health.frames_routed,
        health.frames_lost,
        health.shard_failures,
        health.shard_restarts,
        health.shards_down,
        health.rebalance_plans,
        health.supervisor.circuits_opened,
        health.supervisor.circuits_closed,
        health.supervisor.probes,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LabelGrid, Matrix) {
        let mut flags = LabelGrid::new(2, 20);
        // Star 0: two runs separated by a 1-gap → merge with merge_gap >= 1.
        flags.mark_range(0, 2, 4).unwrap();
        flags.mark_range(0, 6, 7).unwrap();
        // Star 1: one isolated point.
        flags.mark_range(1, 15, 15).unwrap();
        let scores = Matrix::from_fn(2, 20, |v, t| {
            if v == 0 && t == 6 {
                0.9
            } else if v == 1 && t == 15 {
                0.5
            } else {
                0.1
            }
        });
        (flags, scores)
    }

    #[test]
    fn gaps_merge_when_allowed() {
        let (flags, scores) = setup();
        let merged = build_catalog(&flags, &scores, 1);
        assert_eq!(merged.len(), 2);
        let star0 = merged.iter().find(|e| e.star == 0).unwrap();
        assert_eq!((star0.start, star0.end), (2, 7));
        assert_eq!(star0.peak_at, 6);
        assert_eq!(star0.duration(), 6);

        let split = build_catalog(&flags, &scores, 0);
        assert_eq!(split.len(), 3);
    }

    #[test]
    fn catalog_sorted_by_peak_score() {
        let (flags, scores) = setup();
        let events = build_catalog(&flags, &scores, 1);
        assert!(events[0].peak_score >= events[1].peak_score);
        assert_eq!(events[0].star, 0); // peak 0.9 beats 0.5
    }

    #[test]
    fn empty_flags_give_empty_catalog() {
        let flags = LabelGrid::new(3, 10);
        let scores = Matrix::zeros(3, 10);
        assert!(build_catalog(&flags, &scores, 2).is_empty());
    }

    #[test]
    fn render_includes_rank_and_truncation() {
        let (flags, scores) = setup();
        let events = build_catalog(&flags, &scores, 0);
        let ts: Vec<f64> = (0..20).map(|t| t as f64 * 2.0).collect();
        let text = render_catalog(&events, &ts, 2);
        assert!(text.contains("rank"));
        assert!(text.contains("… and 1 more"));
        // Peak timestamp of the best event (t=6 → 12.0).
        assert!(text.contains("12.0"));
    }

    #[test]
    fn fleet_health_table_lists_every_shard() {
        use crate::fleet::{ShardHealth, ShardState};
        use crate::online::HealthReport;
        use crate::supervisor::SupervisorStats;
        let shard = |k: usize, state: ShardState, err: Option<&str>| ShardHealth {
            shard: k,
            state,
            stars: 5,
            emitted: 12,
            queue_depth: 1,
            last_error: err.map(String::from),
            health: HealthReport::default(),
        };
        let health = FleetHealth {
            shards: vec![
                shard(0, ShardState::Running, None),
                shard(1, ShardState::Quarantined, Some("wal corrupt")),
            ],
            frames_routed: 40,
            shard_restarts: 2,
            shard_failures: 3,
            shards_down: 1,
            frames_lost: 4,
            rebalance_plans: 1,
            supervisor: SupervisorStats::default(),
            aggregate: HealthReport::default(),
        };
        let text = render_fleet_health(&health);
        assert!(text.contains("running"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("wal corrupt"));
        assert!(text.contains("40 routed"));
        assert_eq!(text.lines().count(), 4, "header + 2 shards + summary");
    }

    #[test]
    fn run_reaching_end_is_closed() {
        let mut flags = LabelGrid::new(1, 5);
        flags.mark_range(0, 3, 4).unwrap();
        let scores = Matrix::ones(1, 5);
        let events = build_catalog(&flags, &scores, 0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].end, 4);
    }
}
