//! Event reporting: turns point-wise anomaly flags into a ranked catalog of
//! candidate celestial events — the artefact an astronomer actually reviews.
//!
//! Nearby flagged points on the same star are merged into one event (real
//! flares produce runs of flags with occasional gaps); events are ranked by
//! peak score and annotated with duration and peak position.

use aero_tensor::Matrix;
use aero_timeseries::LabelGrid;

use crate::fleet::FleetHealth;
use crate::online::HealthReport;
use crate::overload::{OverloadCounters, TenantRollup};
use crate::supervisor::SupervisorStats;

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON object writer shared by the CLI end-of-run summaries, the
/// `aero serve` status endpoint, and the final drain summary — one encoder,
/// tested once, no external crates on the streaming path. Keys are emitted
/// in insertion order; values are numbers, escaped strings, or pre-encoded
/// JSON fragments.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: usize) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite — JSON has no NaN).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an escaped string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
        self
    }

    /// Adds a pre-encoded JSON fragment (object, array, or literal) verbatim.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Adds an array of pre-encoded JSON fragments.
    pub fn arr(mut self, key: &str, items: impl IntoIterator<Item = String>) -> Self {
        self.key(key);
        self.buf.push('[');
        let mut first = true;
        for item in items {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(&item);
        }
        self.buf.push(']');
        self
    }

    /// Closes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// [`OverloadCounters`] as a JSON object.
pub fn overload_json(ov: &OverloadCounters) -> String {
    JsonObject::new()
        .num("queue_depth", ov.queue_depth)
        .num("queue_peak", ov.queue_peak)
        .num("frames_rejected", ov.frames_rejected)
        .num("star_sheds", ov.star_sheds)
        .num("ladder_steps_down", ov.ladder_steps_down)
        .num("ladder_steps_up", ov.ladder_steps_up)
        .num("stars_below_full", ov.stars_below_full)
        .num("fallback_scores", ov.fallback_scores)
        .num("held_verdicts", ov.held_verdicts)
        .num("frames_behind", ov.frames_behind)
        .finish()
}

/// [`SupervisorStats`] as a JSON object.
pub fn supervisor_json(sup: &SupervisorStats) -> String {
    JsonObject::new()
        .num("panics", sup.panics)
        .num("deadline_misses", sup.deadline_misses)
        .num("task_failures", sup.task_failures)
        .num("retries", sup.retries)
        .num("circuits_opened", sup.circuits_opened)
        .num("circuits_closed", sup.circuits_closed)
        .num("probes", sup.probes)
        .num("short_circuits", sup.short_circuits)
        .finish()
}

/// [`TenantRollup`] as a JSON array of per-tenant lanes (ascending id).
pub fn tenants_json(tenants: &TenantRollup) -> String {
    let lanes = tenants.lanes().iter().map(|l| {
        JsonObject::new()
            .num("tenant", l.tenant as usize)
            .num("offered", l.offered)
            .num("admitted", l.admitted)
            .num("shed", l.shed)
            .num("rejected_backpressure", l.rejected_backpressure)
            .num("rejected_quota", l.rejected_quota)
            .finish()
    });
    let mut out = String::from("[");
    for (i, lane) in lanes.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&lane);
    }
    out.push(']');
    out
}

/// [`HealthReport`] as a JSON object, overload counters and tenant lanes
/// nested inside.
pub fn health_json(health: &HealthReport) -> String {
    JsonObject::new()
        .num("frames_accepted", health.frames_accepted)
        .num("frames_dropped_stale", health.frames_dropped_stale)
        .num("frames_dropped_duplicate", health.frames_dropped_duplicate)
        .num("frames_gap_filled", health.frames_gap_filled)
        .num("gap_fill_truncations", health.gap_fill_truncations)
        .num("values_imputed", health.values_imputed)
        .num("scores_suppressed", health.scores_suppressed)
        .num("stars_degraded", health.stars_degraded)
        .num("stars_quarantined", health.stars_quarantined)
        .num("quarantine_events", health.quarantine_events)
        .num("threshold_refits", health.threshold_refits)
        .num("threshold_refit_failures", health.threshold_refit_failures)
        .num("shard_panics", health.shard_panics)
        .num("shard_deadline_misses", health.shard_deadline_misses)
        .num("shard_failures", health.shard_failures)
        .num("frames_suppressed", health.frames_suppressed)
        .num("circuit_breaker_trips", health.circuit_breaker_trips)
        .raw("overload", &overload_json(&health.overload))
        .raw("tenants", &tenants_json(&health.tenants))
        .finish()
}

/// End-of-run machine-readable summary shared by `aero stream`, the fleet
/// summary, and the `aero serve` drain response: frame totals, supervision
/// stats, and the full health report (overload counters and tenant lanes
/// nested inside) on one line.
pub fn stream_summary_json(
    health: &HealthReport,
    sup: &SupervisorStats,
    replayed: usize,
    offered: usize,
    flagged_frames: usize,
    flagged_points: usize,
) -> String {
    JsonObject::new()
        .raw(
            "frames",
            &JsonObject::new()
                .num("replayed", replayed)
                .num("offered", offered)
                .num("flagged_frames", flagged_frames)
                .num("flagged_points", flagged_points)
                .finish(),
        )
        .raw("supervisor", &supervisor_json(sup))
        .raw("health", &health_json(health))
        .finish()
}

/// One candidate event on one star.
#[derive(Debug, Clone, PartialEq)]
pub struct EventCandidate {
    /// Star (variate) index.
    pub star: usize,
    /// First flagged timestamp index.
    pub start: usize,
    /// Last flagged timestamp index (inclusive).
    pub end: usize,
    /// Timestamp index of the peak score.
    pub peak_at: usize,
    /// Peak anomaly score inside the event.
    pub peak_score: f32,
    /// Mean anomaly score over the event span.
    pub mean_score: f32,
}

impl EventCandidate {
    /// Duration in samples.
    pub fn duration(&self) -> usize {
        self.end - self.start + 1
    }
}

/// Builds the event catalog from flags and scores.
///
/// Flag runs separated by at most `merge_gap` unflagged samples are merged
/// into one event. Events are returned sorted by descending peak score.
pub fn build_catalog(flags: &LabelGrid, scores: &Matrix, merge_gap: usize) -> Vec<EventCandidate> {
    debug_assert_eq!(flags.rows(), scores.rows());
    debug_assert_eq!(flags.cols(), scores.cols());
    let mut events = Vec::new();
    for star in 0..flags.rows() {
        let row = flags.row(star);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut current: Option<(usize, usize)> = None;
        for (t, &flagged) in row.iter().enumerate() {
            if flagged {
                current = match current {
                    Some((s, e)) if t <= e + merge_gap + 1 => Some((s, t)),
                    Some(span) => {
                        spans.push(span);
                        Some((t, t))
                    }
                    None => Some((t, t)),
                };
            }
        }
        if let Some(span) = current {
            spans.push(span);
        }
        for (start, end) in spans {
            let mut peak_at = start;
            let mut peak = f32::MIN;
            let mut sum = 0.0f32;
            for t in start..=end {
                let s = scores.get(star, t);
                sum += s;
                if s > peak {
                    peak = s;
                    peak_at = t;
                }
            }
            events.push(EventCandidate {
                star,
                start,
                end,
                peak_at,
                peak_score: peak,
                mean_score: sum / (end - start + 1) as f32,
            });
        }
    }
    events.sort_by(|a, b| {
        b.peak_score
            .partial_cmp(&a.peak_score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    events
}

/// Renders the catalog as a fixed-width report (top `limit` events).
pub fn render_catalog(events: &[EventCandidate], timestamps: &[f64], limit: usize) -> String {
    let mut out = String::from(
        "rank  star   start      end        peak@      duration  peak score  mean score\n",
    );
    for (i, e) in events.iter().take(limit).enumerate() {
        let ts = |idx: usize| {
            timestamps
                .get(idx)
                .map(|t| format!("{t:<10.1}"))
                .unwrap_or_else(|| format!("{idx:<10}"))
        };
        out.push_str(&format!(
            "{:<5} {:<6} {} {} {} {:<9} {:<11.4} {:<10.4}\n",
            i + 1,
            e.star,
            ts(e.start),
            ts(e.end),
            ts(e.peak_at),
            e.duration(),
            e.peak_score,
            e.mean_score
        ));
    }
    if events.len() > limit {
        out.push_str(&format!("… and {} more\n", events.len() - limit));
    }
    out
}

/// Renders a [`FleetHealth`] rollup as a fixed-width operator table: one row
/// per shard (state, stars, emitted verdicts, queue depth, accepted/shed
/// frames, last error) plus a fleet-wide summary line.
pub fn render_fleet_health(health: &FleetHealth) -> String {
    let mut out = String::from(
        "shard  state        stars  emitted  queue  accepted  shed   lost   last error\n",
    );
    for s in &health.shards {
        out.push_str(&format!(
            "{:<6} {:<12} {:<6} {:<8} {:<6} {:<9} {:<6} {:<6} {}\n",
            s.shard,
            s.state.label(),
            s.stars,
            s.emitted,
            s.queue_depth,
            s.health.frames_accepted,
            s.health.overload.star_sheds,
            s.frames_lost,
            s.last_error.as_deref().unwrap_or("-"),
        ));
    }
    out.push_str(&format!(
        "fleet: {} routed, {} lost, {} failures, {} restarts, {} down, {} plans, {} moved, {} rolled back, breaker {} open / {} closed / {} probes\n",
        health.frames_routed,
        health.frames_lost,
        health.shard_failures,
        health.shard_restarts,
        health.shards_down,
        health.rebalance_plans,
        health.stars_moved,
        health.migrations_rolled_back,
        health.supervisor.circuits_opened,
        health.supervisor.circuits_closed,
        health.supervisor.probes,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LabelGrid, Matrix) {
        let mut flags = LabelGrid::new(2, 20);
        // Star 0: two runs separated by a 1-gap → merge with merge_gap >= 1.
        flags.mark_range(0, 2, 4).unwrap();
        flags.mark_range(0, 6, 7).unwrap();
        // Star 1: one isolated point.
        flags.mark_range(1, 15, 15).unwrap();
        let scores = Matrix::from_fn(2, 20, |v, t| {
            if v == 0 && t == 6 {
                0.9
            } else if v == 1 && t == 15 {
                0.5
            } else {
                0.1
            }
        });
        (flags, scores)
    }

    #[test]
    fn gaps_merge_when_allowed() {
        let (flags, scores) = setup();
        let merged = build_catalog(&flags, &scores, 1);
        assert_eq!(merged.len(), 2);
        let star0 = merged.iter().find(|e| e.star == 0).unwrap();
        assert_eq!((star0.start, star0.end), (2, 7));
        assert_eq!(star0.peak_at, 6);
        assert_eq!(star0.duration(), 6);

        let split = build_catalog(&flags, &scores, 0);
        assert_eq!(split.len(), 3);
    }

    #[test]
    fn catalog_sorted_by_peak_score() {
        let (flags, scores) = setup();
        let events = build_catalog(&flags, &scores, 1);
        assert!(events[0].peak_score >= events[1].peak_score);
        assert_eq!(events[0].star, 0); // peak 0.9 beats 0.5
    }

    #[test]
    fn empty_flags_give_empty_catalog() {
        let flags = LabelGrid::new(3, 10);
        let scores = Matrix::zeros(3, 10);
        assert!(build_catalog(&flags, &scores, 2).is_empty());
    }

    #[test]
    fn render_includes_rank_and_truncation() {
        let (flags, scores) = setup();
        let events = build_catalog(&flags, &scores, 0);
        let ts: Vec<f64> = (0..20).map(|t| t as f64 * 2.0).collect();
        let text = render_catalog(&events, &ts, 2);
        assert!(text.contains("rank"));
        assert!(text.contains("… and 1 more"));
        // Peak timestamp of the best event (t=6 → 12.0).
        assert!(text.contains("12.0"));
    }

    #[test]
    fn fleet_health_table_lists_every_shard() {
        use crate::fleet::{ShardHealth, ShardState};
        use crate::online::HealthReport;
        use crate::supervisor::SupervisorStats;
        let shard = |k: usize, state: ShardState, err: Option<&str>| ShardHealth {
            shard: k,
            state,
            stars: 5,
            emitted: 12,
            queue_depth: 1,
            frames_lost: 2,
            last_error: err.map(String::from),
            health: HealthReport::default(),
        };
        let health = FleetHealth {
            shards: vec![
                shard(0, ShardState::Running, None),
                shard(1, ShardState::Quarantined, Some("wal corrupt")),
            ],
            frames_routed: 40,
            shard_restarts: 2,
            shard_failures: 3,
            shards_down: 1,
            frames_lost: 4,
            rebalance_plans: 1,
            stars_moved: 6,
            migrations_rolled_back: 1,
            supervisor: SupervisorStats::default(),
            aggregate: HealthReport::default(),
        };
        let text = render_fleet_health(&health);
        assert!(text.contains("running"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("wal corrupt"));
        assert!(text.contains("40 routed"));
        assert!(text.contains("6 moved"));
        assert!(text.contains("1 rolled back"));
        assert_eq!(text.lines().count(), 4, "header + 2 shards + summary");
    }

    #[test]
    fn json_object_escapes_and_nests() {
        let nested = JsonObject::new().num("inner", 7).finish();
        let json = JsonObject::new()
            .num("n", 3)
            .float("f", 1.5)
            .float("nan", f64::NAN)
            .str("s", "a\"b\\c\nd")
            .raw("o", &nested)
            .arr("xs", vec!["1".to_string(), "2".to_string()])
            .finish();
        assert_eq!(
            json,
            "{\"n\":3,\"f\":1.5,\"nan\":null,\"s\":\"a\\\"b\\\\c\\nd\",\
             \"o\":{\"inner\":7},\"xs\":[1,2]}"
        );
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn health_json_nests_overload_and_tenants() {
        let mut health = HealthReport { frames_accepted: 9, ..HealthReport::default() };
        health.overload.queue_peak = 4;
        health.tenants.lane_mut(2).admitted = 5;
        let json = health_json(&health);
        assert!(json.contains("\"frames_accepted\":9"), "{json}");
        assert!(json.contains("\"overload\":{\"queue_depth\":0,\"queue_peak\":4"), "{json}");
        assert!(json.contains("\"tenants\":[{\"tenant\":2,\"offered\":0,\"admitted\":5"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Untenanted reports render an empty array, not a missing key.
        assert!(health_json(&HealthReport::default()).contains("\"tenants\":[]"));
    }

    #[test]
    fn supervisor_json_covers_breaker_fields() {
        let json = supervisor_json(&SupervisorStats::default());
        for key in ["panics", "retries", "circuits_opened", "probes", "short_circuits"] {
            assert!(json.contains(&format!("\"{key}\":0")), "{json}");
        }
    }

    #[test]
    fn run_reaching_end_is_closed() {
        let mut flags = LabelGrid::new(1, 5);
        flags.mark_range(0, 3, 4).unwrap();
        let scores = Matrix::ones(1, 5);
        let events = build_catalog(&flags, &scores, 0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].end, 4);
    }
}
