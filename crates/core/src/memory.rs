//! Analytic memory model for the scalability study (Fig. 7).
//!
//! The paper measures GPU memory versus star count `N`. Our substrate is
//! CPU-resident, so we account bytes deterministically: parameters + the
//! peak set of live activations in one scoring pass. The quantity of
//! interest is the *growth shape* in `N` — AERO's parameter count is
//! independent of `N` (shared temporal weights, `ω × ω` GCN) and its
//! activations grow linearly, matching the paper's "linear increase with a
//! modest growth rate".

use crate::config::AeroConfig;

/// Byte accounting for one model/configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEstimate {
    /// Bytes held by trainable parameters (plus Adam moments).
    pub parameter_bytes: usize,
    /// Peak live activation bytes during one scoring window.
    pub activation_bytes: usize,
}

impl MemoryEstimate {
    /// Total footprint.
    pub fn total_bytes(&self) -> usize {
        self.parameter_bytes + self.activation_bytes
    }

    /// Total in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

const F32: usize = 4;

/// Parameter count of the temporal module for token width `in_dim`.
fn temporal_params(cfg: &AeroConfig, in_dim: usize) -> usize {
    let d = cfg.d_model;
    let embed = 2 * (in_dim * d + d); // enc + dec input embeddings
    let time = d; // learnable α
    let per_encoder = 4 * d * d // Wq, Wk, Wv, Wo
        + (d * cfg.d_ff + cfg.d_ff) + (cfg.d_ff * d + d) // FFN
        + 4 * d; // two layer norms
    let decoder = 8 * d * d + 4 * d; // self+cross attention, two norms
    let head = d * cfg.d_ff + cfg.d_ff + cfg.d_ff * in_dim + in_dim;
    embed + time + cfg.encoder_layers * per_encoder + decoder + head
}

/// Memory estimate for AERO on `n` stars.
///
/// Activations per scored window: the encoder holds `O(W·d_m)` token states
/// and `O(h·W²)` attention maps per variate *sequentially* (variates share
/// weights and are processed one at a time), plus the `N × ω` error matrix,
/// the `N × N` window graph, and the `N × T_window` score block.
pub fn aero_memory(cfg: &AeroConfig, n: usize) -> MemoryEstimate {
    let in_dim = if cfg.univariate_input { 1 } else { n };
    let omega = cfg.effective_short_window();
    let mut params = 0usize;
    if cfg.use_temporal {
        params += temporal_params(cfg, in_dim);
    }
    if cfg.use_noise_module {
        params += omega * omega + omega;
    }
    // Adam keeps two moment tensors per parameter.
    let parameter_bytes = params * F32 * 3;

    let d = cfg.d_model;
    let w = cfg.window;
    let per_variate_transformer = 2 * w * d + cfg.heads * w * w + omega * d;
    let graph_and_errors = n * omega + n * n + n * omega;
    let activation_bytes = (per_variate_transformer + graph_and_errors) * F32;
    MemoryEstimate { parameter_bytes, activation_bytes }
}

/// Reference memory curves for baseline families (Fig. 7 comparison):
/// returns bytes as a function of `n` with the same accounting conventions.
/// Shapes follow each method's published architecture:
/// * TranAD / AnomalyTransformer concatenate all `N` variates into each
///   token, so parameters grow with `N²`-ish projections and attention maps
///   with `N`.
/// * ESG builds `N × N` dynamic graphs per step with node embeddings.
/// * GDN holds one static `N × N` graph plus `N` embeddings.
pub fn baseline_memory(method: &str, cfg: &AeroConfig, n: usize) -> usize {
    let d = cfg.d_model;
    let w = cfg.window;
    match method {
        "TranAD" | "AT" => {
            let params = 2 * n * d + 12 * d * d + d * n;
            let acts = 2 * w * d + cfg.heads * w * w + 2 * n * w;
            (params * 3 + acts) * F32
        }
        "ESG" => {
            let params = n * d + 9 * d * d + d * d;
            let acts = w * (n * n + n * d);
            (params * 3 + acts) * F32
        }
        "GDN" => {
            let params = n * d + 2 * d * d;
            let acts = n * n + n * w;
            (params * 3 + acts) * F32
        }
        _ => aero_memory(cfg, n).total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aero_params_independent_of_star_count() {
        let cfg = AeroConfig::paper();
        let a = aero_memory(&cfg, 24);
        let b = aero_memory(&cfg, 960);
        assert_eq!(a.parameter_bytes, b.parameter_bytes);
    }

    #[test]
    fn aero_activations_grow_subquadratically_then_quadratic_term_small() {
        let cfg = AeroConfig::paper();
        let n1 = aero_memory(&cfg, 100).activation_bytes as f64;
        let n2 = aero_memory(&cfg, 200).activation_bytes as f64;
        // Doubling N should much less than quadruple the activations at
        // these sizes (the N² graph term is small next to the N·ω terms
        // and the N-independent transformer state).
        assert!(n2 / n1 < 3.0, "ratio = {}", n2 / n1);
    }

    #[test]
    fn esg_grows_faster_than_aero() {
        let cfg = AeroConfig::paper();
        let aero_growth = aero_memory(&cfg, 960).total_bytes() as f64
            / aero_memory(&cfg, 24).total_bytes() as f64;
        let esg_growth =
            baseline_memory("ESG", &cfg, 960) as f64 / baseline_memory("ESG", &cfg, 24) as f64;
        assert!(
            esg_growth > 2.0 * aero_growth,
            "esg {esg_growth} vs aero {aero_growth}"
        );
    }

    #[test]
    fn multivariate_ablation_params_grow_with_n() {
        let mut cfg = AeroConfig::paper();
        cfg.univariate_input = false;
        let a = aero_memory(&cfg, 24);
        let b = aero_memory(&cfg, 96);
        assert!(b.parameter_bytes > a.parameter_bytes);
    }

    #[test]
    fn totals_are_positive_and_mib_converts() {
        let cfg = AeroConfig::tiny();
        let m = aero_memory(&cfg, 8);
        assert!(m.total_bytes() > 0);
        assert!(m.total_mib() > 0.0);
    }
}
