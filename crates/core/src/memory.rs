//! Analytic memory model for the scalability study (Fig. 7).
//!
//! The paper measures GPU memory versus star count `N`. Our substrate is
//! CPU-resident, so we account bytes deterministically: parameters + the
//! peak set of live activations in one scoring pass. The quantity of
//! interest is the *growth shape* in `N` — AERO's parameter count is
//! independent of `N` (shared temporal weights, `ω × ω` GCN) and its
//! activations grow linearly, matching the paper's "linear increase with a
//! modest growth rate".

//!
//! Two accounting regimes share the analytic core:
//!
//! * [`aero_memory`] — the *training-time* footprint of one standalone model
//!   (parameters carry Adam moments, hence the ×3).
//! * [`aero_inference_memory`] / [`shared_fleet_memory`] — the *resident*
//!   footprint after [`crate::Aero::from_backbone`] assembly: the frozen
//!   trunk holds values only (no optimizer moments, and gradient buffers are
//!   lazily allocated so a never-trained assembly owns none), and a fleet of
//!   `N` stars pays for the trunk **once** (`Arc`-shared) plus a kilobyte
//!   delta per star. The estimate is pinned against the measured
//!   [`crate::Aero::resident_bytes`] in tests.

use crate::config::AeroConfig;

/// Byte accounting for one model/configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEstimate {
    /// Bytes held by trainable parameters (plus Adam moments).
    pub parameter_bytes: usize,
    /// Peak live activation bytes during one scoring window.
    pub activation_bytes: usize,
}

impl MemoryEstimate {
    /// Total footprint.
    pub fn total_bytes(&self) -> usize {
        self.parameter_bytes + self.activation_bytes
    }

    /// Total in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

const F32: usize = 4;

/// Parameter count of the temporal module for token width `in_dim`.
fn temporal_params(cfg: &AeroConfig, in_dim: usize) -> usize {
    let d = cfg.d_model;
    let embed = 2 * (in_dim * d + d); // enc + dec input embeddings
    let time = d; // learnable α
    let per_encoder = 4 * d * d // Wq, Wk, Wv, Wo
        + (d * cfg.d_ff + cfg.d_ff) + (cfg.d_ff * d + d) // FFN
        + 4 * d; // two layer norms
    let decoder = 8 * d * d + 4 * d; // self+cross attention, two norms
    let head = d * cfg.d_ff + cfg.d_ff + cfg.d_ff * in_dim + in_dim;
    embed + time + cfg.encoder_layers * per_encoder + decoder + head
}

/// Memory estimate for AERO on `n` stars.
///
/// Activations per scored window: the encoder holds `O(W·d_m)` token states
/// and `O(h·W²)` attention maps per variate *sequentially* (variates share
/// weights and are processed one at a time), plus the `N × ω` error matrix,
/// the `N × N` window graph, and the `N × T_window` score block.
pub fn aero_memory(cfg: &AeroConfig, n: usize) -> MemoryEstimate {
    let omega = cfg.effective_short_window();
    // Adam keeps two moment tensors per parameter (training-time figure;
    // the frozen-trunk inference path is `aero_inference_memory`).
    let parameter_bytes = trunk_params(cfg, n) * F32 * 3;

    let d = cfg.d_model;
    let w = cfg.window;
    let per_variate_transformer = 2 * w * d + cfg.heads * w * w + omega * d;
    let graph_and_errors = n * omega + n * n + n * omega;
    let activation_bytes = (per_variate_transformer + graph_and_errors) * F32;
    MemoryEstimate { parameter_bytes, activation_bytes }
}

/// Analytic parameter count (floats, not bytes) of the shared trunk for a
/// detector over `n` stars — temporal module plus GCN, no adapters.
fn trunk_params(cfg: &AeroConfig, n: usize) -> usize {
    let in_dim = if cfg.univariate_input { 1 } else { n };
    let omega = cfg.effective_short_window();
    let mut params = 0usize;
    if cfg.use_temporal {
        params += temporal_params(cfg, in_dim);
    }
    if cfg.use_noise_module {
        params += omega * omega + omega;
    }
    params
}

/// Bytes one star's delta occupies beyond the shared trunk: its scaler
/// statistics plus (when `adapter_rank > 0`) its low-rank adapter head.
/// Mirrors the layout [`crate::StarDelta::delta_bytes`] measures.
pub fn star_delta_bytes(cfg: &AeroConfig) -> usize {
    let mut bytes = 2 * F32; // scaler min + range
    if cfg.adapter_rank > 0 {
        let omega = cfg.effective_short_window();
        // P (ω×r) + Q (r×ω), bias/mean/var, update counter.
        bytes += omega * cfg.adapter_rank * 2 * F32 + 3 * F32 + 8;
    }
    bytes
}

/// Memory estimate for one *inference-resident* AERO on `n` stars: frozen
/// parameter values only (no Adam moments — those exist only while
/// training — and no gradient buffers, which the store allocates lazily on
/// first backward), plus per-star deltas and the same peak activations as
/// [`aero_memory`].
pub fn aero_inference_memory(cfg: &AeroConfig, n: usize) -> MemoryEstimate {
    let parameter_bytes = trunk_params(cfg, n) * F32 + n * star_delta_bytes(cfg);
    MemoryEstimate {
        parameter_bytes,
        activation_bytes: aero_memory(cfg, n).activation_bytes,
    }
}

/// Resident footprint of a fleet whose detectors all share one frozen trunk
/// ([`crate::Aero::from_backbone`]): the trunk is paid once, every star adds
/// only its delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedFleetEstimate {
    /// Bytes of the `Arc`-shared trunk (counted once fleet-wide).
    pub backbone_bytes: usize,
    /// Bytes each star adds on top of the trunk.
    pub per_star_bytes: usize,
    /// Stars in the fleet.
    pub stars: usize,
}

impl SharedFleetEstimate {
    /// Fleet-wide resident parameter-state bytes.
    pub fn total_bytes(&self) -> usize {
        self.backbone_bytes + self.stars * self.per_star_bytes
    }

    /// Amortized bytes per star — approaches `per_star_bytes` as the trunk
    /// cost spreads over more stars.
    pub fn bytes_per_star(&self) -> f64 {
        self.total_bytes() as f64 / self.stars.max(1) as f64
    }
}

/// Shared-backbone fleet estimate for `n` stars under `cfg`.
pub fn shared_fleet_memory(cfg: &AeroConfig, n: usize) -> SharedFleetEstimate {
    SharedFleetEstimate {
        backbone_bytes: trunk_params(cfg, n) * F32,
        per_star_bytes: star_delta_bytes(cfg),
        stars: n,
    }
}

/// Reference memory curves for baseline families (Fig. 7 comparison):
/// returns bytes as a function of `n` with the same accounting conventions.
/// Shapes follow each method's published architecture:
/// * TranAD / AnomalyTransformer concatenate all `N` variates into each
///   token, so parameters grow with `N²`-ish projections and attention maps
///   with `N`.
/// * ESG builds `N × N` dynamic graphs per step with node embeddings.
/// * GDN holds one static `N × N` graph plus `N` embeddings.
pub fn baseline_memory(method: &str, cfg: &AeroConfig, n: usize) -> usize {
    let d = cfg.d_model;
    let w = cfg.window;
    match method {
        "TranAD" | "AT" => {
            let params = 2 * n * d + 12 * d * d + d * n;
            let acts = 2 * w * d + cfg.heads * w * w + 2 * n * w;
            (params * 3 + acts) * F32
        }
        "ESG" => {
            let params = n * d + 9 * d * d + d * d;
            let acts = w * (n * n + n * d);
            (params * 3 + acts) * F32
        }
        "GDN" => {
            let params = n * d + 2 * d * d;
            let acts = n * n + n * w;
            (params * 3 + acts) * F32
        }
        _ => aero_memory(cfg, n).total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;

    #[test]
    fn aero_params_independent_of_star_count() {
        let cfg = AeroConfig::paper();
        let a = aero_memory(&cfg, 24);
        let b = aero_memory(&cfg, 960);
        assert_eq!(a.parameter_bytes, b.parameter_bytes);
    }

    #[test]
    fn aero_activations_grow_subquadratically_then_quadratic_term_small() {
        let cfg = AeroConfig::paper();
        let n1 = aero_memory(&cfg, 100).activation_bytes as f64;
        let n2 = aero_memory(&cfg, 200).activation_bytes as f64;
        // Doubling N should much less than quadruple the activations at
        // these sizes (the N² graph term is small next to the N·ω terms
        // and the N-independent transformer state).
        assert!(n2 / n1 < 3.0, "ratio = {}", n2 / n1);
    }

    #[test]
    fn esg_grows_faster_than_aero() {
        let cfg = AeroConfig::paper();
        let aero_growth = aero_memory(&cfg, 960).total_bytes() as f64
            / aero_memory(&cfg, 24).total_bytes() as f64;
        let esg_growth =
            baseline_memory("ESG", &cfg, 960) as f64 / baseline_memory("ESG", &cfg, 24) as f64;
        assert!(
            esg_growth > 2.0 * aero_growth,
            "esg {esg_growth} vs aero {aero_growth}"
        );
    }

    #[test]
    fn multivariate_ablation_params_grow_with_n() {
        let mut cfg = AeroConfig::paper();
        cfg.univariate_input = false;
        let a = aero_memory(&cfg, 24);
        let b = aero_memory(&cfg, 96);
        assert!(b.parameter_bytes > a.parameter_bytes);
    }

    #[test]
    fn totals_are_positive_and_mib_converts() {
        let cfg = AeroConfig::tiny();
        let m = aero_memory(&cfg, 8);
        assert!(m.total_bytes() > 0);
        assert!(m.total_mib() > 0.0);
    }

    #[test]
    fn inference_estimate_matches_measured_resident_bytes() {
        // The analytic frozen-trunk estimate must track what a
        // from_backbone assembly actually holds — within 15%, per-star
        // deltas included.
        let ds = aero_datagen::SyntheticConfig::tiny(500).build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 2;
        cfg.adapter_rank = 2;
        let mut trained = crate::Aero::new(cfg.clone()).unwrap();
        trained.fit(&ds.train).unwrap();
        let backbone = trained.backbone().unwrap();
        let n = ds.train.num_variates();
        let deltas: Vec<crate::StarDelta> =
            (0..n).map(|v| trained.star_delta(v).unwrap()).collect();
        let assembled = crate::Aero::from_backbone(&backbone, &deltas).unwrap();

        let mut seen = std::collections::HashSet::new();
        let measured = assembled.resident_bytes(&mut seen) as f64;
        let estimated = aero_inference_memory(&cfg, n).parameter_bytes as f64;
        let rel = (measured - estimated).abs() / measured;
        assert!(
            rel < 0.15,
            "estimate {estimated} vs measured {measured} ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn fleet_dedup_second_detector_adds_only_delta_bytes() {
        // Two assemblies sharing one backbone, measured through one `seen`
        // set: the second must cost deltas + scaler, not another trunk.
        let ds = aero_datagen::SyntheticConfig::tiny(500).build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 2;
        let mut trained = crate::Aero::new(cfg.clone()).unwrap();
        trained.fit(&ds.train).unwrap();
        let backbone = trained.backbone().unwrap();
        let n = ds.train.num_variates();
        let deltas: Vec<crate::StarDelta> =
            (0..n).map(|v| trained.star_delta(v).unwrap()).collect();
        let a = crate::Aero::from_backbone(&backbone, &deltas).unwrap();
        let b = crate::Aero::from_backbone(&backbone, &deltas).unwrap();

        let mut seen = std::collections::HashSet::new();
        let first = a.resident_bytes(&mut seen);
        let second = b.resident_bytes(&mut seen);
        let delta_budget = n * star_delta_bytes(&cfg);
        assert!(
            second <= delta_budget + 64,
            "second detector added {second} bytes, deltas should cost ≤ {delta_budget}"
        );
        assert!(first > 10 * second, "trunk must dominate: {first} vs {second}");
        // And the analytic fleet curve reflects the same amortization.
        let est = shared_fleet_memory(&cfg, 1024);
        assert!(est.bytes_per_star() < est.backbone_bytes as f64 / 64.0);
    }
}
