//! Per-star adapter heads over the shared frozen backbone.
//!
//! At survey scale the Stage-1 Transformer + GCN trunk is trained **once per
//! night on a sampled subset** of stars and then frozen and `Arc`-shared
//! across every shard (see [`crate::model::BackboneSnapshot`]). What remains
//! per star is deliberately tiny — the ASTROCO recipe of a shared encoder
//! with light per-object heads:
//!
//! * a rank-`r` linear head that predicts the star's **systematic
//!   reconstruction residual** from its normalized short window: an
//!   in-projection `P` (`ω × r`) maps the window onto `r` latent factors and
//!   an out-projection `Q` (`r × ω`) maps them back to a per-position
//!   correction, plus a scalar bias;
//! * per-star **norm stats** — an EWMA mean/variance of the residual — that
//!   damp the online learning rate on noisy stars.
//!
//! The head starts as an exact identity (`Q = 0`, bias `= 0`) and is trained
//! online by hand-derived SGD (the head is linear, so no tape is needed).
//! While it *is* identity the scoring path skips the correction entirely —
//! `e − 0.0` is not a bitwise no-op for `−0.0`, so the skip gate, not
//! algebra, is what keeps untouched stars on the pinned path.
//!
//! Adapter state lives outside the [`ParamStore`](aero_tensor::ParamStore):
//! it is the "delta" unit of the v3 checkpoint format and of mid-night shard
//! migration, both of which move kilobytes per star instead of a model.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::detector::{DetectorError, DetectorResult};

/// EWMA factor for the per-star residual norm stats.
const NORM_ALPHA: f32 = 0.05;
/// Global-norm clip for one SGD step (same spirit as Stage-1's clip at 5).
const GRAD_CLIP: f32 = 5.0;

/// One star's adapter head: low-rank in/out projections + norm stats.
#[derive(Debug, Clone, PartialEq)]
pub struct StarAdapter {
    rank: usize,
    omega: usize,
    /// In-projection `P`, `ω × r` row-major (`p[t·r + j]`), seeded per star.
    pub(crate) p: Vec<f32>,
    /// Out-projection `Q`, `r × ω` row-major (`q[j·ω + t]`), zero ⇒ identity.
    pub(crate) q: Vec<f32>,
    /// Scalar output bias.
    pub(crate) bias: f32,
    /// EWMA mean of the window-mean residual (norm stat).
    pub(crate) mean: f32,
    /// EWMA variance of the window-mean residual (norm stat).
    pub(crate) var: f32,
    /// Online SGD steps taken.
    pub(crate) updates: u64,
}

/// splitmix64 step, the crate-wide cheap deterministic PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StarAdapter {
    /// A fresh identity head for one star. `P` is Xavier-seeded
    /// deterministically from `(seed, star)` so reassembled fleets are
    /// bitwise reproducible; `Q` and the bias start at zero.
    pub fn new(omega: usize, rank: usize, seed: u64, star: usize) -> Self {
        let mut s = seed ^ (star as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ADAPTER_STREAM;
        let bound = (6.0 / (omega + rank) as f32).sqrt();
        let p = (0..omega * rank)
            .map(|_| {
                let u = (splitmix(&mut s) >> 40) as f32 / (1u64 << 24) as f32;
                (u * 2.0 - 1.0) * bound
            })
            .collect();
        Self { rank, omega, p, q: vec![0.0; rank * omega], bias: 0.0, mean: 0.0, var: 0.0, updates: 0 }
    }

    /// Reconstructs a head from persisted parts, validating shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        omega: usize,
        rank: usize,
        p: Vec<f32>,
        q: Vec<f32>,
        bias: f32,
        mean: f32,
        var: f32,
        updates: u64,
    ) -> DetectorResult<Self> {
        if p.len() != omega * rank || q.len() != rank * omega {
            return Err(DetectorError::Invalid(format!(
                "adapter delta shape mismatch: P has {} values, Q has {}, expected {} each for ω={omega} r={rank}",
                p.len(),
                q.len(),
                omega * rank,
            )));
        }
        if p.iter().chain(q.iter()).any(|v| !v.is_finite())
            || !bias.is_finite()
            || !mean.is_finite()
            || !var.is_finite()
        {
            return Err(DetectorError::Invalid(
                "adapter delta contains non-finite values".into(),
            ));
        }
        Ok(Self { rank, omega, p, q, bias, mean, var, updates })
    }

    /// Head rank `r`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Short-window length `ω` this head corrects.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Online SGD steps taken so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// True while the head has never moved off its exact-identity init
    /// (`Q` and bias all `+0.0` bits). Identity heads are **skipped** by the
    /// scoring path, keeping untouched stars bitwise on the pinned path.
    pub fn is_identity(&self) -> bool {
        self.bias.to_bits() == 0 && self.q.iter().all(|v| v.to_bits() == 0)
    }

    /// Serialized size of this head's delta (the unit that moves in v3
    /// checkpoints and mid-night migration), in bytes.
    pub fn delta_bytes(&self) -> usize {
        (self.p.len() + self.q.len()) * 4 + 3 * 4 + 8
    }

    /// Predicted systematic residual for `window` (normalized, length `ω`)
    /// into `out`: `ê = Qᵀ(Pᵀ·y) + bias`.
    ///
    /// `latent` is caller-provided scratch of length ≥ `rank` so the
    /// steady-state scoring path stays allocation-free.
    pub fn predict_into(&self, window: &[f32], latent: &mut [f32], out: &mut [f32]) {
        debug_assert_eq!(window.len(), self.omega);
        debug_assert!(latent.len() >= self.rank && out.len() >= self.omega);
        for l in latent.iter_mut().take(self.rank) {
            *l = 0.0;
        }
        for (t, &y) in window.iter().enumerate() {
            let p_row = &self.p[t * self.rank..(t + 1) * self.rank];
            for (j, &pj) in p_row.iter().enumerate() {
                latent[j] += pj * y;
            }
        }
        for slot in out.iter_mut().take(self.omega) {
            *slot = self.bias;
        }
        for (j, &l) in latent.iter().enumerate().take(self.rank) {
            let q_row = &self.q[j * self.omega..(j + 1) * self.omega];
            for (t, &qt) in q_row.iter().enumerate() {
                out[t] += qt * l;
            }
        }
    }

    /// One online SGD step toward predicting `residual` (the backbone's
    /// Stage-1 error for this star's newest window) from `window`.
    ///
    /// Minimizes `‖ê − e‖²` with a hand-derived gradient, clipped at global
    /// norm [`GRAD_CLIP`] and damped by the per-star norm stats: noisy stars
    /// (large residual variance) learn more slowly.
    pub fn sgd_step(&mut self, window: &[f32], residual: &[f32], lr: f32) {
        debug_assert_eq!(window.len(), self.omega);
        debug_assert_eq!(residual.len(), self.omega);
        let (omega, rank) = (self.omega, self.rank);
        if omega == 0 {
            return;
        }

        // Norm stats first: EWMA of the window-mean residual.
        let e_mean = residual.iter().sum::<f32>() / omega as f32;
        let delta = e_mean - self.mean;
        self.mean += NORM_ALPHA * delta;
        self.var = (1.0 - NORM_ALPHA) * (self.var + NORM_ALPHA * delta * delta);
        let damp = 1.0 / (1.0 + self.var.sqrt());

        // Forward (stack scratch: rank is tiny, bounded by config).
        let mut latent = vec![0.0f32; rank];
        let mut pred = vec![0.0f32; omega];
        self.predict_into(window, &mut latent, &mut pred);

        // d = ê − e drives all three gradients.
        let mut g_bias = 0.0f32;
        let mut g_q = vec![0.0f32; rank * omega];
        let mut q_dot_d = vec![0.0f32; rank];
        for t in 0..omega {
            let d = pred[t] - residual[t];
            g_bias += d;
            for j in 0..rank {
                g_q[j * omega + t] = d * latent[j];
                q_dot_d[j] += self.q[j * omega + t] * d;
            }
        }
        let mut g_p = vec![0.0f32; omega * rank];
        for t in 0..omega {
            for j in 0..rank {
                g_p[t * rank + j] = window[t] * q_dot_d[j];
            }
        }

        let norm_sq = g_bias * g_bias
            + g_q.iter().map(|g| g * g).sum::<f32>()
            + g_p.iter().map(|g| g * g).sum::<f32>();
        let norm = norm_sq.sqrt();
        let clip = if norm > GRAD_CLIP { GRAD_CLIP / norm } else { 1.0 };
        let step = lr * damp * clip;
        if !step.is_finite() {
            return;
        }

        self.bias -= step * g_bias;
        for (w, g) in self.q.iter_mut().zip(&g_q) {
            *w -= step * g;
        }
        for (w, g) in self.p.iter_mut().zip(&g_p) {
            *w -= step * g;
        }
        self.updates += 1;
    }
}

/// All stars' adapter heads for one detector (or one fleet shard).
#[derive(Debug, Clone, PartialEq)]
pub struct AdapterSet {
    rank: usize,
    omega: usize,
    heads: Vec<StarAdapter>,
}

impl AdapterSet {
    /// Fresh identity heads for `n` stars.
    pub fn new(n: usize, omega: usize, rank: usize, seed: u64) -> Self {
        let heads = (0..n).map(|v| StarAdapter::new(omega, rank, seed, v)).collect();
        Self { rank, omega, heads }
    }

    /// Builds a set from per-star heads, validating they agree on shape.
    pub fn from_heads(omega: usize, rank: usize, heads: Vec<StarAdapter>) -> DetectorResult<Self> {
        for (v, h) in heads.iter().enumerate() {
            if h.omega != omega || h.rank != rank {
                return Err(DetectorError::Invalid(format!(
                    "adapter head {v} has ω={} r={}, set expects ω={omega} r={rank}",
                    h.omega, h.rank
                )));
            }
        }
        Ok(Self { rank, omega, heads })
    }

    /// Number of stars.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True when the set holds no heads.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Head rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Short-window length the heads correct.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Star `v`'s head.
    pub fn head(&self, v: usize) -> Option<&StarAdapter> {
        self.heads.get(v)
    }

    /// Star `v`'s head, mutably.
    pub fn head_mut(&mut self, v: usize) -> Option<&mut StarAdapter> {
        self.heads.get_mut(v)
    }

    /// Replaces star `v`'s head (used when a migrated star arrives with its
    /// trained delta).
    pub fn install_head(&mut self, v: usize, head: StarAdapter) -> DetectorResult<()> {
        if head.omega != self.omega || head.rank != self.rank {
            return Err(DetectorError::Invalid(format!(
                "migrated adapter head has ω={} r={}, shard expects ω={} r={}",
                head.omega, head.rank, self.omega, self.rank
            )));
        }
        match self.heads.get_mut(v) {
            Some(slot) => {
                *slot = head;
                Ok(())
            }
            None => Err(DetectorError::Invalid(format!(
                "adapter head index {v} out of range ({} stars)",
                self.heads.len()
            ))),
        }
    }

    /// Total serialized delta bytes across all heads.
    pub fn delta_bytes(&self) -> usize {
        self.heads.iter().map(StarAdapter::delta_bytes).sum()
    }
}

/// Domain-separation constant so the adapter init stream never collides with
/// other seeded streams derived from the same night seed.
const ADAPTER_STREAM: u64 = 0xada7_0000_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_head_is_identity_and_predicts_zero() {
        let a = StarAdapter::new(12, 2, 7, 3);
        assert!(a.is_identity());
        let window: Vec<f32> = (0..12).map(|t| t as f32 * 0.1).collect();
        let mut latent = [0.0f32; 2];
        let mut out = [0.5f32; 12];
        a.predict_into(&window, &mut latent, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn init_is_deterministic_per_star_and_distinct_across_stars() {
        let a = StarAdapter::new(8, 2, 42, 5);
        let b = StarAdapter::new(8, 2, 42, 5);
        let c = StarAdapter::new(8, 2, 42, 6);
        assert_eq!(a, b);
        assert_ne!(a.p, c.p);
    }

    #[test]
    fn sgd_learns_a_constant_offset() {
        // The backbone systematically under-reconstructs this star by 0.3;
        // the head should absorb it via the bias within a few hundred steps.
        let mut a = StarAdapter::new(8, 2, 1, 0);
        let window: Vec<f32> = (0..8).map(|t| (t as f32 * 0.7).sin()).collect();
        let residual = vec![0.3f32; 8];
        for _ in 0..400 {
            a.sgd_step(&window, &residual, 0.05);
        }
        assert!(!a.is_identity());
        let mut latent = [0.0f32; 2];
        let mut out = [0.0f32; 8];
        a.predict_into(&window, &mut latent, &mut out);
        for &v in &out {
            assert!((v - 0.3).abs() < 0.05, "prediction {v} far from systematic 0.3");
        }
        assert_eq!(a.updates(), 400);
    }

    #[test]
    fn from_parts_validates_shapes_and_finiteness() {
        assert!(StarAdapter::from_parts(8, 2, vec![0.0; 16], vec![0.0; 16], 0.0, 0.0, 0.0, 0).is_ok());
        assert!(StarAdapter::from_parts(8, 2, vec![0.0; 15], vec![0.0; 16], 0.0, 0.0, 0.0, 0).is_err());
        assert!(
            StarAdapter::from_parts(8, 2, vec![f32::NAN; 16], vec![0.0; 16], 0.0, 0.0, 0.0, 0).is_err()
        );
    }

    #[test]
    fn set_install_rejects_mismatched_heads() {
        let mut set = AdapterSet::new(3, 8, 2, 9);
        assert_eq!(set.len(), 3);
        assert!(set.install_head(1, StarAdapter::new(8, 2, 9, 99)).is_ok());
        assert!(set.install_head(0, StarAdapter::new(10, 2, 9, 0)).is_err());
        assert!(set.install_head(7, StarAdapter::new(8, 2, 9, 0)).is_err());
    }
}
