//! Temporal reconstruction module (paper §III-C, Fig. 4b).
//!
//! A Transformer encoder-decoder applied (by default) independently to each
//! variate: the encoder reads the long window `W` for context, the decoder
//! reconstructs the short window `ω` through cross-attention, and a
//! sigmoid-terminated FFN emits the normalized reconstruction `Ŷ₁`.

use aero_nn::{Activation, DecoderLayer, EncoderLayer, Linear, TimeEmbedding};
use aero_tensor::{Graph, Matrix, NodeId, ParamId, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::AeroConfig;
use crate::detector::{DetectorError, DetectorResult};

/// The temporal reconstruction network. `in_dim` is 1 for the paper's
/// univariate-input mode and `N` for the Table IV "w/o univariate input"
/// ablation.
#[derive(Debug, Clone)]
pub struct TemporalModule {
    enc_embed: Linear,
    dec_embed: Linear,
    time: TimeEmbedding,
    encoders: Vec<EncoderLayer>,
    decoder: DecoderLayer,
    out_hidden: Linear,
    out_proj: Linear,
    in_dim: usize,
}

impl TemporalModule {
    /// Registers all parameters in `store`. `in_dim` is the token width.
    pub fn new(
        store: &mut ParamStore,
        config: &AeroConfig,
        in_dim: usize,
        seed: u64,
    ) -> DetectorResult<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d_model;
        let enc_embed = Linear::new(store, "temporal.enc_embed", in_dim, d, Activation::Identity, &mut rng);
        let dec_embed = Linear::new(store, "temporal.dec_embed", in_dim, d, Activation::Identity, &mut rng);
        let time = TimeEmbedding::new(store, "temporal.time", d, &mut rng);
        let encoders = (0..config.encoder_layers)
            .map(|i| EncoderLayer::new(store, &format!("temporal.enc{i}"), d, config.heads, config.d_ff, &mut rng))
            .collect::<Result<Vec<_>, _>>()?;
        let decoder = DecoderLayer::new(store, "temporal.dec", d, config.heads, &mut rng)?;
        let out_hidden = Linear::new(store, "temporal.out1", d, config.d_ff, Activation::Relu, &mut rng);
        let out_proj = Linear::new(store, "temporal.out2", config.d_ff, in_dim, Activation::Identity, &mut rng);
        Ok(Self { enc_embed, dec_embed, time, encoders, decoder, out_hidden, out_proj, in_dim })
    }

    /// Token width (1 = univariate mode).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// All parameter ids (for stage-2 freezing).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.enc_embed.param_ids();
        ids.extend(self.dec_embed.param_ids());
        ids.extend(self.time.param_ids());
        for e in &self.encoders {
            ids.extend(e.param_ids());
        }
        ids.extend(self.decoder.param_ids());
        ids.extend(self.out_hidden.param_ids());
        ids.extend(self.out_proj.param_ids());
        ids
    }

    /// Records the reconstruction of one window on the tape.
    ///
    /// * `long` — `W × in_dim` token matrix (Eq. 3's `L_t`, transposed to
    ///   token-major layout).
    /// * `short` — `ω × in_dim` token matrix (`S_t`).
    /// * `positions`/`deltas` — absolute positions and inter-observation
    ///   intervals for the long window; the short window uses the trailing
    ///   `ω` entries.
    ///
    /// Returns the `ω × in_dim` reconstruction `Ŷ₁` in `[0, 1]` (Eq. 9–10).
    pub fn reconstruct(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        long: &Matrix,
        short: &Matrix,
        positions: &[f32],
        deltas: &[f32],
    ) -> DetectorResult<NodeId> {
        let w = long.rows();
        let omega = short.rows();
        if positions.len() != w || deltas.len() != w {
            return Err(DetectorError::Invalid(format!(
                "need {w} positions/deltas, got {}/{}",
                positions.len(),
                deltas.len()
            )));
        }
        if omega > w {
            return Err(DetectorError::Invalid(format!("ω={omega} exceeds W={w}")));
        }

        // Input embeddings (Eq. 4): linear projection + time embedding.
        let long_n = g.constant(long.clone());
        let short_n = g.constant(short.clone());
        let te_long = self.time.forward(g, store, positions, deltas)?;
        let ie = self.enc_embed.forward(g, store, long_n)?;
        let ie = g.add(ie, te_long)?;
        let te_short = self
            .time
            .forward(g, store, &positions[w - omega..], &deltas[w - omega..])?;
        let id_ = self.dec_embed.forward(g, store, short_n)?;
        let id_ = g.add(id_, te_short)?;

        // Encoder over the long context (Eq. 7).
        let mut enc = ie;
        for layer in &self.encoders {
            enc = layer.forward(g, store, enc)?;
        }

        // Decoder: short-window queries cross-attend into the encoder (Eq. 8).
        let dec = self.decoder.forward(g, store, id_, enc)?;

        // Output head (Eq. 9): Sigmoid(FFN(O'_D)).
        let h = self.out_hidden.forward(g, store, dec)?;
        let o = self.out_proj.forward(g, store, h)?;
        Ok(g.sigmoid(o)?)
    }

    /// Batched tape-free reconstruction of `blocks` windows at once.
    ///
    /// * `long` — `(blocks·W) × in_dim`: each block's long window stacked
    ///   row-wise.
    /// * `short` — `(blocks·ω) × in_dim`, same block order.
    /// * `positions`/`deltas` — shared by all blocks (the batched caller
    ///   stacks windows from the *same frame*, so the time axis is common).
    ///
    /// Returns the `(blocks·ω) × in_dim` reconstruction, block *b*'s rows
    /// at `b·ω .. (b+1)·ω` — bitwise identical to `blocks` separate
    /// [`reconstruct`](Self::reconstruct) calls, because every projection
    /// GEMM preserves per-row accumulation order under row stacking,
    /// residual adds / layer norms / the output head are row-independent,
    /// and attention is evaluated block-diagonally on row slices. The time
    /// embedding depends only on the shared time axis, so it is computed
    /// once and tiled across blocks.
    pub fn reconstruct_batched(
        &self,
        store: &ParamStore,
        long: &Matrix,
        short: &Matrix,
        positions: &[f32],
        deltas: &[f32],
        blocks: usize,
    ) -> DetectorResult<Matrix> {
        if blocks == 0 {
            return Err(DetectorError::Invalid("batched reconstruct needs ≥ 1 block".into()));
        }
        let w = long.rows() / blocks;
        let omega = short.rows() / blocks;
        if long.rows() != w * blocks || short.rows() != omega * blocks {
            return Err(DetectorError::Invalid(format!(
                "stacked rows {}/{} not divisible by {blocks} blocks",
                long.rows(),
                short.rows()
            )));
        }
        if positions.len() != w || deltas.len() != w {
            return Err(DetectorError::Invalid(format!(
                "need {w} positions/deltas, got {}/{}",
                positions.len(),
                deltas.len()
            )));
        }
        if omega > w {
            return Err(DetectorError::Invalid(format!("ω={omega} exceeds W={w}")));
        }

        // Input embeddings: stacked projection GEMMs + the shared time
        // embedding tiled per block (elementwise add is tiling-safe).
        let te_long = self.time.forward_value(store, positions, deltas)?;
        let te_long = aero_tensor::forward::tile_rows(&te_long, blocks);
        let ie = self.enc_embed.forward_value(store, long)?.add(&te_long)?;
        let te_short =
            self.time.forward_value(store, &positions[w - omega..], &deltas[w - omega..])?;
        let te_short = aero_tensor::forward::tile_rows(&te_short, blocks);
        let id_ = self.dec_embed.forward_value(store, short)?.add(&te_short)?;

        let mut enc = ie;
        for layer in &self.encoders {
            enc = layer.forward_batched(store, &enc, w, blocks)?;
        }

        let dec = self.decoder.forward_batched(store, &id_, &enc, omega, w, blocks)?;

        let h = self.out_hidden.forward_value(store, &dec)?;
        let o = self.out_proj.forward_value(store, &h)?;
        Ok(aero_tensor::forward::sigmoid(&o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(in_dim: usize) -> (TemporalModule, ParamStore, AeroConfig) {
        let cfg = AeroConfig::tiny();
        let mut store = ParamStore::new();
        let m = TemporalModule::new(&mut store, &cfg, in_dim, 42).unwrap();
        (m, store, cfg)
    }

    #[test]
    fn reconstruction_has_short_window_shape() {
        let (m, store, cfg) = module(1);
        let w = cfg.window;
        let omega = cfg.short_window;
        let long = Matrix::from_fn(w, 1, |r, _| (r as f32 / w as f32).sin() * 0.5 + 0.5);
        let short = long.slice_rows(w - omega, omega).unwrap();
        let positions: Vec<f32> = (0..w).map(|i| i as f32).collect();
        let deltas = vec![1.0f32; w];
        let mut g = Graph::new();
        let out = m
            .reconstruct(&mut g, &store, &long, &short, &positions, &deltas)
            .unwrap();
        let v = g.value(out).unwrap();
        assert_eq!(v.shape(), (omega, 1));
        // Sigmoid output stays in (0, 1).
        assert!(v.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn multivariate_mode_emits_all_variates() {
        let (m, store, cfg) = module(3);
        let w = cfg.window;
        let omega = cfg.short_window;
        let long = Matrix::from_fn(w, 3, |r, c| ((r + c) as f32 * 0.1).cos() * 0.4 + 0.5);
        let short = long.slice_rows(w - omega, omega).unwrap();
        let positions: Vec<f32> = (0..w).map(|i| i as f32).collect();
        let deltas = vec![1.0f32; w];
        let mut g = Graph::new();
        let out = m
            .reconstruct(&mut g, &store, &long, &short, &positions, &deltas)
            .unwrap();
        assert_eq!(g.value(out).unwrap().shape(), (omega, 3));
    }

    #[test]
    fn rejects_mismatched_positions() {
        let (m, store, cfg) = module(1);
        let w = cfg.window;
        let long = Matrix::zeros(w, 1);
        let short = Matrix::zeros(cfg.short_window, 1);
        let mut g = Graph::new();
        let bad_pos = vec![0.0f32; w - 1];
        let deltas = vec![1.0f32; w];
        assert!(m
            .reconstruct(&mut g, &store, &long, &short, &bad_pos, &deltas)
            .is_err());
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let (m, mut store, cfg) = module(1);
        let w = cfg.window;
        let omega = cfg.short_window;
        // A clean sinusoid in [0,1].
        let long = Matrix::from_fn(w, 1, |r, _| (r as f32 * 0.3).sin() * 0.4 + 0.5);
        let short = long.slice_rows(w - omega, omega).unwrap();
        let positions: Vec<f32> = (0..w).map(|i| i as f32).collect();
        let deltas = vec![1.0f32; w];
        let mut opt = aero_tensor::Adam::new(2e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            store.zero_grads();
            let mut g = Graph::new();
            let out = m
                .reconstruct(&mut g, &store, &long, &short, &positions, &deltas)
                .unwrap();
            let loss = g.mse_loss(out, &short).unwrap();
            last = g.value(loss).unwrap().scalar_value().unwrap();
            if first.is_none() {
                first = Some(last);
            }
            g.backward(loss, &mut store).unwrap();
            opt.step(&mut store).unwrap();
        }
        assert!(
            last < first.unwrap() * 0.8,
            "loss did not drop: {} → {last}",
            first.unwrap()
        );
    }
}
