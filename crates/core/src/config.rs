//! AERO hyperparameters (paper §IV-B defaults) and ablation switches.

use aero_evt::PotConfig;

/// How the concurrent-noise module builds its graph (Table IV, group 2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum GraphMode {
    /// The paper's window-wise structure learning (Eq. 12–13): a fresh
    /// cosine-similarity graph from each window's reconstruction errors.
    WindowWise,
    /// Ablation 2iii: a static complete graph.
    StaticComplete,
    /// Ablation 2iv: an ESG-style evolving graph — EWMA of the window
    /// similarities with smoothing factor `beta` (larger = more inertia).
    DynamicEwma {
        /// Smoothing factor in `[0, 1)`.
        beta: f32,
    },
}

/// Which features the concurrent-noise GCN propagates (Eq. 14's `Y_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NoiseFeatures {
    /// The stage-1 error matrix `E = Y − Ŷ₁`. This directly implements the
    /// paper's stated insight — "a variate influenced by concurrent noise
    /// … can be effectively reconstructed using the *error patterns* of
    /// other similarly affected variates" — and is the default here because
    /// the mapping neighbours' errors → own error is near-identity for
    /// concurrent noise, which a one-layer GCN can actually learn.
    Errors,
    /// The raw short window `Y_t`, as Eq. 14 literally writes. Kept for the
    /// fidelity ablation (`bench` compares both).
    Window,
}

/// Full model configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AeroConfig {
    /// Long window length `W` (paper: 200).
    pub window: usize,
    /// Short window length `ω` (paper: 60).
    pub short_window: usize,
    /// Transformer hidden width `d_m`.
    pub d_model: usize,
    /// Attention heads (paper: 4).
    pub heads: usize,
    /// Encoder layers (paper: 1).
    pub encoder_layers: usize,
    /// FFN hidden width.
    pub d_ff: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Max epochs per stage (paper: 100, with early stopping).
    pub max_epochs: usize,
    /// Early-stopping patience (paper: 5).
    pub patience: usize,
    /// Stride between training windows (1 = every window; larger strides
    /// subsample for speed without changing the learned patterns).
    pub train_stride: usize,
    /// POT thresholding configuration (paper: level 0.99, q 1e-3).
    pub pot: PotConfig,
    /// RNG seed for parameter init and sampling.
    pub seed: u64,

    // --- ablation switches (all `true`/`WindowWise` in the full model) ---
    /// Use the temporal reconstruction module (off = ablation 1i).
    pub use_temporal: bool,
    /// Feed each variate independently (off = ablation 1ii: joint input).
    pub univariate_input: bool,
    /// Use the short-window decoder input (off = ablation 1iii: ω = W).
    pub use_short_window: bool,
    /// Use the concurrent-noise module (off = ablation 2i).
    pub use_noise_module: bool,
    /// Graph construction mode (ablations 2iii / 2iv).
    pub graph_mode: GraphMode,
    /// GCN input features (see [`NoiseFeatures`]).
    pub noise_features: NoiseFeatures,
    /// Minimum window-graph edge weight kept for message passing; weaker
    /// (spurious) similarities are dropped before row normalization.
    pub edge_threshold: f32,
    /// Number of reconstruct-and-subtract rounds in the noise module at
    /// scoring time. With overlapping concurrent-noise events, a star
    /// carrying two events matches no single neighbour; the first round
    /// removes the dominant shared component, the second mops up the rest.
    pub noise_iterations: usize,
    /// Rescale each variate's noise reconstruction `Ŷ₂` by the least-squares
    /// amplitude `α_v = ⟨Ŷ₂⁽ᵛ⁾, E⁽ᵛ⁾⟩ / ‖Ŷ₂⁽ᵛ⁾‖²` (clamped to `[0, 2]`)
    /// before subtracting. Concurrent noise hits stars with star-specific
    /// gain (cloud optical depth differs per line of sight), so the *pattern*
    /// transfers between stars but the *amplitude* does not; the fit removes
    /// that gain mismatch. A true anomaly's `Ŷ₂` is uncorrelated with its
    /// error, so `α ≈ 0` and the residual is untouched.
    pub amplitude_matching: bool,
    /// Moving-average width applied to the final per-variate score series
    /// (1 = no smoothing). Residual concurrent noise is spiky while true
    /// anomalies are sustained, so light smoothing trades a little response
    /// sharpness for fewer isolated false alarms.
    pub score_smoothing: usize,
    /// Route Stage-1 scoring through the batched cross-star path: all
    /// stars' windows stacked into one `(N·W) × d` matrix, one GEMM per
    /// Transformer layer instead of N small ones. Bitwise identical to the
    /// per-star path (gated in tier-1), so it defaults on; the flag exists
    /// for A/B benchmarking and as an escape hatch. `AERO_BATCHED=0/1`
    /// overrides it at runtime.
    pub batched_inference: bool,
    /// Rank `r` of the per-star adapter head layered over the shared frozen
    /// backbone (`0` = no adapters; the classic monolithic model). Each star
    /// then owns only `2·r·ω + O(1)` scalars — the "delta" that v3
    /// checkpoints and mid-night migration move instead of a model.
    /// `#[serde(default)]` keeps v2 checkpoints loadable.
    #[serde(default)]
    pub adapter_rank: usize,
    /// Online SGD learning rate for the adapter heads.
    #[serde(default = "default_adapter_lr")]
    pub adapter_lr: f32,
    /// Route degraded-rung (`Stage1Only`/`SrFallback`) scoring through the
    /// opt-in int8 quantized GEMM path. Tolerance-gated, default off:
    /// `FullAero` scoring stays bitwise regardless. `AERO_QUANT=1` or
    /// [`crate::model::Aero::set_quantized`] override at runtime.
    #[serde(default)]
    pub quantized_rungs: bool,
}

fn default_adapter_lr() -> f32 {
    0.05
}

fn default_batched_inference() -> bool {
    true
}

impl Default for AeroConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl AeroConfig {
    /// The paper's configuration (W=200, ω=60, 1 encoder layer, 4 heads).
    pub fn paper() -> Self {
        Self {
            window: 200,
            short_window: 60,
            d_model: 32,
            heads: 4,
            encoder_layers: 1,
            d_ff: 64,
            lr: 1e-3,
            max_epochs: 100,
            patience: 5,
            train_stride: 1,
            pot: PotConfig { level: 0.99, q: 1e-3 },
            seed: 7,
            use_temporal: true,
            univariate_input: true,
            use_short_window: true,
            use_noise_module: true,
            graph_mode: GraphMode::WindowWise,
            noise_features: NoiseFeatures::Errors,
            edge_threshold: 0.5,
            noise_iterations: 2,
            amplitude_matching: true,
            score_smoothing: 1,
            batched_inference: default_batched_inference(),
            adapter_rank: 0,
            adapter_lr: default_adapter_lr(),
            quantized_rungs: false,
        }
    }

    /// A reduced configuration for the experiment harnesses: same
    /// architecture, smaller windows/width and subsampled training windows,
    /// so the full 12-method × 6-dataset suite runs on one laptop core.
    /// The paper-scale settings remain available via [`AeroConfig::paper`].
    pub fn fast() -> Self {
        Self {
            window: 100,
            short_window: 30,
            d_model: 16,
            heads: 4,
            d_ff: 32,
            lr: 1.5e-3,
            max_epochs: 15,
            train_stride: 25,
            ..Self::paper()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            window: 40,
            short_window: 12,
            d_model: 8,
            heads: 2,
            d_ff: 16,
            max_epochs: 3,
            train_stride: 25,
            ..Self::paper()
        }
    }

    /// Validates invariants (ω ≤ W, d_model divisible by heads, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.short_window == 0 || self.window == 0 {
            return Err("window sizes must be positive".into());
        }
        if self.short_window > self.window {
            return Err(format!(
                "short window ω={} must not exceed long window W={}",
                self.short_window, self.window
            ));
        }
        if self.heads == 0 || !self.d_model.is_multiple_of(self.heads) {
            return Err(format!(
                "d_model={} must be divisible by heads={}",
                self.d_model, self.heads
            ));
        }
        if self.encoder_layers == 0 {
            return Err("at least one encoder layer required".into());
        }
        if let GraphMode::DynamicEwma { beta } = self.graph_mode {
            if !(0.0..1.0).contains(&beta) {
                return Err(format!("EWMA beta={beta} must be in [0, 1)"));
            }
        }
        if self.adapter_rank > self.effective_short_window() {
            return Err(format!(
                "adapter rank {} exceeds the short window ω={} it projects",
                self.adapter_rank,
                self.effective_short_window()
            ));
        }
        if self.adapter_rank > 0 && !(self.adapter_lr.is_finite() && self.adapter_lr > 0.0) {
            return Err(format!("adapter_lr={} must be positive and finite", self.adapter_lr));
        }
        Ok(())
    }

    /// Effective decoder window: `ω`, or `W` when the short window is
    /// ablated away (Table IV 1iii).
    pub fn effective_short_window(&self) -> usize {
        if self.use_short_window {
            self.short_window
        } else {
            self.window
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = AeroConfig::paper();
        assert_eq!(c.window, 200);
        assert_eq!(c.short_window, 60);
        assert_eq!(c.heads, 4);
        assert_eq!(c.encoder_layers, 1);
        assert_eq!(c.patience, 5);
        assert_eq!(c.max_epochs, 100);
        assert!((c.lr - 1e-3).abs() < 1e-9);
        assert!((c.pot.level - 0.99).abs() < 1e-12);
        assert!((c.pot.q - 1e-3).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = AeroConfig::tiny();
        c.short_window = c.window + 1;
        assert!(c.validate().is_err());

        let mut c = AeroConfig::tiny();
        c.heads = 3; // 8 % 3 != 0
        assert!(c.validate().is_err());

        let mut c = AeroConfig::tiny();
        c.graph_mode = GraphMode::DynamicEwma { beta: 1.5 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn effective_short_window_tracks_ablation() {
        let mut c = AeroConfig::tiny();
        assert_eq!(c.effective_short_window(), 12);
        c.use_short_window = false;
        assert_eq!(c.effective_short_window(), 40);
    }
}
