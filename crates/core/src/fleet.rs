//! Shared-nothing detector fleet: sharded isolation domains behind a
//! routing coordinator.
//!
//! One [`StreamGovernor`](crate::overload::StreamGovernor) owning every star
//! of a field is one panic domain, one WAL, one degradation ladder for the
//! whole sky. The fleet splits the catalog across N shards, each a **fully
//! independent failure domain**: its own `OnlineAero` + governor, its own
//! WAL segment directory (`wal/shard-KKKK/`), its own ladder, suspect set,
//! and work budget. The [`FleetCoordinator`] routes each arriving full-sky
//! frame by a deterministic star→shard assignment, polls every shard (one
//! pool shard per fleet shard via
//! [`aero_parallel::supervised_map_mut`]), and rolls per-shard
//! [`HealthReport`]s up into a [`FleetHealth`] snapshot.
//!
//! # Isolation + recovery invariants
//!
//! - A panicking, erroring, or killed shard is dropped and rebuilt from its
//!   own WAL while every other shard keeps streaming untouched; the
//!   surviving shards' verdict streams are bitwise identical to a run where
//!   the kill never happened (gated by `tests/fleet.rs`).
//! - The rebuilt shard resumes **bitwise**: `resume_wal` replays the
//!   recorded offer/poll interleaving, then the coordinator re-executes the
//!   trailing polls it performed after the shard's last offer, restoring
//!   queue, ladder, suspects, and counters exactly. Replayed and re-executed
//!   verdicts are discarded — they were already emitted.
//! - Shard restarts run under a shard-level [`Supervisor`] unit reusing
//!   [`SupervisorPolicy`]: repeated rebuild failures (e.g. a corrupt WAL
//!   directory) trip that shard's breaker and quarantine it — its slice of
//!   each frame is dropped and counted — until the half-open probe schedule
//!   admits a retry. Per-star breakers inside each shard keep their own
//!   (default-off) schedule.
//! - Every shard WAL segment carries a [`WalIdentity`] (shard id + catalog
//!   hash over the member stars), so resuming the wrong directory — or the
//!   right directory under a different partition — fails with a typed
//!   [`DetectorError::WalMismatch`] instead of silently replaying another
//!   shard's frames.
//!
//! # Measured-cost rebalancing
//!
//! The coordinator keeps a per-star cost ledger fed by the work each
//! serviced verdict actually performed (full pipeline > stage-1 > fallback >
//! hold-last > shed). At every `epoch_frames` routed frames it computes a
//! deterministic LPT (longest-processing-time) [`RebalancePlan`] from
//! `(catalog, seed, costs)` and appends it to the coordinator's own plan
//! WAL, so a resumed process replays the identical plan sequence. By
//! default plans are **advisory during the night** — they are applied when
//! the fleet is next rebuilt, via [`ShardAssignment::from_plan`].
//!
//! # Live migration (`migrate_live`)
//!
//! With [`FleetConfig::migrate_live`] set, the coordinator applies each
//! plan *mid-night* through a WAL-fenced two-phase handoff (DESIGN.md §16):
//! every shard whose membership changes is **fenced** (queue drained with
//! shedding and the ladder frozen — an administrative drain is not load),
//! its full per-star state is snapshotted into a
//! [`MigrationBegin`](crate::migrate::MigrationBegin) record appended to
//! `wal/fleet-plan/migrations.log`, replacement shards are built for the
//! new membership (moved stars' windows aligned onto their destination's
//! timestamps), each gets a fresh **epoch-versioned** WAL directory
//! (`shard-KKKK-eEEEE`) and identity, and a
//! [`MigrationCommit`](crate::migrate::MigrationCommit) record plus
//! per-directory commit markers make the flip durable before routing
//! switches in memory. Fence-drained verdicts are handed to the caller
//! from a per-shard hold-out queue on subsequent polls, so no verdict is
//! lost or duplicated across the handoff.
//!
//! Recovery ([`FleetCoordinator::resume`]) re-derives the whole night from
//! the logs alone: a trailing `Begin` without its `Commit` is rolled back
//! (partial epoch directories deleted, the migration re-executes on the
//! next poll), committed migrations are rolled forward from their recorded
//! snapshots, and each shard's directory chain is replayed
//! segment-by-segment — so a process killed at *any* instant of a handoff
//! resumes with verdict streams, health counters, and the final assignment
//! bitwise identical to a night where the kill never happened (gated by
//! `tests/migration.rs`).

// Streaming modules run unattended for whole nights; a stray `unwrap` is a
// latent crash, so the lint gate forbids them outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use aero_parallel::supervised_map_mut;

use crate::detector::{DetectorError, DetectorResult};
use crate::migrate::{
    self, DetectorState, GovernorState, MigrationBegin, MigrationCommit, MigrationKillPoint,
    MigrationRecord, ShardSnapshot,
};
use crate::online::{HealthReport, OnlineAero};
use crate::overload::{
    Admission, FallbackScorer, GovernedVerdict, LadderLevel, OverloadPolicy, PriorityClass,
    StreamGovernor,
};
use crate::persist::Fnv64;
use crate::supervisor::{Supervisor, SupervisorPolicy, SupervisorStats};
use crate::wal::{WalConfig, WalIdentity, WalRecovery, WalWriter};

/// The star catalog a fleet serves: one stable `u64` id per star, in frame
/// (variate) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarCatalog {
    ids: Vec<u64>,
}

impl StarCatalog {
    /// A catalog of `n` stars with sequential ids `0..n` — the synthetic
    /// nights' convention, where star id == variate index.
    pub fn sequential(n: usize) -> Self {
        Self {
            ids: (0..n as u64).collect(),
        }
    }

    /// A catalog from explicit ids. Ids must be unique: two stars sharing an
    /// id would hash to the same routing key and alias in rebalance plans.
    pub fn from_ids(ids: Vec<u64>) -> DetectorResult<Self> {
        let mut seen = ids.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(DetectorError::Invalid(
                "star catalog contains duplicate ids".into(),
            ));
        }
        Ok(Self { ids })
    }

    /// Number of stars.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The star ids in variate order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// FNV-1a hash over the whole catalog (count + every id, in order).
    pub fn hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(&(self.ids.len() as u64).to_le_bytes());
        for &id in &self.ids {
            h.write(&id.to_le_bytes());
        }
        h.finish()
    }
}

/// Mixes a star id with the fleet seed into a routing key.
fn routing_key(seed: u64, id: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write(&seed.to_le_bytes());
    h.write(&id.to_le_bytes());
    h.finish()
}

/// A deterministic star→shard assignment.
///
/// Constructed by [`partition`](Self::partition) (seeded, cost-blind, sizes
/// differing by at most one) or [`rebalance`](Self::rebalance) (LPT greedy
/// over measured costs). Both are pure functions of their inputs — no clock,
/// no thread count, no iteration-order dependence — which is what lets a
/// resumed or re-thread-counted run reproduce the identical plan stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    num_shards: usize,
    /// `shard_of[star] = shard`.
    shard_of: Vec<usize>,
    /// Per-shard member stars, ascending — the shard's local variate order.
    members: Vec<Vec<usize>>,
    /// 0 for the initial partition; rebalance plans count up from 1.
    epoch: u64,
}

impl ShardAssignment {
    fn validate_shape(catalog: &StarCatalog, num_shards: usize) -> DetectorResult<()> {
        if num_shards == 0 {
            return Err(DetectorError::Invalid("fleet needs at least one shard".into()));
        }
        if num_shards > catalog.len() {
            return Err(DetectorError::Invalid(format!(
                "{} shards over {} stars: every shard must own at least one star",
                num_shards,
                catalog.len()
            )));
        }
        Ok(())
    }

    fn from_shard_of_unchecked(num_shards: usize, shard_of: Vec<usize>, epoch: u64) -> Self {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (star, &shard) in shard_of.iter().enumerate() {
            members[shard].push(star);
        }
        Self {
            num_shards,
            shard_of,
            members,
            epoch,
        }
    }

    /// The initial (cost-blind) partition: stars are ordered by their seeded
    /// routing key and dealt round-robin, so shard sizes differ by at most
    /// one and the assignment is a pure function of `(catalog, seed,
    /// num_shards)`.
    pub fn partition(
        catalog: &StarCatalog,
        num_shards: usize,
        seed: u64,
    ) -> DetectorResult<Self> {
        Self::validate_shape(catalog, num_shards)?;
        let mut order: Vec<usize> = (0..catalog.len()).collect();
        order.sort_by_key(|&star| (routing_key(seed, catalog.ids[star]), catalog.ids[star]));
        let mut shard_of = vec![0usize; catalog.len()];
        for (pos, &star) in order.iter().enumerate() {
            shard_of[star] = pos % num_shards;
        }
        Ok(Self::from_shard_of_unchecked(num_shards, shard_of, 0))
    }

    /// A measured-cost rebalance plan: stars are ordered by `(cost desc,
    /// routing key, id)` and each is assigned to the currently lightest
    /// shard (ties to the lowest shard index) — the classic LPT greedy.
    /// Costs are floored at one unit so an idle star still occupies a slot
    /// and no shard can end up empty. Deterministic in `(catalog, seed,
    /// costs)`.
    pub fn rebalance(
        catalog: &StarCatalog,
        num_shards: usize,
        seed: u64,
        costs: &[u64],
        epoch: u64,
    ) -> DetectorResult<Self> {
        Self::validate_shape(catalog, num_shards)?;
        if costs.len() != catalog.len() {
            return Err(DetectorError::Invalid(format!(
                "cost ledger has {} entries for {} stars",
                costs.len(),
                catalog.len()
            )));
        }
        let mut order: Vec<usize> = (0..catalog.len()).collect();
        order.sort_by_key(|&star| {
            (
                std::cmp::Reverse(costs[star].max(1)),
                routing_key(seed, catalog.ids[star]),
                catalog.ids[star],
            )
        });
        let mut loads = vec![0u64; num_shards];
        let mut shard_of = vec![0usize; catalog.len()];
        for &star in &order {
            let mut lightest = 0usize;
            for (k, &load) in loads.iter().enumerate() {
                if load < loads[lightest] {
                    lightest = k;
                }
            }
            shard_of[star] = lightest;
            loads[lightest] += costs[star].max(1);
        }
        Ok(Self::from_shard_of_unchecked(num_shards, shard_of, epoch))
    }

    /// Rebuilds an assignment from a recorded plan (`shard_of` vector), e.g.
    /// when applying the previous night's final rebalance plan to the next
    /// fleet construction.
    pub fn from_plan(
        catalog: &StarCatalog,
        num_shards: usize,
        shard_of: Vec<usize>,
        epoch: u64,
    ) -> DetectorResult<Self> {
        Self::validate_shape(catalog, num_shards)?;
        if shard_of.len() != catalog.len() {
            return Err(DetectorError::Invalid(format!(
                "plan covers {} stars, catalog has {}",
                shard_of.len(),
                catalog.len()
            )));
        }
        if let Some(&bad) = shard_of.iter().find(|&&s| s >= num_shards) {
            return Err(DetectorError::Invalid(format!(
                "plan names shard {bad} of {num_shards}"
            )));
        }
        Ok(Self::from_shard_of_unchecked(num_shards, shard_of, epoch))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Which shard owns `star`.
    pub fn shard_of(&self, star: usize) -> usize {
        self.shard_of[star]
    }

    /// The full star→shard vector.
    pub fn shard_map(&self) -> &[usize] {
        &self.shard_of
    }

    /// Shard `k`'s member stars, ascending (its local variate order).
    pub fn members(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// The plan epoch this assignment came from (0 = initial partition).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// FNV-1a fingerprint of the assignment (epoch + shard map), used by the
    /// determinism gates to compare plans across runs cheaply.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(&self.epoch.to_le_bytes());
        h.write(&(self.num_shards as u64).to_le_bytes());
        for &s in &self.shard_of {
            h.write(&(s as u64).to_le_bytes());
        }
        h.finish()
    }

    /// The WAL identity of shard `k` under this assignment: the shard index
    /// plus a hash binding the catalog *and* the shard's exact membership,
    /// so a WAL recorded under any other partition is rejected on resume.
    pub fn shard_identity(&self, catalog: &StarCatalog, shard: usize) -> WalIdentity {
        let mut h = Fnv64::new();
        h.write(&catalog.hash().to_le_bytes());
        h.write(&(self.members[shard].len() as u64).to_le_bytes());
        for &star in &self.members[shard] {
            h.write(&catalog.ids[star].to_le_bytes());
        }
        WalIdentity {
            shard_id: shard as u32,
            catalog_hash: h.finish(),
        }
    }

    /// [`shard_identity`](Self::shard_identity) versioned by migration
    /// epoch: equal to the plain identity at epoch 0 (the PR-stable on-disk
    /// format), and mixing the epoch into the hash afterwards — so a star
    /// migrated away and later migrated *back* still gets a fresh identity
    /// (no ABA: the old directory can never be mistaken for the new one).
    pub fn shard_identity_at(
        &self,
        catalog: &StarCatalog,
        shard: usize,
        epoch: u64,
    ) -> WalIdentity {
        let base = self.shard_identity(catalog, shard);
        if epoch == 0 {
            return base;
        }
        let mut h = Fnv64::new();
        h.write(&base.catalog_hash.to_le_bytes());
        h.write(&epoch.to_le_bytes());
        WalIdentity {
            shard_id: base.shard_id,
            catalog_hash: h.finish(),
        }
    }
}

/// Identity stamped on the coordinator's own plan log (not a star shard).
fn plan_log_identity(catalog: &StarCatalog) -> WalIdentity {
    WalIdentity {
        shard_id: u32::MAX,
        catalog_hash: catalog.hash(),
    }
}

/// One recorded rebalance decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalancePlan {
    /// Epoch number (1-based; epoch `e` triggers once `e * epoch_frames`
    /// frames have been routed).
    pub epoch: u64,
    /// The planned star→shard vector.
    pub shard_of: Vec<usize>,
    /// [`ShardAssignment::fingerprint`] of the planned assignment.
    pub fingerprint: u64,
}

/// Builds one shard's detector over the given member stars (global variate
/// indices, ascending). Called at fleet construction and again on every
/// restart, so it must be deterministic: same members, same bits — train
/// from the same calibration slice or load the same checkpoint.
pub type ShardFactory = Arc<dyn Fn(&[usize]) -> DetectorResult<OnlineAero> + Send + Sync>;

/// Fleet-level configuration.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Seed for the routing keys (partition + rebalance tie-breaks).
    pub seed: u64,
    /// Per-shard overload policy (each shard gets its own queue + ladder).
    pub overload: OverloadPolicy,
    /// Shard-level supervision: restart retries, breaker threshold, and the
    /// half-open probe schedule for quarantined shards.
    pub shard_supervision: SupervisorPolicy,
    /// Compute a rebalance plan every this many routed frames (0 disables).
    pub epoch_frames: usize,
    /// Root WAL directory; shard `k` logs under `<root>/shard-KKKK/` and the
    /// coordinator's plan log under `<root>/fleet-plan/`. `None` runs
    /// without WALs (restarts then lose shard state instead of resuming).
    pub wal_root: Option<PathBuf>,
    /// Segment/fsync configuration shared by every per-shard WAL (the
    /// per-shard [`WalIdentity`] is filled in by the coordinator).
    pub wal: WalConfig,
    /// Apply rebalance plans mid-night through the WAL-fenced two-phase
    /// handoff (see the module docs) instead of leaving them advisory.
    /// Default `false`: plans only take effect at the next fleet build.
    pub migrate_live: bool,
    /// Chaos injection for the migration test harness: abort with a typed
    /// error at the given [`MigrationKillPoint`] of the given plan epoch's
    /// handoff, simulating `kill -9` at that phase boundary. The
    /// coordinator is not usable afterwards — drop it and
    /// [`resume`](FleetCoordinator::resume), exactly as a crashed process
    /// would.
    pub chaos_migration_kill: Option<(u64, MigrationKillPoint)>,
}

/// A shard's lifecycle state as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Streaming normally.
    Running,
    /// Dead (panic, error, or chaos kill); restart pending.
    Down,
    /// Shard-level breaker open: restarts short-circuit until the half-open
    /// probe schedule admits one.
    Quarantined,
}

impl ShardState {
    /// Stable lowercase label (JSON summaries, operator tables).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Down => "down",
            Self::Quarantined => "quarantined",
        }
    }
}

/// One shard's slice of a [`FleetHealth`] rollup.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Lifecycle state.
    pub state: ShardState,
    /// Stars the shard owns.
    pub stars: usize,
    /// Verdicts emitted to the fleet caller so far.
    pub emitted: usize,
    /// Current admission-queue depth (0 while down).
    pub queue_depth: usize,
    /// Frame slices this shard dropped while down (this process's run —
    /// lost frames are in no WAL, so a resume restarts the count).
    pub frames_lost: usize,
    /// Last failure message, if the shard ever died.
    pub last_error: Option<String>,
    /// The shard detector's own health report (last snapshot while down).
    pub health: HealthReport,
}

/// Fleet-wide health rollup: per-shard snapshots plus aggregate counters.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Full-sky frames routed (offered) so far.
    pub frames_routed: usize,
    /// Successful shard restarts.
    pub shard_restarts: usize,
    /// Shard deaths (panic, error, chaos kill).
    pub shard_failures: usize,
    /// Shards currently not running.
    pub shards_down: usize,
    /// Per-shard frame slices dropped because the owning shard was down.
    pub frames_lost: usize,
    /// Rebalance plans recorded so far.
    pub rebalance_plans: usize,
    /// Stars re-homed by committed live migrations (cumulative; rebuilt
    /// from the migration log on resume).
    pub stars_moved: usize,
    /// Half-finished migrations rolled back by [`FleetCoordinator::resume`]
    /// (this process's run; an uninterrupted night reports 0).
    pub migrations_rolled_back: usize,
    /// Shard-level supervisor counters (restarts, breaker, probes).
    pub supervisor: SupervisorStats,
    /// Sum of every shard's [`HealthReport`] (see [`HealthReport::absorb`]).
    pub aggregate: HealthReport,
}

/// What [`FleetCoordinator::resume`] recovered.
#[derive(Debug, Clone)]
pub struct FleetResume {
    /// Per-shard replayed verdicts (already emitted by the crashed process;
    /// callers deduplicate against previously-written output).
    pub replayed: Vec<Vec<GovernedVerdict>>,
    /// Per-shard WAL recovery summaries.
    pub recoveries: Vec<WalRecovery>,
    /// Full-sky frames the crashed process had routed (max over shards, so
    /// a shard that died early does not shrink the resume point).
    pub frames_routed: usize,
    /// Rebalance plans recovered from the coordinator's plan log.
    pub plans_recovered: usize,
}

/// Work units one serviced star-verdict charges to the cost ledger, by the
/// pipeline rung that actually ran. Suspects are pinned to the full
/// pipeline whatever the ladder says, and a shed star did no work at all.
fn star_cost(shed: bool, class: PriorityClass, level: LadderLevel) -> u64 {
    if shed {
        return 0;
    }
    if class == PriorityClass::Suspect {
        return 8;
    }
    match level {
        LadderLevel::FullAero => 8,
        LadderLevel::Stage1Only => 4,
        LadderLevel::SrFallback => 2,
        LadderLevel::HoldLast => 1,
    }
}

/// Stars whose owning shard differs between two assignments.
fn moved_stars(old: &[usize], new: &[usize]) -> usize {
    old.iter().zip(new).filter(|(a, b)| a != b).count()
}

/// Accumulates one directory's recovery summary into a shard's chain total
/// (a migrated shard replays several directories on resume).
fn absorb_recovery(into: &mut WalRecovery, r: WalRecovery) {
    into.frames += r.frames;
    into.segments += r.segments;
    into.truncated |= r.truncated;
    into.dropped_bytes += r.dropped_bytes;
    into.dropped_segments += r.dropped_segments;
}

/// Routes full-sky frames across a fleet of shared-nothing shard detectors,
/// isolating faults and rolling health up. See the module docs for the
/// model; `core/tests/fleet.rs` holds the chaos harness.
pub struct FleetCoordinator {
    catalog: StarCatalog,
    assignment: ShardAssignment,
    factory: ShardFactory,
    fallback: Option<FallbackScorer>,
    config: FleetConfig,
    /// Fleet-wide batched-inference override, re-applied to every shard a
    /// restart rebuilds (the factory's model config is the default).
    batched_override: Option<bool>,
    /// Fleet-wide quantized-rung override, same lifecycle as
    /// `batched_override`.
    quantized_override: Option<bool>,
    /// `None` while a shard is down or quarantined.
    shards: Vec<Option<StreamGovernor>>,
    states: Vec<ShardState>,
    last_errors: Vec<Option<String>>,
    /// Health snapshot taken when a shard dies (reported while down).
    last_health: Vec<HealthReport>,
    /// Verdicts emitted to the caller, per shard.
    emitted: Vec<usize>,
    /// Poll calls since the shard's last accepted offer — exactly what a
    /// bitwise restart must re-execute after WAL replay (the WAL's
    /// interleaving metadata only covers polls *before* each offer).
    trailing_polls: Vec<usize>,
    /// Per-star measured cost ledger (global variate order).
    costs: Vec<u64>,
    /// One supervisor unit per shard (restart retries + breaker + probes).
    supervisor: Supervisor,
    plan_log: Option<WalWriter>,
    plans: Vec<RebalancePlan>,
    frames_routed: usize,
    shard_restarts: usize,
    shard_failures: usize,
    frames_lost: usize,
    /// Per-shard slice of `frames_lost` (same increments, per owner).
    frames_lost_per_shard: Vec<usize>,
    /// Plan epoch of each shard's last membership change (0 = never
    /// migrated); selects the shard's WAL directory and identity.
    shard_epochs: Vec<u64>,
    /// Fence-drained verdicts awaiting emission: after a migration the
    /// caller receives these (one per poll round, FIFO) before the new
    /// shard is polled, so the handoff neither drops nor reorders output.
    pending_out: Vec<VecDeque<GovernedVerdict>>,
    /// Post-migration rebuild seed: the merged snapshot a shard restart
    /// must re-install before replaying its current epoch directory.
    seeds: Vec<Option<Arc<(DetectorState, GovernorState)>>>,
    /// Plans already applied live (prefix of `plans`).
    migrations_done: usize,
    stars_moved: usize,
    migrations_rolled_back: usize,
}

impl std::fmt::Debug for FleetCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetCoordinator")
            .field("shards", &self.assignment.num_shards())
            .field("stars", &self.catalog.len())
            .field("frames_routed", &self.frames_routed)
            .finish_non_exhaustive()
    }
}

/// `<root>/shard-KKKK` — one WAL directory per shard, zero-padded so a
/// directory listing sorts in shard order.
pub fn shard_wal_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:04}"))
}

/// Epoch-versioned shard WAL directory: `shard-KKKK` for epoch 0 (the
/// pre-migration layout, unchanged on disk) and `shard-KKKK-eEEEE` after a
/// live migration re-homed the shard at plan epoch `e`. Superseded
/// directories are kept — [`FleetCoordinator::resume`] replays the whole
/// chain — so live migration trades disk for crash-safety; prune old
/// epochs only after archiving a night.
pub fn shard_epoch_wal_dir(root: &Path, shard: usize, epoch: u64) -> PathBuf {
    if epoch == 0 {
        shard_wal_dir(root, shard)
    } else {
        root.join(format!("shard-{shard:04}-e{epoch:04}"))
    }
}

/// `<root>/fleet-plan` — the coordinator's rebalance-plan log.
pub fn plan_wal_dir(root: &Path) -> PathBuf {
    root.join("fleet-plan")
}

impl FleetCoordinator {
    /// Builds a fleet over `catalog` with `assignment`, constructing every
    /// shard through `factory` and creating fresh per-shard WALs under
    /// [`FleetConfig::wal_root`] (directories must be empty; use
    /// [`resume`](Self::resume) for continuation).
    pub fn new(
        catalog: StarCatalog,
        assignment: ShardAssignment,
        factory: ShardFactory,
        fallback: Option<FallbackScorer>,
        config: FleetConfig,
    ) -> DetectorResult<Self> {
        let mut fleet = Self::skeleton(catalog, assignment, factory, fallback, config)?;
        for k in 0..fleet.assignment.num_shards() {
            let mut gov = fleet.build_shard(k)?;
            if let Some(root) = fleet.config.wal_root.clone() {
                let wal_config = fleet.shard_wal_config(k);
                let wal = WalWriter::create(&shard_wal_dir(&root, k), wal_config)?;
                gov.attach_wal(wal)?;
            }
            fleet.shards[k] = Some(gov);
            fleet.states[k] = ShardState::Running;
        }
        if let Some(root) = fleet.config.wal_root.clone() {
            if fleet.config.epoch_frames > 0 {
                let cfg = WalConfig {
                    identity: Some(plan_log_identity(&fleet.catalog)),
                    ..fleet.config.wal
                };
                fleet.plan_log = Some(WalWriter::create(&plan_wal_dir(&root), cfg)?);
            }
        }
        Ok(fleet)
    }

    /// Resumes a fleet from its per-shard WALs, plan log, and migration
    /// log. Pass the **initial** (epoch-0) `assignment` the night started
    /// with — committed live migrations are rolled forward from the logs
    /// and the returned fleet ends on the correct post-migration
    /// assignment.
    ///
    /// Reconstruction order: recorded plans are re-read (never recomputed);
    /// a trailing `Begin` without its `Commit` is rolled back (its partial
    /// epoch directories deleted, the log truncated — the handoff
    /// re-executes on the next poll); then every shard's directory chain is
    /// replayed segment by segment, re-deriving each committed migration's
    /// fence drain and merged snapshot install along the way. Queue,
    /// ladder, counters, and the cost ledger all land bitwise on the
    /// crashed process's state.
    pub fn resume(
        catalog: StarCatalog,
        assignment: ShardAssignment,
        factory: ShardFactory,
        fallback: Option<FallbackScorer>,
        config: FleetConfig,
    ) -> DetectorResult<(Self, FleetResume)> {
        let Some(root) = config.wal_root.clone() else {
            return Err(DetectorError::Invalid(
                "fleet resume needs a WAL root (the fleet ran without one)".into(),
            ));
        };
        let mut fleet = Self::skeleton(catalog, assignment, factory, fallback, config)?;
        let num_shards = fleet.assignment.num_shards();
        if fleet.config.epoch_frames > 0 {
            let cfg = WalConfig {
                identity: Some(plan_log_identity(&fleet.catalog)),
                ..fleet.config.wal
            };
            let (log, frames, _recovery) = WalWriter::resume(&plan_wal_dir(&root), cfg)?;
            for frame in frames {
                let shard_of: Vec<usize> = frame.values.iter().map(|&v| v as usize).collect();
                let plan = ShardAssignment::from_plan(
                    &fleet.catalog,
                    num_shards,
                    shard_of,
                    u64::from(frame.meta.unwrap_or(0)),
                )?;
                fleet.plans.push(RebalancePlan {
                    epoch: plan.epoch(),
                    shard_of: plan.shard_map().to_vec(),
                    fingerprint: plan.fingerprint(),
                });
            }
            fleet.plan_log = Some(log);
        }
        // The migration log: a trailing Begin without its Commit is a
        // half-finished handoff — roll it back to the fence so the night
        // has exactly one deterministic outcome. Everything before it is
        // committed and rolls forward below.
        let plan_dir = plan_wal_dir(&root);
        let mut records = migrate::read_migrations(&plan_dir)?;
        if let Some(last) = records.last() {
            if let MigrationRecord::Begin(b) = &last.record {
                for snap in &b.affected {
                    let dir = shard_epoch_wal_dir(&root, snap.shard as usize, b.epoch);
                    if dir.exists() {
                        std::fs::remove_dir_all(&dir).map_err(|e| {
                            DetectorError::Io(format!(
                                "roll back migration dir {}: {e}",
                                dir.display()
                            ))
                        })?;
                    }
                }
                let offset = last.offset;
                migrate::truncate_migrations(&plan_dir, offset)?;
                fleet.migrations_rolled_back += 1;
                records.pop();
            }
        }
        let mut committed: Vec<MigrationBegin> = Vec::new();
        let mut iter = records.into_iter();
        while let Some(rec) = iter.next() {
            let MigrationRecord::Begin(b) = rec.record else {
                return Err(DetectorError::Corrupt(
                    "migration log: Commit without a preceding Begin".into(),
                ));
            };
            match iter.next().map(|r| r.record) {
                Some(MigrationRecord::Commit(c)) if c.epoch == b.epoch => committed.push(b),
                _ => {
                    return Err(DetectorError::Corrupt(format!(
                        "migration log: Begin epoch {} not followed by its Commit",
                        b.epoch
                    )))
                }
            }
        }
        // Segment-by-segment replay of every shard's directory chain,
        // starting from the epoch-0 layout the caller's assignment
        // describes.
        let mut replayed: Vec<Vec<GovernedVerdict>> = vec![Vec::new(); num_shards];
        let mut recoveries: Vec<WalRecovery> = vec![WalRecovery::default(); num_shards];
        let mut total_frames = vec![0usize; num_shards];
        for k in 0..num_shards {
            let online = fleet.build_online(k)?;
            let (gov, verdicts, recovery) = StreamGovernor::resume_wal(
                online,
                fleet.config.overload.clone(),
                fleet.fallback.clone(),
                &shard_wal_dir(&root, k),
                fleet.shard_wal_config(k),
            )?;
            total_frames[k] += recovery.frames;
            absorb_recovery(&mut recoveries[k], recovery);
            for v in &verdicts {
                fleet.charge_costs(k, v);
            }
            replayed[k].extend(verdicts);
            fleet.shards[k] = Some(gov);
            fleet.states[k] = ShardState::Running;
        }
        for begin in &committed {
            let epoch = begin.epoch;
            let shard_of: Vec<usize> = begin.shard_of.iter().map(|&s| s as usize).collect();
            let planned = ShardAssignment::from_plan(&fleet.catalog, num_shards, shard_of, epoch)?;
            let old_shard_of: Vec<usize> = fleet.assignment.shard_map().to_vec();
            // The live fence ran at the first poll after the epoch-boundary
            // offer — zero unfenced polls in between — so a full fenced
            // drain of the replayed shard reproduces it bitwise.
            for snap in &begin.affected {
                let k = snap.shard as usize;
                let drained = match fleet.shards[k].as_mut() {
                    Some(gov) => gov.drain_fenced()?,
                    None => {
                        return Err(DetectorError::Corrupt(format!(
                            "migration epoch {epoch} names shard {k}, which is not live"
                        )))
                    }
                };
                for v in &drained {
                    fleet.charge_costs(k, v);
                }
                replayed[k].extend(drained);
            }
            // Roll forward: rebuild each affected shard from the recorded
            // snapshots (exactly the live commit's derivation), then replay
            // its new epoch directory before the next migration's fence.
            for snap in &begin.affected {
                let k = snap.shard as usize;
                let new_members = planned.members(k).to_vec();
                let (det, gov_state) =
                    migrate::merge_shard_state(begin, &old_shard_of, k, &new_members)?;
                let seed = Arc::new((det, gov_state));
                let online = fleet.build_online_members(&new_members)?;
                let mut gov = Self::seeded_governor(
                    online,
                    &fleet.config.overload,
                    &fleet.fallback,
                    &seed,
                )?;
                let dir = shard_epoch_wal_dir(&root, k, epoch);
                let identity = planned.shard_identity_at(&fleet.catalog, k, epoch);
                // The marker is advisory (the log is authoritative):
                // validate it when present, restore it when the crash beat
                // the marker write.
                let members_u32: Vec<u32> = new_members.iter().map(|&s| s as u32).collect();
                match migrate::read_commit_marker(&dir, Some(identity))? {
                    Some((marker_epoch, _, _)) if marker_epoch != epoch => {
                        return Err(DetectorError::Corrupt(format!(
                            "commit marker in {} names epoch {marker_epoch}, log says {epoch}",
                            dir.display()
                        )));
                    }
                    Some(_) => {}
                    None => migrate::write_commit_marker(&dir, epoch, identity, &members_u32)?,
                }
                let wal_config = WalConfig {
                    identity: Some(identity),
                    ..fleet.config.wal
                };
                let (verdicts, recovery) = gov.resume_wal_into(&dir, wal_config)?;
                total_frames[k] += recovery.frames;
                absorb_recovery(&mut recoveries[k], recovery);
                for v in &verdicts {
                    fleet.charge_costs_members(&new_members, v);
                }
                replayed[k].extend(verdicts);
                fleet.shards[k] = Some(gov);
                fleet.seeds[k] = Some(seed);
                fleet.shard_epochs[k] = epoch;
            }
            fleet.stars_moved += moved_stars(fleet.assignment.shard_map(), planned.shard_map());
            fleet.assignment = planned;
            fleet.migrations_done += 1;
        }
        for k in 0..num_shards {
            fleet.emitted[k] = replayed[k].len();
            fleet.frames_routed = fleet.frames_routed.max(total_frames[k]);
        }
        let resume = FleetResume {
            frames_routed: fleet.frames_routed,
            plans_recovered: fleet.plans.len(),
            replayed,
            recoveries,
        };
        Ok((fleet, resume))
    }

    fn skeleton(
        catalog: StarCatalog,
        assignment: ShardAssignment,
        factory: ShardFactory,
        fallback: Option<FallbackScorer>,
        config: FleetConfig,
    ) -> DetectorResult<Self> {
        if assignment.shard_map().len() != catalog.len() {
            return Err(DetectorError::Invalid(format!(
                "assignment covers {} stars, catalog has {}",
                assignment.shard_map().len(),
                catalog.len()
            )));
        }
        config.overload.validate().map_err(DetectorError::Invalid)?;
        let num_shards = assignment.num_shards();
        let supervisor = Supervisor::new(config.shard_supervision.clone(), num_shards);
        Ok(Self {
            costs: vec![0; catalog.len()],
            catalog,
            assignment,
            factory,
            fallback,
            config,
            batched_override: None,
            quantized_override: None,
            shards: (0..num_shards).map(|_| None).collect(),
            states: vec![ShardState::Down; num_shards],
            last_errors: vec![None; num_shards],
            last_health: vec![HealthReport::default(); num_shards],
            emitted: vec![0; num_shards],
            trailing_polls: vec![0; num_shards],
            supervisor,
            plan_log: None,
            plans: Vec::new(),
            frames_routed: 0,
            shard_restarts: 0,
            shard_failures: 0,
            frames_lost: 0,
            frames_lost_per_shard: vec![0; num_shards],
            shard_epochs: vec![0; num_shards],
            pending_out: (0..num_shards).map(|_| VecDeque::new()).collect(),
            seeds: vec![None; num_shards],
            migrations_done: 0,
            stars_moved: 0,
            migrations_rolled_back: 0,
        })
    }

    fn shard_wal_config(&self, shard: usize) -> WalConfig {
        WalConfig {
            identity: Some(self.assignment.shard_identity_at(
                &self.catalog,
                shard,
                self.shard_epochs[shard],
            )),
            ..self.config.wal
        }
    }

    /// Routes every shard's Stage-1 through (or around) the batched
    /// cross-star path — see [`crate::Aero::set_batched`]. Applies to live
    /// shards immediately and to every shard a later restart rebuilds.
    pub fn set_batched_inference(&mut self, on: bool) {
        self.batched_override = Some(on);
        for gov in self.shards.iter_mut().flatten() {
            gov.set_batched_inference(on);
        }
    }

    /// Opts every shard's degraded rungs into int8 quantized Stage-1 GEMMs —
    /// see [`crate::Aero::set_quantized`]. Applies to live shards immediately
    /// and to every shard a later restart rebuilds. `FullAero` stars stay on
    /// the f32 path bitwise regardless.
    pub fn set_quantized_rungs(&mut self, on: bool) {
        self.quantized_override = Some(on);
        for gov in self.shards.iter_mut().flatten() {
            gov.set_quantized_rungs(on);
        }
    }

    /// Builds shard `k`'s detector via the factory and validates its width.
    fn build_online(&self, shard: usize) -> DetectorResult<OnlineAero> {
        self.build_online_members(self.assignment.members(shard))
    }

    /// Builds a detector over an explicit member set — the migration path
    /// constructs shards for a membership the live assignment does not have
    /// yet.
    fn build_online_members(&self, members: &[usize]) -> DetectorResult<OnlineAero> {
        let mut online = (self.factory)(members)?;
        if online.num_variates() != members.len() {
            return Err(DetectorError::Invalid(format!(
                "factory built {} variates for {} member stars",
                online.num_variates(),
                members.len()
            )));
        }
        if let Some(on) = self.batched_override {
            online.set_batched_inference(on);
        }
        if let Some(on) = self.quantized_override {
            online.set_quantized_rungs(on);
        }
        Ok(online)
    }

    fn build_shard(&self, shard: usize) -> DetectorResult<StreamGovernor> {
        let online = self.build_online(shard)?;
        let mut gov = StreamGovernor::with_policy(online, self.config.overload.clone())?;
        gov.set_fallback(self.fallback.clone());
        Ok(gov)
    }

    /// Installs a merged migration snapshot into a factory-fresh detector
    /// and wraps it in a governor — the common core of the live commit, the
    /// post-migration shard restart, and the resume roll-forward. Clock
    /// install precedes lane install: the suspect-countdown rebase is
    /// relative to the governor's poll clock.
    fn seeded_governor(
        online: OnlineAero,
        overload: &OverloadPolicy,
        fallback: &Option<FallbackScorer>,
        seed: &(DetectorState, GovernorState),
    ) -> DetectorResult<StreamGovernor> {
        let mut online = online;
        online.install_migration(&seed.0)?;
        let mut gov = StreamGovernor::with_policy(online, overload.clone())?;
        gov.set_fallback(fallback.clone());
        gov.install_clocks(&seed.1);
        let mapping: Vec<(usize, usize)> = (0..seed.1.stars.len()).map(|i| (i, i)).collect();
        gov.install_migration(&seed.1, &mapping)?;
        Ok(gov)
    }

    /// Rebuilds a dead shard to its exact pre-death state: factory, seed
    /// snapshot (when the shard has been migrated this night), WAL replay
    /// of its current epoch directory, then re-execution of the
    /// coordinator's trailing polls. Runs as an associated function so the
    /// supervisor closure borrows nothing from `self`.
    #[allow(clippy::too_many_arguments)]
    fn rebuild_shard(
        factory: &ShardFactory,
        members: &[usize],
        overload: &OverloadPolicy,
        fallback: &Option<FallbackScorer>,
        wal_dir: Option<&Path>,
        wal_config: WalConfig,
        trailing_polls: usize,
        batched: Option<bool>,
        quantized: Option<bool>,
        seed: Option<&(DetectorState, GovernorState)>,
    ) -> DetectorResult<StreamGovernor> {
        let mut online = factory(members)?;
        if online.num_variates() != members.len() {
            return Err(DetectorError::Invalid(format!(
                "factory built {} variates for {} member stars",
                online.num_variates(),
                members.len()
            )));
        }
        if let Some(on) = batched {
            online.set_batched_inference(on);
        }
        if let Some(on) = quantized {
            online.set_quantized_rungs(on);
        }
        let mut gov = match seed {
            Some(seed) => Self::seeded_governor(online, overload, fallback, seed)?,
            None => {
                let mut gov = StreamGovernor::with_policy(online, overload.clone())?;
                gov.set_fallback(fallback.clone());
                gov
            }
        };
        if let Some(dir) = wal_dir {
            // The replayed verdicts and these trailing re-polls were all
            // emitted before the death; discard them so the caller's
            // stream continues without duplicates.
            let (_replayed, _recovery) = gov.resume_wal_into(dir, wal_config)?;
            for _ in 0..trailing_polls {
                gov.poll()?;
            }
        }
        // Without a WAL the restart is a cold start from the seed (or from
        // scratch); isolation still holds, the stream is not bitwise.
        Ok(gov)
    }

    /// Marks shard `k` dead, snapshotting its health for reporting.
    fn fail_shard(&mut self, shard: usize, reason: String) {
        if let Some(gov) = self.shards[shard].take() {
            self.last_health[shard] = gov.online().health().clone();
        }
        self.states[shard] = ShardState::Down;
        self.last_errors[shard] = Some(reason);
        self.shard_failures += 1;
    }

    /// Attempts to bring a dead shard back under the shard-level supervisor:
    /// retries with backoff, then the breaker opens and only the half-open
    /// probe schedule admits further attempts (state `Quarantined`).
    fn ensure_running(&mut self, shard: usize) {
        if self.shards[shard].is_some() {
            return;
        }
        let factory = Arc::clone(&self.factory);
        let members = self.assignment.members(shard).to_vec();
        let overload = self.config.overload.clone();
        let fallback = self.fallback.clone();
        let root = self.config.wal_root.clone();
        let wal_dir = root
            .as_deref()
            .map(|r| shard_epoch_wal_dir(r, shard, self.shard_epochs[shard]));
        let wal_config = self.shard_wal_config(shard);
        let trailing = self.trailing_polls[shard];
        let batched = self.batched_override;
        let quantized = self.quantized_override;
        let seed = self.seeds[shard].clone();
        let outcome = self.supervisor.run(shard, || {
            Self::rebuild_shard(
                &factory,
                &members,
                &overload,
                &fallback,
                wal_dir.as_deref(),
                wal_config,
                trailing,
                batched,
                quantized,
                seed.as_deref(),
            )
        });
        match outcome {
            Ok(gov) => {
                self.shards[shard] = Some(gov);
                self.states[shard] = ShardState::Running;
                self.last_errors[shard] = None;
                self.shard_restarts += 1;
            }
            Err(e) => {
                self.states[shard] = if self.supervisor.is_open(shard) {
                    ShardState::Quarantined
                } else {
                    ShardState::Down
                };
                self.last_errors[shard] = Some(e.into_detector_error().to_string());
            }
        }
    }

    /// Adds a serviced verdict's measured work to the per-star cost ledger.
    fn charge_costs(&mut self, shard: usize, verdict: &GovernedVerdict) {
        for (local, &star) in self.assignment.members[shard].iter().enumerate() {
            self.costs[star] += star_cost(
                verdict.shed[local],
                verdict.classes[local],
                verdict.levels[local],
            );
        }
    }

    /// [`charge_costs`](Self::charge_costs) against an explicit member set:
    /// resume replays verdicts recorded under memberships the in-flight
    /// reconstruction has not switched to (or has already switched past).
    fn charge_costs_members(&mut self, members: &[usize], verdict: &GovernedVerdict) {
        for (local, &star) in members.iter().enumerate() {
            self.costs[star] += star_cost(
                verdict.shed[local],
                verdict.classes[local],
                verdict.levels[local],
            );
        }
    }

    /// Computes (and logs) any rebalance plan whose epoch boundary the
    /// routed-frame count has crossed. Plans recovered from the log are
    /// never recomputed, so a resumed run continues the identical sequence.
    fn maybe_plan(&mut self) -> DetectorResult<()> {
        let every = self.config.epoch_frames;
        if every == 0 {
            return Ok(());
        }
        while (self.plans.len() as u64 + 1) * every as u64 <= self.frames_routed as u64 {
            let epoch = self.plans.len() as u64 + 1;
            let planned = ShardAssignment::rebalance(
                &self.catalog,
                self.assignment.num_shards(),
                self.config.seed,
                &self.costs,
                epoch,
            )?;
            let plan = RebalancePlan {
                epoch,
                shard_of: planned.shard_map().to_vec(),
                fingerprint: planned.fingerprint(),
            };
            if let Some(log) = self.plan_log.as_mut() {
                let values: Vec<f32> = plan.shard_of.iter().map(|&s| s as f32).collect();
                log.append_with_meta(epoch as f64, &values, epoch as u32)?;
            }
            self.plans.push(plan);
        }
        Ok(())
    }

    /// The chaos hook: aborts the handoff with a typed error at the
    /// configured phase boundary, leaving exactly the on-disk state a
    /// `kill -9` at that instant would. The coordinator must be dropped and
    /// resumed afterwards.
    fn chaos_kill(&self, epoch: u64, point: MigrationKillPoint) -> DetectorResult<()> {
        if self.config.chaos_migration_kill == Some((epoch, point)) {
            return Err(DetectorError::Io(format!(
                "chaos: killed at {point:?} of migration epoch {epoch}"
            )));
        }
        Ok(())
    }

    /// Applies every recorded-but-unapplied plan through the two-phase
    /// handoff, in epoch order. Runs at the top of [`poll`](Self::poll),
    /// immediately after [`maybe_plan`](Self::maybe_plan): the
    /// epoch-boundary offer is always the last record of the superseded
    /// directories, so recovery's fence-drain reproduces the live one
    /// exactly (no unfenced poll can slip between boundary and fence).
    fn maybe_migrate(&mut self) -> DetectorResult<()> {
        if !self.config.migrate_live {
            return Ok(());
        }
        while self.migrations_done < self.plans.len() {
            if !self.execute_migration()? {
                // An affected shard is down/quarantined: defer and retry
                // next poll. Recovery is directory-driven, so the deferral
                // shifts nothing — the fence lands wherever the drain does.
                break;
            }
        }
        Ok(())
    }

    /// Executes the next plan's handoff end to end: fence + snapshot,
    /// durable `Begin`, destination build, durable `Commit` + markers,
    /// in-memory flip. `Ok(false)` defers (an affected shard isn't
    /// running). An `Err` mid-handoff leaves the coordinator unusable —
    /// crash-only by design; drop it and [`resume`](Self::resume).
    fn execute_migration(&mut self) -> DetectorResult<bool> {
        let num_shards = self.assignment.num_shards();
        let plan = &self.plans[self.migrations_done];
        let epoch = plan.epoch;
        let planned =
            ShardAssignment::from_plan(&self.catalog, num_shards, plan.shard_of.clone(), epoch)?;
        let affected: Vec<usize> = (0..num_shards)
            .filter(|&k| self.assignment.members(k) != planned.members(k))
            .collect();
        if affected.is_empty() {
            // The plan re-derives the current assignment: nothing moves,
            // no fence, no new directories.
            self.migrations_done += 1;
            return Ok(true);
        }
        self.chaos_kill(epoch, MigrationKillPoint::PreFence)?;
        for &k in &affected {
            self.ensure_running(k);
            if self.shards[k].is_none() {
                return Ok(false);
            }
        }
        // Phase 1 — fence. Each affected shard drains its in-flight queue
        // under the fence (no shedding, ladder frozen), the drained
        // verdicts move to the hold-out queue (their costs charged now, at
        // their true service point), and the shard's full state is
        // exported.
        let mut snapshots = Vec::with_capacity(affected.len());
        for &k in &affected {
            let drained = match self.shards[k].as_mut() {
                Some(gov) => gov.drain_fenced()?,
                None => return Ok(false),
            };
            for v in &drained {
                self.charge_costs(k, v);
            }
            self.pending_out[k].extend(drained);
            let (detector, governor) = match self.shards[k].as_ref() {
                Some(gov) => (gov.online().export_migration()?, gov.export_migration()?),
                None => return Ok(false),
            };
            snapshots.push(ShardSnapshot {
                shard: k as u32,
                members: self
                    .assignment
                    .members(k)
                    .iter()
                    .map(|&s| s as u32)
                    .collect(),
                detector,
                governor,
            });
        }
        self.chaos_kill(epoch, MigrationKillPoint::PostFence)?;
        let record = MigrationRecord::Begin(MigrationBegin {
            epoch,
            frames_routed: self.frames_routed as u64,
            shard_of: planned.shard_map().iter().map(|&s| s as u32).collect(),
            affected: snapshots,
        });
        let root = self.config.wal_root.clone();
        if let Some(root) = &root {
            migrate::append_migration(&plan_wal_dir(root), &record)?;
        }
        let MigrationRecord::Begin(begin) = record else {
            unreachable!()
        };
        // Phase 2 — build each destination: factory model for the new
        // membership, merged snapshot installed (moved stars aligned to the
        // destination's timestamps), fresh epoch-versioned WAL directory.
        let old_shard_of: Vec<usize> = self.assignment.shard_map().to_vec();
        let mut staged = Vec::with_capacity(affected.len());
        for &k in &affected {
            let new_members = planned.members(k).to_vec();
            let (det, gov_state) =
                migrate::merge_shard_state(&begin, &old_shard_of, k, &new_members)?;
            let seed = Arc::new((det, gov_state));
            let online = self.build_online_members(&new_members)?;
            let mut gov =
                Self::seeded_governor(online, &self.config.overload, &self.fallback, &seed)?;
            if let Some(root) = &root {
                let dir = shard_epoch_wal_dir(root, k, epoch);
                if dir.exists() {
                    // Can only be garbage from an attempt that never
                    // committed (a committed epoch advances
                    // `migrations_done` past this plan), so clear it.
                    std::fs::remove_dir_all(&dir).map_err(|e| {
                        DetectorError::Io(format!(
                            "clear stale migration dir {}: {e}",
                            dir.display()
                        ))
                    })?;
                }
                let wal_config = WalConfig {
                    identity: Some(planned.shard_identity_at(&self.catalog, k, epoch)),
                    ..self.config.wal
                };
                let wal = WalWriter::create(&dir, wal_config)?;
                gov.attach_wal(wal)?;
            }
            staged.push((k, gov, seed));
        }
        self.chaos_kill(epoch, MigrationKillPoint::PreCommit)?;
        // Phase 3 — commit: the durable decision record, then a marker in
        // every new directory binding it to its epoch and identity.
        if let Some(root) = &root {
            migrate::append_migration(
                &plan_wal_dir(root),
                &MigrationRecord::Commit(MigrationCommit { epoch }),
            )?;
            for &k in &affected {
                let members: Vec<u32> = planned.members(k).iter().map(|&s| s as u32).collect();
                migrate::write_commit_marker(
                    &shard_epoch_wal_dir(root, k, epoch),
                    epoch,
                    planned.shard_identity_at(&self.catalog, k, epoch),
                    &members,
                )?;
            }
        }
        self.chaos_kill(epoch, MigrationKillPoint::PostCommit)?;
        // Flip — atomic in memory. Replaced governors (and their sealed
        // WAL handles) drop here; the superseded directories stay on disk
        // for recovery replay.
        for (k, gov, seed) in staged {
            self.shards[k] = Some(gov);
            self.states[k] = ShardState::Running;
            self.last_errors[k] = None;
            self.shard_epochs[k] = epoch;
            self.seeds[k] = Some(seed);
            self.trailing_polls[k] = 0;
        }
        self.stars_moved += moved_stars(self.assignment.shard_map(), planned.shard_map());
        self.assignment = planned;
        self.migrations_done += 1;
        Ok(true)
    }

    /// Routes one full-sky frame: each shard receives its member stars'
    /// slice. A dead shard is first offered a restart; if it stays down its
    /// slice is dropped and counted ([`FleetHealth::frames_lost`]) — no
    /// other shard is affected. Returns each shard's admission decision
    /// (`None` for shards that were down or died on this offer).
    pub fn offer(
        &mut self,
        timestamp: f64,
        values: &[f32],
    ) -> DetectorResult<Vec<Option<Admission>>> {
        if values.len() != self.catalog.len() {
            return Err(DetectorError::Invalid(format!(
                "frame width changed: expected {}, got {}",
                self.catalog.len(),
                values.len()
            )));
        }
        self.frames_routed += 1;
        let num_shards = self.assignment.num_shards();
        let mut out = Vec::with_capacity(num_shards);
        for k in 0..num_shards {
            self.ensure_running(k);
            let Some(gov) = self.shards[k].as_mut() else {
                self.frames_lost += 1;
                self.frames_lost_per_shard[k] += 1;
                out.push(None);
                continue;
            };
            let local: Vec<f32> = self.assignment.members(k).iter().map(|&s| values[s]).collect();
            match gov.offer(timestamp, &local) {
                Ok(admission) => {
                    self.trailing_polls[k] = 0;
                    out.push(Some(admission));
                }
                Err(e) => {
                    // Structural or WAL-I/O failure: this shard's domain
                    // only. The frame slice is lost; the shard restarts
                    // from its log on the next service round.
                    self.fail_shard(k, e.to_string());
                    self.frames_lost += 1;
                    self.frames_lost_per_shard[k] += 1;
                    out.push(None);
                }
            }
        }
        Ok(out)
    }

    /// One service round: every live shard is polled once, concurrently (one
    /// pool shard per fleet shard), and results are merged in shard order so
    /// the output is independent of scheduling. A panicking or erroring
    /// shard yields `None` this round, is marked dead, and restarts on the
    /// next round — every other shard's verdict is unaffected.
    pub fn poll(&mut self) -> DetectorResult<Vec<Option<GovernedVerdict>>> {
        self.maybe_plan()?;
        self.maybe_migrate()?;
        let num_shards = self.assignment.num_shards();
        for k in 0..num_shards {
            self.ensure_running(k);
        }
        let results = supervised_map_mut(&mut self.shards, |_k, slot| {
            slot.as_mut().map(StreamGovernor::poll)
        });
        let mut out = Vec::with_capacity(num_shards);
        for (k, result) in results.into_iter().enumerate() {
            let produced = match result {
                // The shard's poll panicked: capture, isolate, restart later.
                Err(shard_err) => {
                    self.fail_shard(k, shard_err.to_string());
                    None
                }
                // Shard was down this round.
                Ok(None) => None,
                // Typed failure from inside the shard (WAL I/O, ...).
                Ok(Some(Err(e))) => {
                    self.fail_shard(k, e.to_string());
                    None
                }
                Ok(Some(Ok(verdict))) => {
                    self.trailing_polls[k] += 1;
                    if let Some(v) = &verdict {
                        self.charge_costs(k, v);
                    }
                    verdict
                }
            };
            // `pending_out` is a pure reorder buffer: a migration's
            // fence-drained verdicts were serviced before the handoff, so
            // they leave first, in order, while the governor keeps its
            // normal one-poll-per-round cadence behind them. Costs were
            // charged at production (fence drain or the poll above), never
            // at emission, so a crash inside this window loses nothing —
            // resume re-derives every verdict and emits the backlog as
            // replayed output.
            let emit = if self.pending_out[k].is_empty() {
                produced
            } else {
                if let Some(v) = produced {
                    self.pending_out[k].push_back(v);
                }
                self.pending_out[k].pop_front()
            };
            if emit.is_some() {
                self.emitted[k] += 1;
            }
            out.push(emit);
        }
        Ok(out)
    }

    /// Polls until every live shard's queue is empty, collecting verdicts
    /// per shard in emission order.
    pub fn drain(&mut self) -> DetectorResult<Vec<Vec<GovernedVerdict>>> {
        let num_shards = self.assignment.num_shards();
        let mut out: Vec<Vec<GovernedVerdict>> = vec![Vec::new(); num_shards];
        loop {
            let round = self.poll()?;
            let mut any = false;
            for (k, verdict) in round.into_iter().enumerate() {
                if let Some(v) = verdict {
                    out[k].push(v);
                    any = true;
                }
            }
            if !any {
                return Ok(out);
            }
        }
    }

    /// Chaos injection: kills shard `k` as a crash would — the governor (and
    /// its unsynced WAL handle) is dropped mid-flight, no snapshotting, no
    /// graceful drain. The coordinator restarts it from its WAL on the next
    /// offer/poll round.
    pub fn kill_shard(&mut self, shard: usize) -> DetectorResult<()> {
        if shard >= self.assignment.num_shards() {
            return Err(DetectorError::Invalid(format!(
                "no shard {shard} in a {}-shard fleet",
                self.assignment.num_shards()
            )));
        }
        if self.shards[shard].is_none() {
            return Ok(());
        }
        self.fail_shard(shard, "killed by chaos injection".into());
        Ok(())
    }

    /// Builds the fleet-wide health rollup.
    pub fn health(&self) -> FleetHealth {
        let num_shards = self.assignment.num_shards();
        let mut shards = Vec::with_capacity(num_shards);
        let mut aggregate = HealthReport::default();
        let mut shards_down = 0usize;
        for k in 0..num_shards {
            let (health, queue_depth) = match self.shards[k].as_ref() {
                Some(gov) => (gov.online().health().clone(), gov.queue_depth()),
                None => {
                    shards_down += 1;
                    (self.last_health[k].clone(), 0)
                }
            };
            aggregate.absorb(&health);
            shards.push(ShardHealth {
                shard: k,
                state: self.states[k],
                stars: self.assignment.members(k).len(),
                emitted: self.emitted[k],
                queue_depth,
                frames_lost: self.frames_lost_per_shard[k],
                last_error: self.last_errors[k].clone(),
                health,
            });
        }
        FleetHealth {
            shards,
            frames_routed: self.frames_routed,
            shard_restarts: self.shard_restarts,
            shard_failures: self.shard_failures,
            shards_down,
            frames_lost: self.frames_lost,
            rebalance_plans: self.plans.len(),
            stars_moved: self.stars_moved,
            migrations_rolled_back: self.migrations_rolled_back,
            supervisor: self.supervisor.stats(),
            aggregate,
        }
    }

    /// The catalog this fleet serves.
    pub fn catalog(&self) -> &StarCatalog {
        &self.catalog
    }

    /// The live star→shard assignment.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// Rebalance plans recorded so far (oldest first).
    pub fn plans(&self) -> &[RebalancePlan] {
        &self.plans
    }

    /// The most recent rebalance plan, if any — apply it to the next fleet
    /// construction via [`ShardAssignment::from_plan`].
    pub fn latest_plan(&self) -> Option<&RebalancePlan> {
        self.plans.last()
    }

    /// The per-star measured cost ledger (global variate order).
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// Full-sky frames routed so far.
    pub fn frames_routed(&self) -> usize {
        self.frames_routed
    }

    /// Shard `k`'s lifecycle state.
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.states[shard]
    }

    /// Plan epoch of shard `k`'s last membership change (0 = never
    /// migrated); names its current WAL directory.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shard_epochs[shard]
    }

    /// Stars re-homed by committed live migrations so far.
    pub fn stars_moved(&self) -> usize {
        self.stars_moved
    }

    /// Half-finished migrations this process rolled back on resume.
    pub fn migrations_rolled_back(&self) -> usize {
        self.migrations_rolled_back
    }

    /// The per-star measured-cost ledger feeding rebalance plans.
    pub fn star_costs(&self) -> &[u64] {
        &self.costs
    }

    /// The shard-level supervisor (restart retries, breaker, probes).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(n: usize) -> StarCatalog {
        StarCatalog::sequential(n)
    }

    #[test]
    fn catalog_hash_is_order_and_content_sensitive() {
        let a = StarCatalog::from_ids(vec![3, 1, 2]).unwrap();
        let b = StarCatalog::from_ids(vec![1, 2, 3]).unwrap();
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), StarCatalog::from_ids(vec![3, 1, 2]).unwrap().hash());
        assert!(StarCatalog::from_ids(vec![1, 1]).is_err());
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let cat = catalog(13);
        let a = ShardAssignment::partition(&cat, 4, 7).unwrap();
        let b = ShardAssignment::partition(&cat, 4, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Sizes differ by at most one and cover every star exactly once.
        let sizes: Vec<usize> = (0..4).map(|k| a.members(k).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
        for star in 0..13 {
            assert!(a.members(a.shard_of(star)).contains(&star));
        }
        // A different seed moves stars around.
        let c = ShardAssignment::partition(&cat, 4, 8).unwrap();
        assert_ne!(a.shard_map(), c.shard_map());
        // Shape validation.
        assert!(ShardAssignment::partition(&cat, 0, 7).is_err());
        assert!(ShardAssignment::partition(&cat, 14, 7).is_err());
    }

    #[test]
    fn rebalance_follows_measured_costs() {
        let cat = catalog(6);
        // One hot star: LPT puts it alone on one shard, spreading the rest.
        let costs = [1000, 1, 1, 1, 1, 1];
        let plan = ShardAssignment::rebalance(&cat, 2, 0, &costs, 1).unwrap();
        let hot = plan.shard_of(0);
        assert_eq!(plan.members(hot), &[0], "hot star isolated");
        assert_eq!(plan.members(1 - hot).len(), 5);
        // All-zero costs still fill every shard (cost floor of one unit).
        let plan = ShardAssignment::rebalance(&cat, 3, 0, &[0; 6], 2).unwrap();
        for k in 0..3 {
            assert!(!plan.members(k).is_empty());
        }
        assert!(ShardAssignment::rebalance(&cat, 2, 0, &[1; 5], 1).is_err());
    }

    #[test]
    fn shard_identities_bind_catalog_and_membership() {
        let cat = catalog(8);
        let a = ShardAssignment::partition(&cat, 2, 1).unwrap();
        let id0 = a.shard_identity(&cat, 0);
        let id1 = a.shard_identity(&cat, 1);
        assert_eq!(id0.shard_id, 0);
        assert_ne!(id0.catalog_hash, id1.catalog_hash);
        // Same shard index under a different membership gets a different
        // identity (here: explicit plans swapping two stars).
        let p1 = ShardAssignment::from_plan(&cat, 2, vec![0, 0, 0, 0, 1, 1, 1, 1], 1).unwrap();
        let p2 = ShardAssignment::from_plan(&cat, 2, vec![0, 0, 0, 1, 0, 1, 1, 1], 1).unwrap();
        assert_ne!(
            p1.shard_identity(&cat, 0).catalog_hash,
            p2.shard_identity(&cat, 0).catalog_hash
        );
    }

    #[test]
    fn from_plan_validates_and_roundtrips() {
        let cat = catalog(5);
        let plan = ShardAssignment::rebalance(&cat, 2, 3, &[5, 4, 3, 2, 1], 4).unwrap();
        let re = ShardAssignment::from_plan(&cat, 2, plan.shard_map().to_vec(), 4).unwrap();
        assert_eq!(plan, re);
        assert!(ShardAssignment::from_plan(&cat, 2, vec![0, 1, 2, 0, 0], 1).is_err());
        assert!(ShardAssignment::from_plan(&cat, 2, vec![0, 1], 1).is_err());
    }

    #[test]
    fn star_costs_rank_pipeline_rungs() {
        use LadderLevel::*;
        use PriorityClass::*;
        assert_eq!(star_cost(true, Nominal, FullAero), 0);
        assert!(star_cost(false, Suspect, HoldLast) == star_cost(false, Nominal, FullAero));
        let mut last = u64::MAX;
        for level in [FullAero, Stage1Only, SrFallback, HoldLast] {
            let c = star_cost(false, Nominal, level);
            assert!(c < last, "costs strictly decrease down the ladder");
            last = c;
        }
    }
}
