//! The TCP shell around [`ServeCore`].
//!
//! Thread layout:
//!
//! ```text
//! acceptor thread ──spawns──▶ connection thread (one per socket)
//!                                   │ decoded requests
//!                                   ▼
//!                         mpsc ──▶ detector loop (serve() caller's thread,
//!                                   owns the ServeCore)
//! ```
//!
//! Admission decisions are made only on the detector thread, in channel
//! arrival order, so they remain a deterministic function of the request
//! sequence. Connection threads do everything untrusted: framed decode with
//! a bounded buffer, per-read deadlines, an idle/stall timeout that defeats
//! slow-loris and mid-frame disconnects, and typed protocol errors. A
//! malformed connection is answered with [`WireMsg::Error`] and dropped;
//! the detector never observes its bytes.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aero_parallel::{supervised_spawn, SupervisedHandle};

use crate::detector::{DetectorError, DetectorResult};
use crate::overload::MAX_TENANT_ID;
use crate::serve::codec::{encode, Decoder, WireError, WireMsg, WIRE_PROTOCOL};
use crate::serve::service::ServeCore;

/// Error codes carried by [`WireMsg::Error`].
const ERR_DECODE: u8 = 1;
const ERR_WIDTH: u8 = 2;
const ERR_VERSION: u8 = 3;
const ERR_STATE: u8 = 4;

/// Socket-layer tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-message payload bound handed to each connection's [`Decoder`].
    pub max_payload: usize,
    /// Deadline for a single `read()`; also the granularity at which idle
    /// connection threads notice a shutdown.
    pub read_timeout: Duration,
    /// Maximum silence (no complete message progress) before a connection is
    /// closed — the slow-loris / torn-frame bound.
    pub idle_timeout: Duration,
    /// Maximum simultaneous connections; later ones are refused with a
    /// typed error.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_payload: crate::serve::codec::DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(10),
            max_connections: 64,
        }
    }
}

/// What a serve run did, returned once the listener shuts down.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The frozen end-of-night summary (drain always runs before return).
    pub summary_json: String,
    /// Connections accepted over the run.
    pub connections: usize,
    /// Connections dropped for wire-protocol violations.
    pub protocol_errors: usize,
    /// Connections refused because `max_connections` was reached.
    pub refused: usize,
}

/// One decoded request forwarded to the detector loop, with a reply lane
/// back to the owning connection thread.
struct Request {
    tenant: u32,
    msg: WireMsg,
    reply: Sender<WireMsg>,
}

struct ConnShared {
    shutdown: Arc<AtomicBool>,
    drain_flag: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    protocol_errors: Arc<AtomicUsize>,
    cfg: ServeConfig,
    stars: usize,
}

/// Runs the service until a wire `Drain` arrives (or `shutdown` is set
/// externally), then drains the core — flush backlog, fsync WAL, freeze the
/// summary — and returns the report. The caller's thread becomes the
/// detector loop; accept and per-connection I/O run on supervised threads.
pub fn serve(
    listener: TcpListener,
    mut core: ServeCore,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
) -> DetectorResult<ServeReport> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DetectorError::Invalid(format!("listener nonblocking: {e}")))?;
    let (tx, rx): (Sender<Request>, Receiver<Request>) = mpsc::channel();
    let drain_flag = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(AtomicUsize::new(0));
    let refused = Arc::new(AtomicUsize::new(0));
    let protocol_errors = Arc::new(AtomicUsize::new(0));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let drain_flag = Arc::clone(&drain_flag);
        let connections = Arc::clone(&connections);
        let refused = Arc::clone(&refused);
        let protocol_errors = Arc::clone(&protocol_errors);
        let cfg = cfg.clone();
        let stars = core.stars();
        supervised_spawn("serve-acceptor", move || {
            accept_loop(
                listener,
                tx,
                ConnShared {
                    shutdown,
                    drain_flag,
                    live: Arc::new(AtomicUsize::new(0)),
                    protocol_errors,
                    cfg,
                    stars,
                },
                connections,
                refused,
            )
        })
        .map_err(|e| DetectorError::Invalid(format!("spawn acceptor: {e}")))?
    };

    // Detector loop: the only thread that touches the core. Requests are
    // serviced strictly in channel order.
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(req) => {
                let reply = match req.msg {
                    WireMsg::Ingest { seq, frames } => {
                        match core.handle_ingest(req.tenant, seq, &frames) {
                            Ok(reply) => reply,
                            Err(DetectorError::Invalid(msg)) if msg.contains("frame width") => {
                                WireMsg::Error { code: ERR_WIDTH, message: msg }
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    WireMsg::Status => WireMsg::StatusJson(core.status_json()),
                    WireMsg::Drain => {
                        let summary = core.handle_drain()?;
                        drain_flag.store(true, Ordering::SeqCst);
                        shutdown.store(true, Ordering::SeqCst);
                        WireMsg::DrainAck(summary)
                    }
                    other => WireMsg::Error {
                        code: ERR_STATE,
                        message: format!("unexpected message on detector lane: {other:?}"),
                    },
                };
                // A dead connection just misses its reply; not an error.
                let _ = req.reply.send(reply);
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    drop(rx);

    // Always leave through a drain: flush backlog, sync the WAL, freeze the
    // summary — whether shutdown came over the wire or from the caller.
    let summary_json = core.handle_drain()?;
    match acceptor.join() {
        Ok(()) => {}
        Err(e) => return Err(DetectorError::Invalid(e.to_string())),
    }
    Ok(ServeReport {
        summary_json,
        connections: connections.load(Ordering::SeqCst),
        protocol_errors: protocol_errors.load(Ordering::SeqCst),
        refused: refused.load(Ordering::SeqCst),
    })
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Request>,
    shared: ConnShared,
    connections: Arc<AtomicUsize>,
    refused: Arc<AtomicUsize>,
) {
    let mut workers: Vec<SupervisedHandle<()>> = Vec::new();
    let mut next_id = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.live.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                    refused.fetch_add(1, Ordering::SeqCst);
                    refuse(stream);
                    continue;
                }
                connections.fetch_add(1, Ordering::SeqCst);
                shared.live.fetch_add(1, Ordering::SeqCst);
                next_id += 1;
                let name = format!("serve-conn-{next_id}");
                let tx = tx.clone();
                let conn = ConnShared {
                    shutdown: Arc::clone(&shared.shutdown),
                    drain_flag: Arc::clone(&shared.drain_flag),
                    live: Arc::clone(&shared.live),
                    protocol_errors: Arc::clone(&shared.protocol_errors),
                    cfg: shared.cfg.clone(),
                    stars: shared.stars,
                };
                match supervised_spawn(&name, move || {
                    connection_loop(stream, tx, &conn);
                    conn.live.fetch_sub(1, Ordering::SeqCst);
                }) {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        shared.live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                // Reap finished workers so a long-lived server doesn't
                // accumulate handles.
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Shutdown: connection threads observe the flag within one read
    // deadline; a panicked worker is contained, not propagated — the report
    // already counts its protocol damage, and the detector state is owned
    // elsewhere.
    for w in workers {
        let _ = w.join();
    }
}

fn refuse(mut stream: TcpStream) {
    let msg = WireMsg::Error { code: ERR_STATE, message: "connection limit reached".into() };
    let _ = stream.write_all(&encode(&msg));
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Drives one client connection: handshake, bounded decode, forwarding to
/// the detector lane, and reply writing. Returns when the client leaves,
/// times out, violates the protocol, or the server shuts down (after drain
/// every in-flight reply is still delivered).
fn connection_loop(mut stream: TcpStream, tx: Sender<Request>, shared: &ConnShared) {
    if stream.set_read_timeout(Some(shared.cfg.read_timeout)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut decoder = Decoder::new(shared.cfg.max_payload);
    let mut tenant: Option<u32> = None;
    let mut chunk = [0u8; 64 * 1024];
    // Stall clock: reset whenever a complete message is decoded. Bounds both
    // total silence and slow-loris drip-feeding of a torn frame.
    let mut last_progress = Instant::now();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) && !shared.drain_flag.load(Ordering::SeqCst) {
            return; // hard shutdown: no farewell owed
        }
        if shared.drain_flag.load(Ordering::SeqCst) {
            // Drained: answer anything still buffered, then leave.
            let _ = drain_buffered(&mut stream, &mut decoder, &tx, &mut tenant, shared);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed (possibly mid-frame: torn bytes die here)
            Ok(n) => {
                decoder.extend(&chunk[..n]);
                loop {
                    match decoder.next() {
                        Ok(Some(msg)) => {
                            last_progress = Instant::now();
                            if !dispatch(&mut stream, msg, &tx, &mut tenant, shared) {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(err) => {
                            protocol_error(&mut stream, shared, &err);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
        if last_progress.elapsed() >= shared.cfg.idle_timeout {
            // Idle or drip-feeding a frame slower than the stall bound.
            let msg = if decoder.buffered() > 0 { "stalled mid-frame" } else { "idle timeout" };
            protocol_error(&mut stream, shared, &WireError::BadPayload(msg.into()));
            return;
        }
    }
}

/// After drain: decode whatever already arrived and answer it (clients get
/// their typed `Draining` rejections), then close.
fn drain_buffered(
    stream: &mut TcpStream,
    decoder: &mut Decoder,
    tx: &Sender<Request>,
    tenant: &mut Option<u32>,
    shared: &ConnShared,
) -> std::io::Result<()> {
    while let Ok(Some(msg)) = decoder.next() {
        if !dispatch(stream, msg, tx, tenant, shared) {
            break;
        }
    }
    stream.shutdown(std::net::Shutdown::Both)
}

fn protocol_error(stream: &mut TcpStream, shared: &ConnShared, err: &WireError) {
    shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
    let msg = WireMsg::Error { code: ERR_DECODE, message: err.to_string() };
    let _ = stream.write_all(&encode(&msg));
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Handles one decoded message. Returns `false` when the connection should
/// close.
fn dispatch(
    stream: &mut TcpStream,
    msg: WireMsg,
    tx: &Sender<Request>,
    tenant: &mut Option<u32>,
    shared: &ConnShared,
) -> bool {
    match msg {
        WireMsg::Hello { tenant: t, protocol } => {
            if protocol != WIRE_PROTOCOL {
                let reply = WireMsg::Error {
                    code: ERR_VERSION,
                    message: format!("protocol {protocol} unsupported (server speaks {WIRE_PROTOCOL})"),
                };
                let _ = stream.write_all(&encode(&reply));
                return false;
            }
            if t > MAX_TENANT_ID {
                let reply = WireMsg::Error {
                    code: ERR_STATE,
                    message: format!("tenant {t} exceeds the {MAX_TENANT_ID} maximum"),
                };
                let _ = stream.write_all(&encode(&reply));
                return false;
            }
            *tenant = Some(t);
            let ack = WireMsg::HelloAck { protocol: WIRE_PROTOCOL, stars: shared.stars as u32 };
            stream.write_all(&encode(&ack)).is_ok()
        }
        WireMsg::Ingest { seq, frames } => {
            let Some(t) = *tenant else {
                let reply = WireMsg::Error {
                    code: ERR_STATE,
                    message: "Ingest before Hello".into(),
                };
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = stream.write_all(&encode(&reply));
                return false;
            };
            forward(stream, tx, t, WireMsg::Ingest { seq, frames })
        }
        WireMsg::Status => forward(stream, tx, tenant.unwrap_or(0), WireMsg::Status),
        WireMsg::Drain => forward(stream, tx, tenant.unwrap_or(0), WireMsg::Drain),
        WireMsg::Bye => false,
        // Server-to-client tags arriving at the server are protocol abuse.
        other => {
            shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
            let reply = WireMsg::Error {
                code: ERR_STATE,
                message: format!("client sent a server-side message: {other:?}"),
            };
            let _ = stream.write_all(&encode(&reply));
            false
        }
    }
}

/// Sends one request to the detector lane and writes its reply back. The
/// per-request channel keeps replies on the right connection without the
/// detector knowing sockets exist.
fn forward(stream: &mut TcpStream, tx: &Sender<Request>, tenant: u32, msg: WireMsg) -> bool {
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(Request { tenant, msg, reply: reply_tx }).is_err() {
        return false; // detector loop gone (post-drain)
    }
    match reply_rx.recv() {
        Ok(reply) => {
            let closing = matches!(reply, WireMsg::Error { .. });
            if stream.write_all(&encode(&reply)).is_err() {
                return false;
            }
            !closing
        }
        Err(_) => false,
    }
}
