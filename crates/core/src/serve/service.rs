//! The detector-side state machine behind `aero serve`.
//!
//! [`ServeCore`] owns the [`StreamGovernor`] and is driven by exactly one
//! thread (the server's detector loop, or a test). Every admission,
//! shedding, and drain decision is a pure function of the order in which
//! `handle_*` calls arrive — no wall-clock anywhere — so a service resumed
//! from its WAL and fed the remaining offers reproduces verdicts, counters,
//! and the verdict log bitwise.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use crate::detector::{DetectorError, DetectorResult};
use crate::online::FrameDisposition;
use crate::overload::{Admission, GovernedVerdict, RejectReason, StreamGovernor};
use crate::report::{health_json, stream_summary_json, JsonObject};
use crate::serve::codec::{WireFrame, WireMsg};

/// Service lifecycle. Transitions only forward: `Running` → `Draining` →
/// `Drained`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeState {
    /// Accepting and servicing ingest batches.
    Running,
    /// Drain requested: new ingests are rejected, backlog is being flushed.
    Draining,
    /// Backlog flushed, WAL synced, final summary written.
    Drained,
}

impl ServeState {
    /// Lowercase label for status documents.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Draining => "draining",
            Self::Drained => "drained",
        }
    }
}

/// Construction options for [`ServeCore`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Where to write the verdict log (one line per serviced frame, float
    /// bits in hex — the artefact the bitwise restart test compares).
    /// `None` disables logging.
    pub verdict_log: Option<PathBuf>,
}

/// The single-threaded detector service: multi-tenant admission, the drain
/// lifecycle, the verdict log, and status/summary JSON.
pub struct ServeCore {
    gov: StreamGovernor,
    state: ServeState,
    stars: usize,
    /// Frames recovered from the WAL before the service went live.
    replayed: usize,
    /// Live offers since startup (not counting replay).
    offered: usize,
    admitted: usize,
    rejected: usize,
    flagged_frames: usize,
    flagged_points: usize,
    verdict_log: Option<BufWriter<File>>,
    final_summary: Option<String>,
}

impl std::fmt::Debug for ServeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeCore")
            .field("state", &self.state)
            .field("stars", &self.stars)
            .field("replayed", &self.replayed)
            .field("offered", &self.offered)
            .finish_non_exhaustive()
    }
}

impl ServeCore {
    /// Wraps a governor (tenant quota already configured in its policy).
    /// The verdict log, if requested, is created fresh — resume rewrites it
    /// from the replayed verdicts via [`absorb_replay`](Self::absorb_replay)
    /// so an interrupted-then-resumed night produces the identical file.
    pub fn new(gov: StreamGovernor, opts: ServeOptions) -> DetectorResult<Self> {
        if gov.policy().tenant_quota.is_none() {
            return Err(DetectorError::Invalid(
                "ServeCore requires OverloadPolicy::tenant_quota (every wire offer is tenanted)"
                    .into(),
            ));
        }
        let verdict_log = match &opts.verdict_log {
            Some(path) => Some(BufWriter::new(
                File::create(path).map_err(|e| {
                    DetectorError::Invalid(format!(
                        "cannot create verdict log {}: {e}",
                        path.display()
                    ))
                })?,
            )),
            None => None,
        };
        let stars = gov.online().num_variates();
        Ok(Self {
            gov,
            state: ServeState::Running,
            stars,
            replayed: 0,
            offered: 0,
            admitted: 0,
            rejected: 0,
            flagged_frames: 0,
            flagged_points: 0,
            verdict_log,
            final_summary: None,
        })
    }

    /// Folds the verdicts replayed by [`StreamGovernor::resume_wal`] into the
    /// night's tallies and rewrites the verdict log with them, so the log and
    /// summary of a resumed run match an uninterrupted one byte for byte.
    pub fn absorb_replay(
        &mut self,
        verdicts: &[GovernedVerdict],
        frames_replayed: usize,
    ) -> DetectorResult<()> {
        self.replayed = frames_replayed;
        for v in verdicts {
            self.record(v)?;
        }
        Ok(())
    }

    /// Stars per frame the wrapped detector expects.
    pub fn stars(&self) -> usize {
        self.stars
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServeState {
        self.state
    }

    /// Live offers so far (excludes WAL replay). A reconnecting client asks
    /// for this via `Status` and skips what the server already has — the
    /// server's WAL, not the client's memory, is the source of truth.
    pub fn offered(&self) -> usize {
        self.offered
    }

    fn record(&mut self, v: &GovernedVerdict) -> DetectorResult<()> {
        if v.verdict.disposition == FrameDisposition::Scored && v.verdict.any_anomalous() {
            self.flagged_frames += 1;
            self.flagged_points += v.verdict.flagged().len();
        }
        if let Some(log) = self.verdict_log.as_mut() {
            // One line per serviced frame, every float as raw bits: the
            // restart test compares these files bytewise.
            let mut line = String::with_capacity(24 + 9 * v.verdict.stars.len());
            let _ = write!(line, "{:016x}", v.verdict.timestamp.to_bits());
            let mut mask = String::new();
            for (i, star) in v.verdict.stars.iter().enumerate() {
                let _ = write!(line, " {:08x}", star.score.to_bits());
                if star.anomalous {
                    let _ = write!(mask, "{}{i}", if mask.is_empty() { "" } else { "+" });
                }
            }
            let _ = writeln!(line, " [{mask}]");
            log.write_all(line.as_bytes())
                .map_err(|e| DetectorError::Invalid(format!("verdict log write failed: {e}")))?;
        }
        Ok(())
    }

    /// One ingest batch from `tenant`: service one poll, then offer every
    /// frame through the governor's tenant path (the wire batch is the
    /// arrival tick — same offer/poll interleaving as `aero stream`'s burst
    /// schedule). The poll comes *first* so it is recorded in this batch's
    /// own first offer's WAL meta word: a server killed between batches
    /// loses no poll from its log, and a `--resume`d run re-executes the
    /// interleaving bitwise. Errors are structural (frame width, WAL I/O)
    /// and poison the connection, never the detector.
    pub fn handle_ingest(
        &mut self,
        tenant: u32,
        seq: u64,
        frames: &[WireFrame],
    ) -> DetectorResult<WireMsg> {
        if self.state != ServeState::Running {
            // Draining rejections are service-level: they are not offered to
            // the governor and not WAL'd, so replay of the WAL never has to
            // reproduce a shutdown that the resumed process is not in.
            return Ok(WireMsg::Reject {
                seq,
                reason: RejectReason::Draining,
                admitted: 0,
                rejected: frames.len() as u16,
            });
        }
        if let Some(v) = self.gov.poll()? {
            self.record(&v)?;
        }
        let mut admitted = 0u16;
        let mut rejected = 0u16;
        let mut first_reason = None;
        let mut depth = self.gov.queue_depth();
        for frame in frames {
            if frame.values.len() != self.stars {
                return Err(DetectorError::Invalid(format!(
                    "frame width changed: expected {}, got {}",
                    self.stars,
                    frame.values.len()
                )));
            }
            self.offered += 1;
            match self.gov.offer_from(tenant, frame.timestamp, &frame.values)? {
                Admission::Accepted { depth: d } => {
                    admitted += 1;
                    self.admitted += 1;
                    depth = d;
                }
                Admission::Rejected { reason, depth: d } => {
                    rejected += 1;
                    self.rejected += 1;
                    first_reason.get_or_insert(reason);
                    depth = d;
                }
            }
        }
        Ok(match first_reason {
            None => WireMsg::Ack { seq, admitted, depth: depth as u32 },
            Some(reason) => WireMsg::Reject { seq, reason, admitted, rejected },
        })
    }

    /// The status document (the `/health` analogue, served on the same
    /// wire): lifecycle, frame totals, and the full nested health report.
    pub fn status_json(&self) -> String {
        JsonObject::new()
            .str("state", self.state.label())
            .num("stars", self.stars)
            .num("replayed", self.replayed)
            .num("offered", self.offered)
            .num("admitted", self.admitted)
            .num("rejected", self.rejected)
            .num("queue_depth", self.gov.queue_depth())
            .num("polls", self.gov.polls())
            .num("flagged_frames", self.flagged_frames)
            .num("flagged_points", self.flagged_points)
            .raw("health", &health_json(self.gov.online().health()))
            .finish()
    }

    /// The end-of-night summary (same shape as `aero stream`'s).
    pub fn summary_json(&self) -> String {
        stream_summary_json(
            self.gov.online().health(),
            &self.gov.online().supervisor().stats(),
            self.replayed,
            self.offered,
            self.flagged_frames,
            self.flagged_points,
        )
    }

    /// Graceful drain: stop admitting, flush the entire backlog through the
    /// detector, fsync the WAL, flush the verdict log, and freeze the final
    /// summary. Idempotent — a second drain returns the frozen summary.
    pub fn handle_drain(&mut self) -> DetectorResult<String> {
        if let Some(summary) = &self.final_summary {
            return Ok(summary.clone());
        }
        self.state = ServeState::Draining;
        let backlog = self.gov.drain()?;
        for v in &backlog {
            self.record(v)?;
        }
        if let Some(log) = self.verdict_log.as_mut() {
            log.flush()
                .and_then(|_| log.get_ref().sync_all())
                .map_err(|e| DetectorError::Invalid(format!("verdict log sync failed: {e}")))?;
        }
        if let Some(mut wal) = self.gov.take_wal() {
            wal.sync()?;
            self.gov.attach_wal(wal)?;
        }
        self.state = ServeState::Drained;
        let summary = self.summary_json();
        self.final_summary = Some(summary.clone());
        Ok(summary)
    }

    /// Consumes the core, returning the governor (tests inspect health and
    /// counters through it).
    pub fn into_governor(self) -> StreamGovernor {
        self.gov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeroConfig;
    use crate::model::Aero;
    use crate::online::{DegradePolicy, OnlineAero};
    use crate::overload::{OverloadPolicy, TenantQuota};
    use crate::Detector;
    use aero_datagen::SyntheticConfig;
    use aero_evt::PotConfig;

    /// Trains the tiny model once per test binary; each test loads a copy.
    fn checkpoint() -> &'static std::path::Path {
        static PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
        PATH.get_or_init(|| {
            let path = std::env::temp_dir()
                .join(format!("aero_serve_model_{}.json", std::process::id()));
            let dataset = SyntheticConfig::tiny(11).build();
            let mut cfg = AeroConfig::tiny();
            cfg.max_epochs = 2;
            let mut model = Aero::new(cfg).unwrap();
            model.fit(&dataset.train).unwrap();
            crate::persist::save_model(&model, &path).unwrap();
            path
        })
    }

    fn fresh_online() -> OnlineAero {
        let model = crate::persist::load_model(checkpoint()).unwrap();
        let dataset = SyntheticConfig::tiny(11).build();
        OnlineAero::with_policy(
            model,
            &dataset.train,
            PotConfig::default(),
            DegradePolicy::default(),
        )
        .unwrap()
    }

    fn tiny_core(queue_cap: usize, quota: TenantQuota) -> (ServeCore, usize) {
        let online = fresh_online();
        let stars = online.num_variates();
        let policy = OverloadPolicy {
            queue_capacity: queue_cap,
            high_watermark: queue_cap / 2,
            low_watermark: (queue_cap / 8).max(1),
            tenant_quota: Some(quota),
            ..OverloadPolicy::default()
        };
        let gov = StreamGovernor::with_policy(online, policy).unwrap();
        (ServeCore::new(gov, ServeOptions::default()).unwrap(), stars)
    }

    fn batch(stars: usize, t0: f64, n: usize) -> Vec<WireFrame> {
        (0..n)
            .map(|i| WireFrame { timestamp: t0 + i as f64, values: vec![0.1; stars] })
            .collect()
    }

    #[test]
    fn requires_tenant_quota() {
        let gov = StreamGovernor::new(fresh_online()).unwrap();
        assert!(ServeCore::new(gov, ServeOptions::default()).is_err());
    }

    #[test]
    fn ingest_acks_and_polls() {
        let (mut core, stars) = tiny_core(64, TenantQuota::default());
        let reply = core.handle_ingest(3, 1, &batch(stars, 0.0, 2)).unwrap();
        let WireMsg::Ack { seq, admitted, .. } = reply else {
            panic!("expected ack, got {reply:?}")
        };
        assert_eq!((seq, admitted), (1, 2));
        assert_eq!(core.offered(), 2);
        // The poll precedes the offers (it services the *previous* batch),
        // so the first batch leaves both frames queued …
        assert!(core.status_json().contains("\"queue_depth\":2"));
        // … and the second batch's leading poll services one of them.
        core.handle_ingest(3, 2, &batch(stars, 2.0, 1)).unwrap();
        assert!(core.status_json().contains("\"queue_depth\":2"));
        assert!(core.status_json().contains("\"polls\":1"));
    }

    #[test]
    fn quota_exhaustion_is_typed() {
        let (mut core, stars) = tiny_core(64, TenantQuota { burst: 1, refill_per_poll: 0 });
        // Burst of 1: first frame admitted, second rejected on quota.
        let reply = core.handle_ingest(0, 7, &batch(stars, 0.0, 3)).unwrap();
        let WireMsg::Reject { seq, reason, admitted, rejected } = reply else {
            panic!("expected reject, got {reply:?}")
        };
        assert_eq!(seq, 7);
        assert_eq!(reason, RejectReason::QuotaExceeded);
        assert_eq!((admitted, rejected), (1, 2));
    }

    #[test]
    fn drain_rejects_further_ingest_and_freezes_summary() {
        let (mut core, stars) = tiny_core(64, TenantQuota::default());
        core.handle_ingest(0, 1, &batch(stars, 0.0, 4)).unwrap();
        let summary = core.handle_drain().unwrap();
        assert_eq!(core.state(), ServeState::Drained);
        assert!(summary.starts_with("{\"frames\":"), "{summary}");
        // Backlog fully flushed.
        assert!(core.status_json().contains("\"queue_depth\":0"));
        let reply = core.handle_ingest(0, 2, &batch(stars, 10.0, 1)).unwrap();
        assert!(
            matches!(reply, WireMsg::Reject { reason: RejectReason::Draining, .. }),
            "{reply:?}"
        );
        // Idempotent: second drain returns the same frozen document.
        assert_eq!(core.handle_drain().unwrap(), summary);
    }

    #[test]
    fn width_mismatch_is_an_error_not_a_panic() {
        let (mut core, stars) = tiny_core(64, TenantQuota::default());
        let bad = vec![WireFrame { timestamp: 0.0, values: vec![0.0; stars + 1] }];
        assert!(core.handle_ingest(0, 1, &bad).is_err());
        // The detector survives: a good batch still works.
        let ok = core.handle_ingest(0, 2, &batch(stars, 1.0, 1)).unwrap();
        assert!(matches!(ok, WireMsg::Ack { .. }));
    }

    #[test]
    fn status_json_nests_health() {
        let (core, _) = tiny_core(64, TenantQuota::default());
        let status = core.status_json();
        assert!(status.contains("\"state\":\"running\""), "{status}");
        assert!(status.contains("\"health\":{"), "{status}");
        assert!(status.contains("\"overload\":{"), "{status}");
        assert!(status.contains("\"tenants\":["), "{status}");
    }
}
