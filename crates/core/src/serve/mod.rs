//! The resident `aero serve` network service (DESIGN.md §15).
//!
//! Three layers, strictly separated so everything below the socket is
//! deterministic and unit-testable without a network:
//!
//! * [`codec`] — the length-delimited, checksummed wire protocol. Pure
//!   bytes↔[`codec::WireMsg`]; bounded incremental decoding; every
//!   malformed input is a typed [`codec::WireError`].
//! * [`service`] — [`service::ServeCore`], the single-threaded detector
//!   state machine: multi-tenant admission through
//!   [`crate::StreamGovernor::offer_from`], the drain lifecycle, the
//!   verdict log, and the status / summary JSON documents. Every decision
//!   is a pure function of the order messages are handed to it, which is
//!   what makes a WAL-resumed service bitwise identical to an
//!   uninterrupted one.
//! * [`server`] — the TCP shell: one acceptor thread plus one supervised
//!   thread per connection, all funneling decoded requests over an
//!   `mpsc` channel into the detector thread that owns the `ServeCore`.
//!   Connection threads enforce read deadlines, idle timeouts, and decode
//!   bounds; a poisoned connection dies alone, the detector never sees a
//!   byte of it.

pub mod codec;
pub mod server;
pub mod service;

pub use codec::{
    encode, wire_checksum, Decoder, WireError, WireFrame, WireMsg, DEFAULT_MAX_PAYLOAD,
    WIRE_HEADER_LEN, WIRE_MAGIC, WIRE_PROTOCOL,
};
pub use server::{serve, ServeConfig, ServeReport};
pub use service::{ServeCore, ServeOptions, ServeState};
