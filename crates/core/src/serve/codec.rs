//! Wire codec for the resident `aero serve` ingest endpoint.
//!
//! Length-delimited, checksummed binary framing, symmetric in both
//! directions (DESIGN.md §15):
//!
//! ```text
//! [magic: b"AWP1"] [len: u32 LE] [crc: u64 LE = FNV-1a(payload)] [payload: len bytes]
//! payload = tag: u8 | tag-specific fields, all little-endian
//! ```
//!
//! Float fields travel as raw IEEE bits, so an encode→decode round trip is
//! bitwise — the same contract the WAL relies on, pinned here by the
//! `wire_codec` proptest suite. The decoder is **incremental and bounded**:
//! bytes are fed in as they arrive, a message is surfaced once complete, and
//! a corrupted length prefix can never provoke an oversized allocation
//! (the length is validated against [`Decoder::max_payload`] before any
//! buffer grows past it). Every malformed input maps to a typed
//! [`WireError`]; none panic.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

use crate::overload::RejectReason;
use crate::persist::Fnv64;

/// Magic bytes opening every wire message.
pub const WIRE_MAGIC: [u8; 4] = *b"AWP1";

/// Fixed header: magic + payload length + payload checksum.
pub const WIRE_HEADER_LEN: usize = 4 + 4 + 8;

/// Protocol version carried in `Hello` / `HelloAck`.
pub const WIRE_PROTOCOL: u16 = 1;

/// Default upper bound on one message's payload (1 MiB).
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// Typed decode failure. Everything here poisons only the *connection*
/// (the server drops it); the detector behind the codec never sees a byte
/// of a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds the decoder's payload bound.
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// The decoder's bound.
        max: usize,
    },
    /// The stream is not positioned at a message boundary.
    BadMagic([u8; 4]),
    /// Payload bytes do not match the header checksum (torn or corrupted).
    BadChecksum {
        /// Checksum from the header.
        expected: u64,
        /// Checksum of the received payload.
        found: u64,
    },
    /// Unknown message tag.
    UnknownTag(u8),
    /// The payload is shorter than its tag requires, or a field is invalid.
    BadPayload(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte bound")
            }
            Self::BadMagic(bytes) => write!(f, "bad magic {bytes:02x?}"),
            Self::BadChecksum { expected, found } => {
                write!(f, "checksum mismatch: header {expected:#018x}, payload {found:#018x}")
            }
            Self::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            Self::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One star frame inside an [`WireMsg::Ingest`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// Frame timestamp (bits preserved, NaN included).
    pub timestamp: f64,
    /// Per-star values (bits preserved).
    pub values: Vec<f32>,
}

/// Every message either side of the wire can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client handshake: who is offering, speaking which protocol.
    Hello {
        /// Wire tenant id (0..=[`crate::overload::MAX_TENANT_ID`]).
        tenant: u32,
        /// Client protocol version.
        protocol: u16,
    },
    /// A batch of star frames offered for admission.
    Ingest {
        /// Client-assigned batch sequence number (echoed in the response).
        seq: u64,
        /// The frames, oldest first.
        frames: Vec<WireFrame>,
    },
    /// Request the JSON status document.
    Status,
    /// Ask the service to drain gracefully (admin).
    Drain,
    /// Orderly goodbye; the server closes after acknowledging.
    Bye,
    /// Server handshake reply: protocol + expected frame width.
    HelloAck {
        /// Server protocol version.
        protocol: u16,
        /// Stars per frame the detector expects.
        stars: u32,
    },
    /// Whole batch admitted.
    Ack {
        /// Echo of the batch sequence.
        seq: u64,
        /// Frames admitted (the whole batch).
        admitted: u16,
        /// Queue depth after the batch.
        depth: u32,
    },
    /// Batch partially or fully rejected; `reason` is the first rejection's.
    Reject {
        /// Echo of the batch sequence.
        seq: u64,
        /// Why the first rejected frame was turned away.
        reason: RejectReason,
        /// Frames admitted before/between rejections.
        admitted: u16,
        /// Frames rejected.
        rejected: u16,
    },
    /// Status response: a JSON document (see `report::health_json`).
    StatusJson(
        /// The JSON document.
        String,
    ),
    /// Drain complete: the final summary JSON document.
    DrainAck(
        /// The JSON document.
        String,
    ),
    /// Fatal protocol-level error; the server closes the connection after
    /// sending this.
    Error {
        /// Machine-readable code (1 = decode, 2 = frame width, 3 = version,
        /// 4 = state).
        code: u8,
        /// Human-readable description.
        message: String,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_INGEST: u8 = 0x02;
const TAG_STATUS: u8 = 0x03;
const TAG_DRAIN: u8 = 0x04;
const TAG_BYE: u8 = 0x05;
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_ACK: u8 = 0x82;
const TAG_REJECT: u8 = 0x83;
const TAG_STATUS_JSON: u8 = 0x84;
const TAG_DRAIN_ACK: u8 = 0x85;
const TAG_ERROR: u8 = 0x86;

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::Backpressure => 1,
        RejectReason::QuotaExceeded => 2,
        RejectReason::Draining => 3,
    }
}

fn reason_from(code: u8) -> Result<RejectReason, WireError> {
    match code {
        1 => Ok(RejectReason::Backpressure),
        2 => Ok(RejectReason::QuotaExceeded),
        3 => Ok(RejectReason::Draining),
        other => Err(WireError::BadPayload(format!("unknown reject reason {other}"))),
    }
}

/// FNV-1a-64 over a payload — the checksum carried in the wire header.
/// Public so fault injectors (`aero loadgen`) can build frames that are
/// valid right up to a deliberately corrupted byte.
pub fn wire_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload);
    h.finish()
}

/// Encodes one message as a complete wire frame (header + payload).
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    match msg {
        WireMsg::Hello { tenant, protocol } => {
            p.push(TAG_HELLO);
            p.extend_from_slice(&tenant.to_le_bytes());
            p.extend_from_slice(&protocol.to_le_bytes());
        }
        WireMsg::Ingest { seq, frames } => {
            p.push(TAG_INGEST);
            p.extend_from_slice(&seq.to_le_bytes());
            p.extend_from_slice(&(frames.len() as u16).to_le_bytes());
            for frame in frames {
                p.extend_from_slice(&frame.timestamp.to_bits().to_le_bytes());
                p.extend_from_slice(&(frame.values.len() as u32).to_le_bytes());
                for &v in &frame.values {
                    p.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
        WireMsg::Status => p.push(TAG_STATUS),
        WireMsg::Drain => p.push(TAG_DRAIN),
        WireMsg::Bye => p.push(TAG_BYE),
        WireMsg::HelloAck { protocol, stars } => {
            p.push(TAG_HELLO_ACK);
            p.extend_from_slice(&protocol.to_le_bytes());
            p.extend_from_slice(&stars.to_le_bytes());
        }
        WireMsg::Ack { seq, admitted, depth } => {
            p.push(TAG_ACK);
            p.extend_from_slice(&seq.to_le_bytes());
            p.extend_from_slice(&admitted.to_le_bytes());
            p.extend_from_slice(&depth.to_le_bytes());
        }
        WireMsg::Reject { seq, reason, admitted, rejected } => {
            p.push(TAG_REJECT);
            p.extend_from_slice(&seq.to_le_bytes());
            p.push(reason_code(*reason));
            p.extend_from_slice(&admitted.to_le_bytes());
            p.extend_from_slice(&rejected.to_le_bytes());
        }
        WireMsg::StatusJson(json) => {
            p.push(TAG_STATUS_JSON);
            p.extend_from_slice(json.as_bytes());
        }
        WireMsg::DrainAck(json) => {
            p.push(TAG_DRAIN_ACK);
            p.extend_from_slice(json.as_bytes());
        }
        WireMsg::Error { code, message } => {
            p.push(TAG_ERROR);
            p.push(*code);
            p.extend_from_slice(message.as_bytes());
        }
    }
    let mut out = Vec::with_capacity(WIRE_HEADER_LEN + p.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&(p.len() as u32).to_le_bytes());
    out.extend_from_slice(&wire_checksum(&p).to_le_bytes());
    out.extend_from_slice(&p);
    out
}

/// Cursor-based little-endian field reader over one payload.
struct Fields<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Fields<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| WireError::BadPayload("payload truncated".into()))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap_or([0; 2])))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap_or([0; 4])))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap_or([0; 8])))
    }

    fn rest_utf8(&mut self) -> Result<String, WireError> {
        let bytes = &self.bytes[self.at..];
        self.at = self.bytes.len();
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::BadPayload("invalid UTF-8".into()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload(format!(
                "{} trailing bytes after message",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Decodes one payload (header already validated).
fn decode_payload(payload: &[u8]) -> Result<WireMsg, WireError> {
    let mut f = Fields::new(payload);
    let tag = f.u8()?;
    let msg = match tag {
        TAG_HELLO => WireMsg::Hello { tenant: f.u32()?, protocol: f.u16()? },
        TAG_INGEST => {
            let seq = f.u64()?;
            let nframes = f.u16()? as usize;
            let mut frames = Vec::with_capacity(nframes.min(1024));
            for _ in 0..nframes {
                let timestamp = f64::from_bits(f.u64()?);
                let n = f.u32()? as usize;
                // The payload length already bounds n (4 bytes per value
                // must fit in what remains) — check before allocating.
                if n > (payload.len() - f.at) / 4 {
                    return Err(WireError::BadPayload(format!(
                        "frame claims {n} values but only {} bytes remain",
                        payload.len() - f.at
                    )));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(f32::from_bits(f.u32()?));
                }
                frames.push(WireFrame { timestamp, values });
            }
            WireMsg::Ingest { seq, frames }
        }
        TAG_STATUS => WireMsg::Status,
        TAG_DRAIN => WireMsg::Drain,
        TAG_BYE => WireMsg::Bye,
        TAG_HELLO_ACK => WireMsg::HelloAck { protocol: f.u16()?, stars: f.u32()? },
        TAG_ACK => WireMsg::Ack { seq: f.u64()?, admitted: f.u16()?, depth: f.u32()? },
        TAG_REJECT => WireMsg::Reject {
            seq: f.u64()?,
            reason: reason_from(f.u8()?)?,
            admitted: f.u16()?,
            rejected: f.u16()?,
        },
        TAG_STATUS_JSON => WireMsg::StatusJson(f.rest_utf8()?),
        TAG_DRAIN_ACK => WireMsg::DrainAck(f.rest_utf8()?),
        TAG_ERROR => WireMsg::Error { code: f.u8()?, message: f.rest_utf8()? },
        other => return Err(WireError::UnknownTag(other)),
    };
    f.done()?;
    Ok(msg)
}

/// Incremental, bounded wire decoder. Feed arriving bytes with
/// [`extend`](Self::extend), then pull complete messages with
/// [`next`](Self::next) until it returns `Ok(None)`. Once any call returns
/// an error the connection is poisoned — the caller must drop it (resyncing
/// inside a corrupted byte stream cannot be trusted).
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes already consumed from the front of `buf` (compacted lazily).
    head: usize,
    max_payload: usize,
}

impl Decoder {
    /// A decoder accepting payloads up to `max_payload` bytes.
    pub fn new(max_payload: usize) -> Self {
        Self { buf: Vec::new(), head: 0, max_payload }
    }

    /// The payload bound.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// Bytes currently buffered (bounded by one message + one read chunk).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.head > 0 && self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > self.max_payload {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete message, if one is buffered. The length
    /// prefix is validated against the payload bound *before* the decoder
    /// waits for (or buffers) the claimed bytes, so a corrupted length can
    /// never force an unbounded allocation.
    ///
    /// Not an `Iterator`: the fallible `Result<Option<_>>` shape is the
    /// point — callers must distinguish "need more bytes" from "poisoned
    /// stream".
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WireMsg>, WireError> {
        let pending = &self.buf[self.head..];
        if pending.len() < WIRE_HEADER_LEN {
            return Ok(None);
        }
        let magic: [u8; 4] = pending[..4].try_into().unwrap_or([0; 4]);
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let len = u32::from_le_bytes(pending[4..8].try_into().unwrap_or([0; 4]));
        if len as usize > self.max_payload {
            return Err(WireError::Oversized { len, max: self.max_payload });
        }
        let expected = u64::from_le_bytes(pending[8..16].try_into().unwrap_or([0; 8]));
        let total = WIRE_HEADER_LEN + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = &pending[WIRE_HEADER_LEN..total];
        let found = wire_checksum(payload);
        if found != expected {
            return Err(WireError::BadChecksum { expected, found });
        }
        let msg = decode_payload(payload)?;
        self.head += total;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMsg) {
        let bytes = encode(&msg);
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&bytes);
        assert_eq!(dec.next().unwrap(), Some(msg));
        assert_eq!(dec.next().unwrap(), None);
    }

    #[test]
    fn every_message_kind_round_trips() {
        roundtrip(WireMsg::Hello { tenant: 17, protocol: WIRE_PROTOCOL });
        roundtrip(WireMsg::Ingest {
            seq: 9,
            frames: vec![
                WireFrame { timestamp: 100.5, values: vec![1.0, -2.5, 3.25] },
                WireFrame { timestamp: 101.5, values: vec![0.0, f32::MIN_POSITIVE, -0.0] },
            ],
        });
        roundtrip(WireMsg::Status);
        roundtrip(WireMsg::Drain);
        roundtrip(WireMsg::Bye);
        roundtrip(WireMsg::HelloAck { protocol: WIRE_PROTOCOL, stars: 8 });
        roundtrip(WireMsg::Ack { seq: 3, admitted: 4, depth: 12 });
        roundtrip(WireMsg::Reject {
            seq: 4,
            reason: RejectReason::QuotaExceeded,
            admitted: 1,
            rejected: 3,
        });
        roundtrip(WireMsg::StatusJson("{\"ok\":true}".into()));
        roundtrip(WireMsg::DrainAck("{}".into()));
        roundtrip(WireMsg::Error { code: 1, message: "bad magic".into() });
    }

    #[test]
    fn nan_timestamps_survive_bitwise() {
        let msg = WireMsg::Ingest {
            seq: 0,
            frames: vec![WireFrame {
                timestamp: f64::from_bits(0x7ff8_0000_dead_beef),
                values: vec![f32::from_bits(0x7fc0_1234)],
            }],
        };
        let bytes = encode(&msg);
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&bytes);
        let Some(WireMsg::Ingest { frames, .. }) = dec.next().unwrap() else {
            panic!("expected ingest");
        };
        assert_eq!(frames[0].timestamp.to_bits(), 0x7ff8_0000_dead_beef);
        assert_eq!(frames[0].values[0].to_bits(), 0x7fc0_1234);
    }

    #[test]
    fn split_delivery_reassembles() {
        let bytes = encode(&WireMsg::Ack { seq: 77, admitted: 2, depth: 5 });
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        for chunk in bytes.chunks(3) {
            dec.extend(chunk);
        }
        assert_eq!(dec.next().unwrap(), Some(WireMsg::Ack { seq: 77, admitted: 2, depth: 5 }));
    }

    #[test]
    fn pipelined_messages_decode_in_order() {
        let mut stream = encode(&WireMsg::Status);
        stream.extend_from_slice(&encode(&WireMsg::Bye));
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&stream);
        assert_eq!(dec.next().unwrap(), Some(WireMsg::Status));
        assert_eq!(dec.next().unwrap(), Some(WireMsg::Bye));
        assert_eq!(dec.next().unwrap(), None);
    }

    #[test]
    fn garbage_magic_is_typed_not_panic() {
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(b"GARBAGEGARBAGEGARBAGE");
        assert!(matches!(dec.next(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut dec = Decoder::new(1024);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        dec.extend(&bytes);
        assert_eq!(dec.next(), Err(WireError::Oversized { len: u32::MAX, max: 1024 }));
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = encode(&WireMsg::Hello { tenant: 3, protocol: 1 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&bytes);
        assert!(matches!(dec.next(), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn truncated_frame_waits_instead_of_erroring() {
        let bytes = encode(&WireMsg::Status);
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&bytes[..bytes.len() - 1]);
        assert_eq!(dec.next().unwrap(), None, "incomplete: need more bytes");
        dec.extend(&bytes[bytes.len() - 1..]);
        assert_eq!(dec.next().unwrap(), Some(WireMsg::Status));
    }

    #[test]
    fn ingest_value_count_cannot_overallocate() {
        // Hand-craft an ingest whose frame claims far more values than the
        // payload holds: must be a typed error, not an allocation.
        let mut p = vec![TAG_INGEST];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&1u16.to_le_bytes());
        p.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes()); // claimed value count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&wire_checksum(&p).to_le_bytes());
        bytes.extend_from_slice(&p);
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&bytes);
        assert!(matches!(dec.next(), Err(WireError::BadPayload(_))));
    }

    #[test]
    fn trailing_bytes_after_message_are_rejected() {
        let mut p = vec![TAG_STATUS, 0xAA];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&wire_checksum(&p).to_le_bytes());
        bytes.append(&mut p);
        let mut dec = Decoder::new(DEFAULT_MAX_PAYLOAD);
        dec.extend(&bytes);
        assert!(matches!(dec.next(), Err(WireError::BadPayload(_))));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::Oversized { len: 9, max: 4 }.to_string().contains("9"));
        assert!(WireError::UnknownTag(0x7f).to_string().contains("0x7f"));
        assert!(WireError::BadMagic(*b"HTTP").to_string().contains("magic"));
    }
}
