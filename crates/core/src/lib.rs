//! # aero-core
//!
//! The AERO anomaly detector from *"From Chaos to Clarity: Time Series
//! Anomaly Detection in Astronomical Observations"* (ICDE 2024):
//!
//! * a **temporal reconstruction module** — a shared-weight Transformer
//!   encoder-decoder applied independently per variate (star), with a long
//!   context window `W` and a short reconstruction window `ω` and an
//!   irregular-interval time embedding;
//! * a **concurrent-noise reconstruction module** — a self-loop-free GCN
//!   whose graph is re-learned *per window* from the first module's
//!   reconstruction errors (window-wise graph structure learning), so that
//!   spatially/temporally random noise can be reconstructed from similarly
//!   affected stars while true anomalies cannot;
//! * **two-stage training** (Algorithm 1) and **online detection** with POT
//!   thresholding (Algorithm 2);
//! * the common [`Detector`] trait and [`run_detection`] pipeline shared
//!   with all baselines, plus Table IV ablation variants and the Fig. 7
//!   memory model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adapter;
pub mod config;
pub mod detector;
pub mod fleet;
pub mod graph_learn;
pub mod memory;
pub mod migrate;
pub mod model;
pub mod online;
pub mod overload;
pub mod persist;
pub mod report;
pub mod serve;
pub mod supervisor;
pub mod temporal;
pub mod wal;

pub use ablation::AblationVariant;
pub use adapter::{AdapterSet, StarAdapter};
pub use config::{AeroConfig, GraphMode, NoiseFeatures};
pub use detector::{
    run_detection, Detector, DetectorError, DetectorResult, RunOutcome, RunTiming,
};
pub use fleet::{
    FleetConfig, FleetCoordinator, FleetHealth, FleetResume, RebalancePlan, ShardAssignment,
    ShardFactory, ShardHealth, ShardState, StarCatalog,
};
pub use graph_learn::{window_adjacency, GraphBuilder};
pub use memory::{
    aero_inference_memory, aero_memory, baseline_memory, shared_fleet_memory, star_delta_bytes,
    MemoryEstimate, SharedFleetEstimate,
};
pub use migrate::{
    DetectorState, GovernorStarState, GovernorState, MigrationBegin, MigrationCommit,
    MigrationKillPoint, MigrationRecord, ShardSnapshot, StarLane,
};
pub use model::{Aero, BackboneSnapshot, ChaosHook, ScoreMode, ShardFailure, StarDelta};
pub use online::{
    DegradePolicy, FrameDisposition, FrameVerdict, HealthReport, OnlineAero, StarStatus,
    StarVerdict,
};
pub use overload::{
    Admission, FallbackScorer, GovernedVerdict, LadderLevel, OverloadCounters, OverloadPolicy,
    PriorityClass, RejectReason, StreamGovernor, TenantCounters, TenantQuota, TenantRollup,
    MAX_TENANT_ID,
};
pub use persist::{load_model, save_model};
pub use report::{
    build_catalog, health_json, json_escape, overload_json, render_catalog, render_fleet_health,
    stream_summary_json, supervisor_json, tenants_json, EventCandidate, JsonObject,
};
pub use serve::{ServeConfig, ServeCore, ServeOptions, ServeReport, ServeState};
pub use supervisor::{
    BreakerState, SupervisionError, Supervisor, SupervisorPolicy, SupervisorStats,
};
pub use temporal::TemporalModule;
pub use wal::{
    FsyncPolicy, WalConfig, WalFinding, WalFindingKind, WalFrame, WalIdentity, WalRecovery,
    WalVerifyReport, WalWriter,
};
