//! Write-ahead log for the online stream.
//!
//! `save_model` checkpoints are crash-safe but coarse: a kill between
//! checkpoints silently loses every frame pushed since the last save. The WAL
//! closes that gap — [`OnlineAero::push`](crate::online::OnlineAero::push)
//! appends each incoming frame here *before* any state mutation or scoring,
//! so a resumed process can reconstruct the exact pre-crash state by loading
//! the checkpoint and replaying the log. PR 2's determinism contract is what
//! makes the replay *exact*: pushing the same frames in the same order
//! reproduces every score, verdict, and health counter to the bit (gated by
//! `tests/crash_recovery.rs`).
//!
//! # On-disk format
//!
//! A WAL directory holds numbered segment files `wal-000000.seg`,
//! `wal-000001.seg`, … Each segment starts with a 16-byte header
//! (`b"AEROWAL1"` magic + `u64` LE segment sequence number) followed by
//! length-prefixed, checksummed records. Fleet shards write an extended
//! 32-byte header instead (`b"AEROWAL2"` magic + `u64` LE sequence +
//! `u64` LE catalog hash + `u32` LE shard id + `u32` LE reserved) carrying a
//! [`WalIdentity`], so a resume pointed at the wrong shard's directory — or
//! at a log recorded under a different catalog partition — fails with a
//! typed [`DetectorError::WalMismatch`] instead of silently replaying
//! another shard's frames:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [checksum: u64 LE]   // FNV-1a(payload)
//! payload = frame_index: u64 LE | timestamp_bits: u64 LE
//!         | n: u32 LE | n × value_bits: u32 LE
//!         | [meta: u32 LE]                                 // optional
//! ```
//!
//! The trailing `meta` word is optional and disambiguated by length: a
//! payload of exactly `20 + 4n` bytes has no meta, `24 + 4n` bytes carries
//! one. [`OnlineAero::push`](crate::online::OnlineAero::push) writes plain
//! records; the overload governor ([`crate::overload`]) writes each offered
//! frame with `meta` = the number of service polls performed since the
//! previous offer, which is exactly the information a resume needs to replay
//! the same offer/poll interleaving — and therefore the same admission,
//! shed, and ladder decisions — that the crashed process made.
//!
//! The checksum reuses the FNV-1a scheme of the v2 checkpoint format.
//! Segments rotate every [`WalConfig::frames_per_segment`] records; old
//! segments are never rewritten. Rotation also fsyncs the **directory**
//! (policy permitting) so the new segment's directory entry is durable, and
//! [`WalWriter::resume`] fsyncs the directory after deleting post-cut
//! segments so a crash immediately after recovery cannot resurrect them.
//!
//! # Recovery invariants
//!
//! A crash can leave a torn tail (partial record), a bit-flipped record, or a
//! half-created segment. [`replay`] scans segments in sequence order and
//! accepts the **longest valid prefix**: it stops at the first record that is
//! short, fails its checksum, or breaks the monotonically-contiguous
//! `frame_index` chain, and ignores any later segment. [`WalWriter::resume`]
//! additionally truncates the cut segment to its last valid record and
//! deletes the ignored segments, so the post-recovery log is exactly the
//! accepted prefix and appending continues from there.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for per-frame latency: `Never` leaves
//! flushing to the OS (a process kill — the chaos-harness scenario — loses
//! nothing because the file is already written; only a whole-machine crash
//! can), `EverySegment` fsyncs at rotation, `EveryRecord` fsyncs each append.
//! The `wal_overhead` rows of `BENCH_parallel.json` record the measured cost.

// Streaming modules run unattended for whole nights; a stray `unwrap` is a
// latent crash, so the lint gate forbids them outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::detector::{DetectorError, DetectorResult};
use crate::persist::Fnv64;

/// Magic bytes opening every legacy (unidentified) segment file.
pub const WAL_MAGIC: [u8; 8] = *b"AEROWAL1";

/// Magic bytes opening every identified (fleet-shard) segment file.
pub const WAL_MAGIC_V2: [u8; 8] = *b"AEROWAL2";

/// Legacy segment header: magic + u64 sequence number.
const SEGMENT_HEADER_LEN: u64 = 16;

/// Identified segment header: magic + u64 sequence + u64 catalog hash +
/// u32 shard id + u32 reserved.
const SEGMENT_HEADER_V2_LEN: u64 = 32;

/// Upper bound on one record's payload (guards against reading a corrupted
/// length prefix as a multi-gigabyte allocation).
const MAX_PAYLOAD_BYTES: u32 = 1 << 24;

/// When to fsync WAL appends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; the OS flushes on its own schedule. Survives process
    /// kills (the chaos-harness crash model) but not power loss.
    Never,
    /// Fsync when a segment fills and rotates (and on graceful close).
    #[default]
    EverySegment,
    /// Fsync after every appended record. Maximum durability, maximum cost.
    EveryRecord,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`never` | `segment` | `record`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "never" => Some(Self::Never),
            "segment" => Some(Self::EverySegment),
            "record" => Some(Self::EveryRecord),
            _ => None,
        }
    }
}

/// Who a WAL belongs to: one shard of one catalog partition.
///
/// Stamped into every segment header (the `AEROWAL2` format) when
/// [`WalConfig::identity`] is set. On resume the stored identity must match
/// the expected one word-for-word; a legacy `AEROWAL1` segment (no identity)
/// is also rejected when an identity is expected, because an unidentified
/// log cannot prove it holds this shard's frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalIdentity {
    /// Shard index within the fleet (coordinator logs use `u32::MAX`).
    pub shard_id: u32,
    /// Hash of the catalog partition the shard serves (star ids + membership).
    pub catalog_hash: u64,
}

impl fmt::Display for WalIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} / catalog {:#018x}",
            self.shard_id, self.catalog_hash
        )
    }
}

/// Write-ahead-log configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Records per segment before rotating to a new file.
    pub frames_per_segment: usize,
    /// Durability policy.
    pub fsync: FsyncPolicy,
    /// When set, segments are written with the identified `AEROWAL2` header
    /// and recovery rejects segments whose stored identity differs. `None`
    /// (the default) keeps the legacy single-detector format bit-identical.
    pub identity: Option<WalIdentity>,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            frames_per_segment: 512,
            fsync: FsyncPolicy::default(),
            identity: None,
        }
    }
}

/// One logged frame, exactly as it was handed to `push`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// 0-based position in the push stream.
    pub frame: u64,
    /// The frame's timestamp (raw bits are preserved, NaN included).
    pub timestamp: f64,
    /// The frame's values (raw bits preserved).
    pub values: Vec<f32>,
    /// Optional caller metadata. The overload governor stores the number of
    /// service polls performed since the previous offer, so resume can
    /// replay the exact offer/poll interleaving. Plain
    /// [`WalWriter::append`] records carry `None`.
    pub meta: Option<u32>,
}

/// What [`replay`] / [`WalWriter::resume`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Frames in the accepted prefix.
    pub frames: usize,
    /// Segment files scanned (accepted ones, including the cut segment).
    pub segments: usize,
    /// Whether a torn/corrupt record cut the log short.
    pub truncated: bool,
    /// Bytes discarded from the cut segment's tail.
    pub dropped_bytes: u64,
    /// Later segments ignored (and deleted on resume) past the cut.
    pub dropped_segments: usize,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> DetectorError {
    DetectorError::Io(format!("{what} {}: {e}", path.display()))
}

/// Classifies a *write-path* failure: a full device (ENOSPC, or the short
/// write `write_all` reports as `WriteZero`) becomes the typed
/// [`DetectorError::WalFull`] so the governor can degrade instead of
/// treating it like a transient I/O fault; everything else stays
/// [`DetectorError::Io`].
fn write_err(what: &str, path: &Path, e: std::io::Error) -> DetectorError {
    let full = e.raw_os_error() == Some(28) // POSIX ENOSPC
        || matches!(e.kind(), std::io::ErrorKind::WriteZero);
    if full {
        DetectorError::WalFull(format!("{what} {}: {e}", path.display()))
    } else {
        io_err(what, path, e)
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.seg"))
}

/// Fsyncs the WAL directory itself, making file creations and deletions
/// durable. File-content fsync does not cover directory entries: without
/// this, a crash right after rotation can lose the new segment's entry, and
/// a crash right after [`WalWriter::resume`] can resurrect a deleted
/// post-cut segment. On platforms where directories cannot be opened for
/// syncing, the error is surfaced to the caller.
fn fsync_dir(dir: &Path) -> DetectorResult<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync dir", dir, e))
}

fn record_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload);
    h.finish()
}

fn encode_record(frame: u64, timestamp: f64, values: &[f32], meta: Option<u32>) -> Vec<u8> {
    let payload_len = 8 + 8 + 4 + 4 * values.len() + if meta.is_some() { 4 } else { 0 };
    let mut buf = Vec::with_capacity(4 + payload_len + 8);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&frame.to_le_bytes());
    buf.extend_from_slice(&timestamp.to_bits().to_le_bytes());
    buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    if let Some(m) = meta {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    let checksum = record_checksum(&buf[4..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Little-endian `u32` at `at`, if in bounds.
fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at.checked_add(4)?)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
}

/// Little-endian `u64` at `at`, if in bounds.
fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at.checked_add(8)?)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

/// Decodes one checksum-verified payload, or `None` if it is structurally
/// invalid or breaks the contiguous frame chain. The value count `n` is the
/// authoritative layout descriptor: a payload of `20 + 4n` bytes has no
/// trailing meta word, `24 + 4n` bytes carries one, anything else is
/// corrupt.
fn parse_payload(payload: &[u8], expected_frame: u64) -> Option<WalFrame> {
    let frame = read_u64(payload, 0)?;
    let timestamp = f64::from_bits(read_u64(payload, 8)?);
    let n = read_u32(payload, 16)? as usize;
    let values_end = 20usize.checked_add(n.checked_mul(4)?)?;
    let meta = if payload.len() == values_end {
        None
    } else if payload.len() == values_end.checked_add(4)? {
        Some(read_u32(payload, values_end)?)
    } else {
        return None;
    };
    if frame != expected_frame {
        return None;
    }
    let values = payload
        .get(20..values_end)?
        .chunks_exact(4)
        .map(|c| c.try_into().ok().map(u32::from_le_bytes).map(f32::from_bits))
        .collect::<Option<Vec<f32>>>()?;
    Some(WalFrame {
        frame,
        timestamp,
        values,
        meta,
    })
}

/// Sorted `(seq, path)` list of the segment files present in `dir`.
fn list_segments(dir: &Path) -> DetectorResult<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((seq, entry.path()));
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// Result of scanning one segment's bytes.
struct SegmentScan {
    frames: Vec<WalFrame>,
    /// Byte offset just past the last valid record.
    valid_len: u64,
    /// Whether anything after `valid_len` was rejected.
    cut: bool,
}

/// Parses a segment header: `(header_len, stored_identity)`, or `None` when
/// the header is structurally invalid (short, bad magic, wrong sequence).
fn parse_segment_header(bytes: &[u8], expected_seq: u64) -> Option<(usize, Option<WalIdentity>)> {
    if bytes.len() >= SEGMENT_HEADER_LEN as usize
        && bytes.get(..8) == Some(&WAL_MAGIC[..])
        && read_u64(bytes, 8) == Some(expected_seq)
    {
        return Some((SEGMENT_HEADER_LEN as usize, None));
    }
    if bytes.len() >= SEGMENT_HEADER_V2_LEN as usize
        && bytes.get(..8) == Some(&WAL_MAGIC_V2[..])
        && read_u64(bytes, 8) == Some(expected_seq)
    {
        let identity = WalIdentity {
            catalog_hash: read_u64(bytes, 16)?,
            shard_id: read_u32(bytes, 24)?,
        };
        return Some((SEGMENT_HEADER_V2_LEN as usize, Some(identity)));
    }
    None
}

/// Accepts the longest valid record prefix of one segment. `next_frame` is
/// the frame index the first record must carry to keep the chain contiguous.
/// When `expected` is set, a segment whose header carries a different
/// identity — or no identity at all — is a hard [`DetectorError::WalMismatch`]
/// rather than a silent cut: the log is not *this shard's* log, and treating
/// it as a torn tail would misreplay another shard's frames.
fn scan_segment(
    bytes: &[u8],
    expected_seq: u64,
    mut next_frame: u64,
    expected: Option<WalIdentity>,
) -> DetectorResult<SegmentScan> {
    let mut frames = Vec::new();
    let Some((header_len, stored)) = parse_segment_header(bytes, expected_seq) else {
        return Ok(SegmentScan {
            frames,
            valid_len: 0,
            cut: true,
        });
    };
    if let Some(exp) = expected {
        match stored {
            None => {
                return Err(DetectorError::WalMismatch(format!(
                    "segment carries no identity header (legacy AEROWAL1); expected {exp}"
                )));
            }
            Some(got) if got != exp => {
                return Err(DetectorError::WalMismatch(format!(
                    "segment belongs to {got}; expected {exp}"
                )));
            }
            Some(_) => {}
        }
    }
    let mut pos = header_len;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(len) = read_u32(rest, 0) else {
            return Ok(cut_at(frames, pos));
        };
        // 20 = frame u64 + timestamp u64 + count u32: the smallest payload.
        if !(20..=MAX_PAYLOAD_BYTES).contains(&len) {
            return Ok(cut_at(frames, pos));
        }
        let len = len as usize;
        let Some(payload) = rest.get(4..4 + len) else {
            return Ok(cut_at(frames, pos));
        };
        let Some(stored) = read_u64(rest, 4 + len) else {
            return Ok(cut_at(frames, pos));
        };
        if record_checksum(payload) != stored {
            return Ok(cut_at(frames, pos));
        }
        let Some(frame) = parse_payload(payload, next_frame) else {
            return Ok(cut_at(frames, pos));
        };
        frames.push(frame);
        next_frame += 1;
        pos += 4 + len + 8;
    }
    Ok(SegmentScan {
        frames,
        valid_len: pos as u64,
        cut: false,
    })
}

fn cut_at(frames: Vec<WalFrame>, pos: usize) -> SegmentScan {
    SegmentScan {
        frames,
        valid_len: pos as u64,
        cut: true,
    }
}

/// Where the accepted prefix ends, for [`WalWriter::resume`] to truncate.
struct ScanOutcome {
    frames: Vec<WalFrame>,
    recovery: WalRecovery,
    /// `(seq, path, valid_len)` of the last accepted segment, if any.
    tail: Option<(u64, PathBuf, u64)>,
    /// Segments past the cut (deleted on resume).
    ignored: Vec<PathBuf>,
}

fn scan_dir(dir: &Path, expected: Option<WalIdentity>) -> DetectorResult<ScanOutcome> {
    let segments = list_segments(dir)?;
    let mut frames: Vec<WalFrame> = Vec::new();
    let mut recovery = WalRecovery::default();
    let mut tail: Option<(u64, PathBuf, u64)> = None;
    let mut ignored: Vec<PathBuf> = Vec::new();
    let mut cut = false;
    for (i, (seq, path)) in segments.iter().enumerate() {
        // A gap in the sequence numbering (or a directory whose first
        // segment is not 0) means the prefix ends at the gap.
        if cut || *seq != i as u64 {
            recovery.truncated = true;
            recovery.dropped_segments += 1;
            ignored.push(path.clone());
            cut = true;
            continue;
        }
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err("read", path, e))?;
        let scan = scan_segment(&bytes, *seq, frames.len() as u64, expected).map_err(|e| {
            match e {
                DetectorError::WalMismatch(msg) => {
                    DetectorError::WalMismatch(format!("{}: {msg}", path.display()))
                }
                other => other,
            }
        })?;
        recovery.segments += 1;
        frames.extend(scan.frames);
        if scan.cut {
            recovery.truncated = true;
            recovery.dropped_bytes = bytes.len() as u64 - scan.valid_len;
            cut = true;
        }
        tail = Some((*seq, path.clone(), scan.valid_len));
    }
    recovery.frames = frames.len();
    Ok(ScanOutcome {
        frames,
        recovery,
        tail,
        ignored,
    })
}

/// Reads the longest valid frame prefix from a WAL directory without
/// modifying anything on disk. Accepts both legacy and identified segments
/// without checking who they belong to (forensics mode); recovery paths that
/// *continue* a log go through [`WalWriter::resume`], which enforces
/// [`WalConfig::identity`].
pub fn replay(dir: &Path) -> DetectorResult<(Vec<WalFrame>, WalRecovery)> {
    let outcome = scan_dir(dir, None)?;
    Ok((outcome.frames, outcome.recovery))
}

/// [`replay`] that additionally verifies every segment header carries
/// exactly `identity`, failing with [`DetectorError::WalMismatch`] otherwise.
pub fn replay_identified(
    dir: &Path,
    identity: WalIdentity,
) -> DetectorResult<(Vec<WalFrame>, WalRecovery)> {
    let outcome = scan_dir(dir, Some(identity))?;
    Ok((outcome.frames, outcome.recovery))
}

/// What kind of damage an offline [`verify`] scrub found in a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFindingKind {
    /// The segment's header is missing, has a bad magic, or names the
    /// wrong sequence number.
    BadHeader,
    /// A hole in the `wal-NNNNNN.seg` numbering: the prefix replay stops
    /// at the gap even if later segments are intact.
    SequenceGap,
    /// A record extends past the end of the file (the classic torn tail
    /// of a crashed append), or its length field is structurally invalid.
    TornTail,
    /// A fully-present record whose FNV-1a checksum does not match its
    /// payload: bit rot, not a crash.
    ChecksumMismatch,
    /// A record decodes cleanly but carries the wrong frame index — the
    /// contiguous frame chain is broken.
    FrameChainBreak,
    /// The segment's identity header disagrees with the expected identity
    /// or with the other segments in the directory.
    IdentityMismatch,
}

impl WalFindingKind {
    /// Stable lowercase label for JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::BadHeader => "bad_header",
            Self::SequenceGap => "sequence_gap",
            Self::TornTail => "torn_tail",
            Self::ChecksumMismatch => "checksum_mismatch",
            Self::FrameChainBreak => "frame_chain_break",
            Self::IdentityMismatch => "identity_mismatch",
        }
    }
}

/// One piece of damage found by [`verify`].
#[derive(Debug, Clone)]
pub struct WalFinding {
    /// Sequence number of the segment the finding is in.
    pub segment: u64,
    /// Path of that segment file.
    pub path: PathBuf,
    /// Byte offset of the damage within the segment.
    pub offset: u64,
    /// Damage category.
    pub kind: WalFindingKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Outcome of an offline [`verify`] scrub over one WAL directory.
#[derive(Debug, Clone, Default)]
pub struct WalVerifyReport {
    /// Segment files examined.
    pub segments: usize,
    /// Records that decoded cleanly (checksum + frame chain intact).
    pub frames: usize,
    /// Total bytes examined.
    pub bytes: u64,
    /// The identity carried by the first identified segment, if any.
    pub identity: Option<WalIdentity>,
    /// Everything wrong, in on-disk order.
    pub findings: Vec<WalFinding>,
}

impl WalVerifyReport {
    /// True when the scrub found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Offline integrity scrub of a WAL directory: walks **every** segment —
/// unlike [`replay`], it does not stop at the first cut — and reports each
/// checksum failure, torn tail, sequence gap, frame-chain break, and
/// identity mismatch it can attribute. Nothing on disk is modified. Errors
/// only on environmental failures (unreadable directory/file).
pub fn verify(dir: &Path, expected: Option<WalIdentity>) -> DetectorResult<WalVerifyReport> {
    let segments = list_segments(dir)?;
    let mut report = WalVerifyReport::default();
    let mut next_frame = 0u64;
    let mut expected_seq = 0u64;
    for (seq, path) in &segments {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err("read", path, e))?;
        report.segments += 1;
        report.bytes += bytes.len() as u64;
        if *seq != expected_seq {
            report.findings.push(WalFinding {
                segment: *seq,
                path: path.clone(),
                offset: 0,
                kind: WalFindingKind::SequenceGap,
                detail: format!("expected segment {expected_seq}, found {seq}"),
            });
        }
        expected_seq = seq + 1;
        let Some((header_len, stored_identity)) = parse_segment_header(&bytes, *seq) else {
            report.findings.push(WalFinding {
                segment: *seq,
                path: path.clone(),
                offset: 0,
                kind: WalFindingKind::BadHeader,
                detail: "missing or malformed segment header".into(),
            });
            continue;
        };
        match (report.identity, stored_identity) {
            (None, Some(id)) => report.identity = Some(id),
            (Some(first), Some(id)) if id != first => report.findings.push(WalFinding {
                segment: *seq,
                path: path.clone(),
                offset: 0,
                kind: WalFindingKind::IdentityMismatch,
                detail: format!("segment belongs to {id}; directory started as {first}"),
            }),
            _ => {}
        }
        if let Some(exp) = expected {
            match stored_identity {
                Some(id) if id == exp => {}
                Some(id) => report.findings.push(WalFinding {
                    segment: *seq,
                    path: path.clone(),
                    offset: 0,
                    kind: WalFindingKind::IdentityMismatch,
                    detail: format!("segment belongs to {id}; expected {exp}"),
                }),
                None => report.findings.push(WalFinding {
                    segment: *seq,
                    path: path.clone(),
                    offset: 0,
                    kind: WalFindingKind::IdentityMismatch,
                    detail: format!("legacy AEROWAL1 segment (no identity); expected {exp}"),
                }),
            }
        }
        verify_records(&bytes, header_len, *seq, path, &mut next_frame, &mut report);
    }
    Ok(report)
}

/// Scans one segment's record stream for [`verify`], attributing each
/// rejection. Stops at the first torn/corrupt record (the bytes after it
/// have no reliable framing) but keeps the directory walk going.
fn verify_records(
    bytes: &[u8],
    header_len: usize,
    seq: u64,
    path: &Path,
    next_frame: &mut u64,
    report: &mut WalVerifyReport,
) {
    let mut pos = header_len;
    let push = |report: &mut WalVerifyReport, offset: usize, kind, detail: String| {
        report.findings.push(WalFinding {
            segment: seq,
            path: path.to_path_buf(),
            offset: offset as u64,
            kind,
            detail,
        });
    };
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(len) = read_u32(rest, 0) else {
            push(report, pos, WalFindingKind::TornTail, format!("{} trailing byte(s) after the last record", rest.len()));
            return;
        };
        if !(20..=MAX_PAYLOAD_BYTES).contains(&len) {
            push(report, pos, WalFindingKind::TornTail, format!("record length field {len} out of range"));
            return;
        }
        let len = len as usize;
        let (Some(payload), Some(stored)) = (rest.get(4..4 + len), read_u64(rest, 4 + len)) else {
            push(report, pos, WalFindingKind::TornTail, format!("record of {len} payload byte(s) cut off at end of file"));
            return;
        };
        if record_checksum(payload) != stored {
            push(report, pos, WalFindingKind::ChecksumMismatch, format!("stored checksum {stored:#018x} does not match the payload"));
            return;
        }
        // The checksum is good, so the payload bytes are authoritative:
        // decode against the frame index it *carries*, and report (then
        // resync on) any break in the chain.
        let carried = read_u64(payload, 0).unwrap_or(u64::MAX);
        if carried != *next_frame {
            push(
                report,
                pos,
                WalFindingKind::FrameChainBreak,
                format!("record carries frame {carried}, chain expected {}", *next_frame),
            );
            *next_frame = carried;
        }
        if parse_payload(payload, *next_frame).is_none() {
            push(report, pos, WalFindingKind::ChecksumMismatch, "checksummed payload is structurally invalid".into());
            return;
        }
        report.frames += 1;
        *next_frame += 1;
        pos += 4 + len + 8;
    }
}

/// Appends checksummed frame records to a segmented log.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    config: WalConfig,
    file: File,
    seq: u64,
    frames_in_segment: usize,
    next_frame: u64,
    /// Injectable write-error seam: `Some(n)` makes every append after the
    /// next `n` fail as if the device were full (see
    /// [`inject_wal_full_after`](Self::inject_wal_full_after)).
    fault_after: Option<u64>,
}

impl WalWriter {
    /// Starts a fresh log in `dir` (created if missing). Refuses to run if
    /// the directory already holds segments — silently appending a new
    /// stream after old frames would splice two unrelated nights together;
    /// use [`resume`](Self::resume) for continuation.
    pub fn create(dir: &Path, config: WalConfig) -> DetectorResult<Self> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        if !list_segments(dir)?.is_empty() {
            return Err(DetectorError::Invalid(format!(
                "WAL directory {} already contains segments; use resume or point \
                 --wal at an empty directory",
                dir.display()
            )));
        }
        let file = Self::open_segment(dir, 0, config.identity)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            file,
            seq: 0,
            frames_in_segment: 0,
            next_frame: 0,
            fault_after: None,
        })
    }

    /// Recovers the longest valid prefix from `dir`, truncates the torn
    /// tail, deletes any segments past the cut, and reopens the log for
    /// appending. Returns the writer, the recovered frames (to replay into a
    /// fresh `OnlineAero`), and what was found.
    pub fn resume(dir: &Path, config: WalConfig) -> DetectorResult<(Self, Vec<WalFrame>, WalRecovery)> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        let outcome = scan_dir(dir, config.identity)?;
        for path in &outcome.ignored {
            std::fs::remove_file(path).map_err(|e| io_err("remove", path, e))?;
        }
        if !outcome.ignored.is_empty() {
            // Make the deletions durable regardless of the fsync policy:
            // resume runs once per process, and a resurrected post-cut
            // segment would splice already-rejected frames back into the
            // next recovery's prefix scan.
            fsync_dir(dir)?;
        }
        let writer = match outcome.tail {
            // Nothing usable at all (empty dir, or every segment ignored).
            None => Self::create(dir, config)?,
            // Tail segment whose own header was garbage: recreate it.
            Some((seq, _, valid_len)) if valid_len < SEGMENT_HEADER_LEN => Self {
                dir: dir.to_path_buf(),
                config,
                file: Self::open_segment(dir, seq, config.identity)?,
                seq,
                frames_in_segment: 0,
                next_frame: outcome.frames.len() as u64,
                fault_after: None,
            },
            Some((seq, path, valid_len)) => {
                // Append mode: after the truncation below, writes must land
                // at the new end of file, not at offset 0.
                let file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| io_err("open", &path, e))?;
                file.set_len(valid_len).map_err(|e| io_err("truncate", &path, e))?;
                if config.fsync != FsyncPolicy::Never {
                    file.sync_all().map_err(|e| io_err("fsync", &path, e))?;
                }
                // Count the tail segment's surviving frames so rotation
                // stays on schedule after resume.
                let earlier = seq as usize * config.frames_per_segment;
                let frames_in_segment = outcome.frames.len().saturating_sub(earlier);
                Self {
                    dir: dir.to_path_buf(),
                    config,
                    file,
                    seq,
                    frames_in_segment,
                    next_frame: outcome.frames.len() as u64,
                    fault_after: None,
                }
            }
        };
        Ok((writer, outcome.frames, outcome.recovery))
    }

    fn open_segment(dir: &Path, seq: u64, identity: Option<WalIdentity>) -> DetectorResult<File> {
        let path = segment_path(dir, seq);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        let header: Vec<u8> = match identity {
            None => {
                let mut h = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
                h.extend_from_slice(&WAL_MAGIC);
                h.extend_from_slice(&seq.to_le_bytes());
                h
            }
            Some(id) => {
                let mut h = Vec::with_capacity(SEGMENT_HEADER_V2_LEN as usize);
                h.extend_from_slice(&WAL_MAGIC_V2);
                h.extend_from_slice(&seq.to_le_bytes());
                h.extend_from_slice(&id.catalog_hash.to_le_bytes());
                h.extend_from_slice(&id.shard_id.to_le_bytes());
                h.extend_from_slice(&0u32.to_le_bytes());
                h
            }
        };
        file.write_all(&header).map_err(|e| write_err("write", &path, e))?;
        Ok(file)
    }

    /// Appends one frame, rotating and fsyncing per policy. Returns the
    /// frame's 0-based index in the log.
    pub fn append(&mut self, timestamp: f64, values: &[f32]) -> DetectorResult<u64> {
        self.append_record(timestamp, values, None)
    }

    /// [`append`](Self::append) with a caller-supplied meta word (the
    /// overload governor's polls-since-last-offer count; see
    /// [`WalFrame::meta`]).
    pub fn append_with_meta(
        &mut self,
        timestamp: f64,
        values: &[f32],
        meta: u32,
    ) -> DetectorResult<u64> {
        self.append_record(timestamp, values, Some(meta))
    }

    /// Write-error seam for tests and chaos harnesses: the next `appends`
    /// appends succeed, then every later one fails with
    /// [`DetectorError::WalFull`] — exactly the behaviour of a log device
    /// running out of space mid-night. No bytes are written by a faulted
    /// append, so the on-disk prefix stays valid.
    pub fn inject_wal_full_after(&mut self, appends: u64) {
        self.fault_after = Some(appends);
    }

    fn append_record(
        &mut self,
        timestamp: f64,
        values: &[f32],
        meta: Option<u32>,
    ) -> DetectorResult<u64> {
        if let Some(remaining) = self.fault_after.as_mut() {
            if *remaining == 0 {
                return Err(DetectorError::WalFull(format!(
                    "append {}: injected ENOSPC (no space left on device)",
                    segment_path(&self.dir, self.seq).display()
                )));
            }
            *remaining -= 1;
        }
        if self.frames_in_segment >= self.config.frames_per_segment.max(1) {
            if self.config.fsync != FsyncPolicy::Never {
                self.sync()?;
            }
            self.seq += 1;
            self.file = Self::open_segment(&self.dir, self.seq, self.config.identity)?;
            self.frames_in_segment = 0;
            if self.config.fsync != FsyncPolicy::Never {
                // The new segment's *directory entry* must be durable too,
                // or a crash here silently drops every record appended to a
                // file the next recovery cannot even see.
                fsync_dir(&self.dir)?;
            }
        }
        let frame = self.next_frame;
        let record = encode_record(frame, timestamp, values, meta);
        let path = segment_path(&self.dir, self.seq);
        self.file
            .write_all(&record)
            .map_err(|e| write_err("append", &path, e))?;
        if self.config.fsync == FsyncPolicy::EveryRecord {
            self.sync()?;
        }
        self.next_frame += 1;
        self.frames_in_segment += 1;
        Ok(frame)
    }

    /// Flushes the current segment to disk.
    pub fn sync(&mut self) -> DetectorResult<()> {
        let path = segment_path(&self.dir, self.seq);
        self.file.sync_all().map_err(|e| io_err("fsync", &path, e))
    }

    /// Index the next appended frame will get (= frames logged so far).
    pub fn next_frame(&self) -> u64 {
        self.next_frame
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aero_wal_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn frame(i: usize) -> (f64, Vec<f32>) {
        let ts = 1000.0 + i as f64 * 10.0;
        let values = vec![i as f32, -(i as f32) * 0.5, 1.0 / (i as f32 + 1.0)];
        (ts, values)
    }

    fn write_frames(dir: &Path, config: WalConfig, count: usize) -> WalWriter {
        let mut w = WalWriter::create(dir, config).unwrap();
        for i in 0..count {
            let (ts, values) = frame(i);
            assert_eq!(w.append(ts, &values).unwrap(), i as u64);
        }
        w
    }

    #[test]
    fn roundtrip_with_rotation_preserves_bits() {
        let dir = tmp_dir("roundtrip");
        let config = WalConfig {
            frames_per_segment: 4,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let _w = write_frames(&dir, config, 11);
        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 11);
        assert_eq!(recovery.frames, 11);
        assert_eq!(recovery.segments, 3, "4 + 4 + 3 across three segments");
        assert!(!recovery.truncated);
        for (i, f) in frames.iter().enumerate() {
            let (ts, values) = frame(i);
            assert_eq!(f.frame, i as u64);
            assert_eq!(f.timestamp.to_bits(), ts.to_bits());
            assert_eq!(f.values, values);
        }
        // NaN timestamps and values survive bit-exactly (the degradation
        // layer, not the WAL, is what handles them).
        let mut w = WalWriter::resume(&dir, config).unwrap().0;
        w.append(f64::NAN, &[f32::NAN, f32::INFINITY]).unwrap();
        let (frames, _) = replay(&dir).unwrap();
        assert!(frames[11].timestamp.is_nan());
        assert!(frames[11].values[0].is_nan());
        assert_eq!(frames[11].values[1], f32::INFINITY);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_longest_valid_prefix() {
        let dir = tmp_dir("torn");
        let config = WalConfig {
            frames_per_segment: 100,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let _w = write_frames(&dir, config, 6);
        // Simulate a kill mid-write: chop the last record in half.
        let path = segment_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 13).unwrap();
        drop(file);

        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 5, "torn 6th record dropped");
        assert!(recovery.truncated);
        assert!(recovery.dropped_bytes > 0);

        // Resume truncates the tail and appends cleanly after it.
        let (mut w, recovered, rec2) = WalWriter::resume(&dir, config).unwrap();
        assert_eq!(recovered.len(), 5);
        assert_eq!(rec2.frames, 5);
        assert_eq!(w.next_frame(), 5);
        let (ts, values) = frame(5);
        w.append(ts, &values).unwrap();
        drop(w);
        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 6);
        assert!(!recovery.truncated, "resume healed the log");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_cuts_prefix_and_drops_later_segments() {
        let dir = tmp_dir("bitflip");
        let config = WalConfig {
            frames_per_segment: 3,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let _w = write_frames(&dir, config, 9);
        // Flip one payload byte in the middle of segment 1 (frames 3..6):
        // frames 0..4 survive, the rest of segment 1 and all of segment 2
        // are past the cut.
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = SEGMENT_HEADER_LEN as usize + {
            let (_, vals) = frame(3);
            let rec = encode_record(3, frame(3).0, &vals, None).len();
            rec + 10
        };
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 4, "prefix = segment 0 plus one good record");
        assert!(recovery.truncated);
        assert_eq!(recovery.dropped_segments, 1, "segment 2 ignored");

        let (w, recovered, _) = WalWriter::resume(&dir, config).unwrap();
        assert_eq!(recovered.len(), 4);
        assert!(
            !segment_path(&dir, 2).exists(),
            "resume deletes segments past the cut"
        );
        drop(w);
        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 4);
        assert!(!recovery.truncated);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_nonempty_directory() {
        let dir = tmp_dir("nonempty");
        let _w = write_frames(&dir, WalConfig::default(), 2);
        match WalWriter::create(&dir, WalConfig::default()) {
            Err(DetectorError::Invalid(msg)) => assert!(msg.contains("resume"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_empty_directory_starts_fresh() {
        let dir = tmp_dir("fresh");
        let (w, frames, recovery) = WalWriter::resume(&dir, WalConfig::default()).unwrap();
        assert!(frames.is_empty());
        assert_eq!(recovery, WalRecovery::default());
        assert_eq!(w.next_frame(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_records_roundtrip_and_mix_with_plain_ones() {
        let dir = tmp_dir("meta");
        let config = WalConfig {
            frames_per_segment: 3,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let mut w = WalWriter::create(&dir, config).unwrap();
        // Alternate governor-style meta records with plain ones across a
        // rotation boundary.
        for i in 0..7u64 {
            let (ts, values) = frame(i as usize);
            let got = if i % 2 == 0 {
                w.append_with_meta(ts, &values, i as u32 * 3).unwrap()
            } else {
                w.append(ts, &values).unwrap()
            };
            assert_eq!(got, i);
        }
        drop(w);
        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 7);
        assert!(!recovery.truncated);
        for (i, f) in frames.iter().enumerate() {
            let expected = if i % 2 == 0 { Some(i as u32 * 3) } else { None };
            assert_eq!(f.meta, expected, "frame {i}");
            assert_eq!(f.values, frame(i).1);
        }
        // Resume appends cleanly after a mixed log.
        let (mut w, recovered, _) = WalWriter::resume(&dir, config).unwrap();
        assert_eq!(recovered.len(), 7);
        w.append_with_meta(frame(7).0, &frame(7).1, 99).unwrap();
        let (frames, _) = replay(&dir).unwrap();
        assert_eq!(frames[7].meta, Some(99));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_payload_with_wrong_length_is_rejected() {
        let dir = tmp_dir("metalen");
        let config = WalConfig {
            frames_per_segment: 100,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let _w = write_frames(&dir, config, 2);
        // Hand-craft a record whose payload length matches neither 20+4n
        // nor 24+4n for its declared count: checksum passes, parser rejects.
        // (The 32-byte payload would be valid for n=2+meta or n=3 plain;
        // claiming n=4 makes it fit neither layout.)
        let mut bogus = encode_record(2, 1.0, &[1.0, 2.0], Some(5));
        bogus[4 + 16] = 4;
        let payload_len = u32::from_le_bytes(bogus[..4].try_into().unwrap()) as usize;
        let sum = record_checksum(&bogus[4..4 + payload_len]);
        let sum_at = 4 + payload_len;
        bogus[sum_at..sum_at + 8].copy_from_slice(&sum.to_le_bytes());
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&bogus);
        std::fs::write(&path, &bytes).unwrap();

        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 2, "malformed meta record cut, prefix kept");
        assert!(recovery.truncated);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identified_wal_roundtrips_and_rejects_wrong_identity() {
        let dir = tmp_dir("identity");
        let id = WalIdentity { shard_id: 3, catalog_hash: 0xfeed_beef_cafe_0042 };
        let config = WalConfig {
            frames_per_segment: 2,
            fsync: FsyncPolicy::Never,
            identity: Some(id),
        };
        let w = write_frames(&dir, config, 5);
        drop(w);

        // Plain replay (forensics) and identity-checked replay both accept it.
        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 5);
        assert!(!recovery.truncated);
        let (frames, _) = replay_identified(&dir, id).unwrap();
        assert_eq!(frames.len(), 5);

        // Resume with the right identity continues across rotation.
        let (mut w, recovered, _) = WalWriter::resume(&dir, config).unwrap();
        assert_eq!(recovered.len(), 5);
        w.append(frame(5).0, &frame(5).1).unwrap();
        drop(w);
        assert_eq!(replay_identified(&dir, id).unwrap().0.len(), 6);

        // A different shard id or catalog hash is a typed hard error, for
        // replay and resume alike — never a silent truncation.
        for wrong in [
            WalIdentity { shard_id: 4, ..id },
            WalIdentity { catalog_hash: 1, ..id },
        ] {
            match replay_identified(&dir, wrong) {
                Err(DetectorError::WalMismatch(msg)) => {
                    assert!(msg.contains("shard 3"), "{msg}");
                }
                other => panic!("expected WalMismatch, got {other:?}"),
            }
            let bad = WalConfig { identity: Some(wrong), ..config };
            assert!(matches!(
                WalWriter::resume(&dir, bad),
                Err(DetectorError::WalMismatch(_))
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_wal_rejected_when_identity_expected() {
        let dir = tmp_dir("legacy_identity");
        let legacy = WalConfig {
            frames_per_segment: 100,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let _w = write_frames(&dir, legacy, 3);
        let id = WalIdentity { shard_id: 0, catalog_hash: 7 };
        match replay_identified(&dir, id) {
            Err(DetectorError::WalMismatch(msg)) => assert!(msg.contains("AEROWAL1"), "{msg}"),
            other => panic!("expected WalMismatch, got {other:?}"),
        }
        // Identity is only enforced when expected: the same legacy log
        // replays fine without one.
        let (frames, _) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_segment_header_rejected() {
        let dir = tmp_dir("badheader");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(segment_path(&dir, 0), b"NOTAWAL!\0\0\0\0\0\0\0\0junk").unwrap();
        let (frames, recovery) = replay(&dir).unwrap();
        assert!(frames.is_empty());
        assert!(recovery.truncated);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_clean_log_and_identity() {
        let dir = tmp_dir("verify_clean");
        let id = WalIdentity { shard_id: 3, catalog_hash: 99 };
        let config = WalConfig {
            frames_per_segment: 4,
            fsync: FsyncPolicy::Never,
            identity: Some(id),
        };
        let _w = write_frames(&dir, config, 10);
        let report = verify(&dir, Some(id)).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.segments, 3);
        assert_eq!(report.frames, 10);
        assert_eq!(report.identity, Some(id));
        assert!(report.bytes > 0);
        // Scrubbing is read-only: the log replays untouched afterwards.
        let (frames, recovery) = replay(&dir).unwrap();
        assert_eq!(frames.len(), 10);
        assert!(!recovery.truncated);
        // The wrong expectation is a finding, not an error.
        let other = WalIdentity { shard_id: 4, catalog_hash: 99 };
        let report = verify(&dir, Some(other)).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .all(|f| f.kind == WalFindingKind::IdentityMismatch));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_attributes_every_kind_of_damage() {
        let dir = tmp_dir("verify_damage");
        let config = WalConfig {
            frames_per_segment: 3,
            fsync: FsyncPolicy::Never,
            identity: None,
        };
        let _w = write_frames(&dir, config, 9); // segments 0, 1, 2
        // Bit-flip a payload byte mid-segment-1, tear segment 2's tail, and
        // remove segment 0 entirely (a sequence gap). Unlike replay — which
        // stops at the first cut — the scrub must attribute all three.
        let path1 = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path1).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&path1, &bytes).unwrap();
        let path2 = segment_path(&dir, 2);
        let len = std::fs::metadata(&path2).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path2).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        std::fs::remove_file(segment_path(&dir, 0)).unwrap();

        let report = verify(&dir, None).unwrap();
        assert!(!report.is_clean());
        let kinds: Vec<WalFindingKind> = report.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&WalFindingKind::SequenceGap), "{kinds:?}");
        assert!(kinds.contains(&WalFindingKind::ChecksumMismatch), "{kinds:?}");
        assert!(kinds.contains(&WalFindingKind::TornTail), "{kinds:?}");
        // Every finding names its segment file and a real byte offset.
        for f in &report.findings {
            assert!(f.path.exists() || f.kind == WalFindingKind::SequenceGap, "{f:?}");
            assert!(!f.detail.is_empty());
        }
        // The scrub changed nothing on disk: a second pass agrees.
        let again = verify(&dir, None).unwrap();
        assert_eq!(again.findings.len(), report.findings.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
