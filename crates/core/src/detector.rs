//! The common detector interface shared by AERO and all baselines, plus the
//! end-to-end detection pipeline (fit → POT calibration → score → point-
//! adjusted metrics) used by every experiment harness.

use std::fmt;

use aero_eval::{evaluate_point_adjusted, threshold_scores, Metrics};
use aero_evt::{pot_threshold_lenient, PotConfig, PotThreshold};
use aero_tensor::Matrix;
use aero_timeseries::{Dataset, MultivariateSeries};

/// Errors surfaced by detectors.
#[derive(Debug, Clone)]
pub enum DetectorError {
    /// Underlying tensor/autodiff failure.
    Tensor(aero_tensor::TensorError),
    /// Underlying time-series failure.
    Series(aero_timeseries::TsError),
    /// Detector-specific invariant violation.
    Invalid(String),
    /// Disk/OS failure while reading or writing a checkpoint. Retryable:
    /// the data on disk (if any) was not the problem.
    Io(String),
    /// A checkpoint exists but its contents are unusable — truncated,
    /// bit-flipped, checksum-mismatched, or written by an incompatible
    /// format version. Not retryable without a different file.
    Corrupt(String),
    /// Threshold calibration failed for lack of usable scores.
    Threshold(aero_evt::PotError),
    /// A supervised work unit was abandoned after exhausting its retry
    /// budget: a worker panic, a blown deadline, or an open circuit
    /// breaker (see `crate::supervisor`). The pipeline itself is still
    /// healthy — only the described unit of work was lost.
    Supervision(String),
    /// The stream is saturated: the admission queue rejected work (see
    /// `crate::overload`). The frame's data was fine — the system had no
    /// capacity for it. Retryable once the backlog drains.
    Overload(String),
    /// A WAL directory's segment headers belong to a different shard or
    /// catalog partition than the one resuming it (fleet isolation guard).
    WalMismatch(String),
    /// The WAL device is out of space (ENOSPC or a short write). The
    /// in-memory detector state is still coherent — only durability is
    /// gone — so callers should degrade (e.g. drop to `HoldLast` and stop
    /// logging) rather than crash. Retryable once space is reclaimed.
    WalFull(String),
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Series(e) => write!(f, "series error: {e}"),
            Self::Invalid(msg) => write!(f, "invalid detector state: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
            Self::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            Self::Threshold(e) => write!(f, "threshold calibration: {e}"),
            Self::Supervision(msg) => write!(f, "supervision: {msg}"),
            Self::Overload(msg) => write!(f, "overload: {msg}"),
            Self::WalMismatch(msg) => write!(f, "WAL identity mismatch: {msg}"),
            Self::WalFull(msg) => write!(f, "WAL device full: {msg}"),
        }
    }
}

impl std::error::Error for DetectorError {}

impl From<aero_tensor::TensorError> for DetectorError {
    fn from(e: aero_tensor::TensorError) -> Self {
        Self::Tensor(e)
    }
}

impl From<aero_timeseries::TsError> for DetectorError {
    fn from(e: aero_timeseries::TsError) -> Self {
        Self::Series(e)
    }
}

impl From<aero_evt::PotError> for DetectorError {
    fn from(e: aero_evt::PotError) -> Self {
        Self::Threshold(e)
    }
}

impl From<aero_parallel::ShardError> for DetectorError {
    fn from(e: aero_parallel::ShardError) -> Self {
        Self::Supervision(e.to_string())
    }
}

/// Result alias for detector operations.
pub type DetectorResult<T> = Result<T, DetectorError>;

/// A time-series anomaly detector.
///
/// The contract mirrors the paper's protocol: `fit` trains (unsupervised) on
/// the nominal series; `score` produces per-point anomaly scores for any
/// series with the same variate count (larger = more anomalous). The first
/// `warmup()` columns of a scored series may be unscored (zero) — the
/// pipeline excludes them from POT calibration.
pub trait Detector {
    /// Display name used in result tables (e.g. "AERO", "SR").
    fn name(&self) -> String;

    /// Trains on the nominal series.
    fn fit(&mut self, train: &MultivariateSeries) -> DetectorResult<()>;

    /// Scores every point of `series`; returns an `N × len` matrix.
    fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix>;

    /// Number of leading columns without valid scores.
    fn warmup(&self) -> usize {
        0
    }
}

/// Timing breakdown of one detection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTiming {
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
    /// Wall-clock test scoring time in seconds (includes calibration scoring).
    pub test_secs: f64,
}

/// Full output of a detection run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Point-adjusted metrics against the dataset's ground truth.
    pub metrics: Metrics,
    /// The calibrated POT threshold.
    pub threshold: PotThreshold,
    /// Raw test score matrix.
    pub scores: Matrix,
    /// Timing breakdown (Fig. 6).
    pub timing: RunTiming,
}

/// Fraction of the training split held out for threshold calibration.
const CALIBRATION_HOLDOUT: f64 = 0.2;

/// Runs the complete paper protocol for one detector on one dataset:
///
/// 1. fit on the leading 80% of the training split;
/// 2. score the full training split and calibrate a POT threshold on the
///    held-out tail (Eq. 18 uses training-instance scores; calibrating on
///    scores the model has *not* memorized keeps the EVT tail estimate
///    aligned with test-time score levels — the same validation-set POT
///    calibration the reference implementations of OmniAnomaly/TranAD use);
/// 3. score the test split, threshold, point-adjust, compute metrics.
pub fn run_detection(
    detector: &mut dyn Detector,
    dataset: &Dataset,
    pot: PotConfig,
) -> DetectorResult<RunOutcome> {
    let train_len = dataset.train.len();
    let holdout = ((train_len as f64 * CALIBRATION_HOLDOUT) as usize).min(train_len / 2);
    let split = train_len - holdout;

    let t0 = std::time::Instant::now();
    let fit_series = if holdout > 0 {
        dataset.train.split_at(split)?.0
    } else {
        dataset.train.clone()
    };
    detector.fit(&fit_series)?;
    let train_secs = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    // Score the full training series (so held-out columns keep their long
    // window context), then calibrate only on the out-of-sample tail.
    let calib_scores = detector.score(&dataset.train)?;
    let calib_start = split
        .max(detector.warmup())
        .min(calib_scores.cols().saturating_sub(1));
    let mut calib: Vec<f32> =
        Vec::with_capacity(calib_scores.rows() * (calib_scores.cols() - calib_start));
    for r in 0..calib_scores.rows() {
        calib.extend_from_slice(&calib_scores.row(r)[calib_start..]);
    }
    // Lenient calibration: a degenerate calibration set (constant scores,
    // too-short holdout) should still produce a comparable batch run rather
    // than abort the experiment. Online deployment uses the strict variant.
    let threshold = pot_threshold_lenient(&calib, pot);

    let scores = detector.score(&dataset.test)?;
    let test_secs = t1.elapsed().as_secs_f64();

    let pred = threshold_scores(&scores, threshold.threshold);
    let metrics = evaluate_point_adjusted(&pred, &dataset.test_labels);
    Ok(RunOutcome {
        metrics,
        threshold,
        scores,
        timing: RunTiming { train_secs, test_secs },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aero_timeseries::LabelGrid;

    /// A trivial detector: score = |value|, no training.
    struct AbsDetector;

    impl Detector for AbsDetector {
        fn name(&self) -> String {
            "Abs".into()
        }
        fn fit(&mut self, _train: &MultivariateSeries) -> DetectorResult<()> {
            Ok(())
        }
        fn score(&mut self, series: &MultivariateSeries) -> DetectorResult<Matrix> {
            Ok(series.values().map(f32::abs))
        }
    }

    #[test]
    fn pipeline_detects_obvious_outliers() {
        // Train: small noise. Test: same noise + one large segment.
        let mut train_vals = Matrix::zeros(1, 500);
        let mut test_vals = Matrix::zeros(1, 500);
        for t in 0..500 {
            let v = ((t * 2654435761) % 1000) as f32 / 5000.0 - 0.1; // deterministic jitter
            train_vals.set(0, t, v);
            test_vals.set(0, t, v);
        }
        for t in 100..110 {
            test_vals.set(0, t, 5.0);
        }
        let mut labels = LabelGrid::new(1, 500);
        labels.mark_range(0, 100, 109).unwrap();
        let ds = Dataset {
            name: "unit".into(),
            train: MultivariateSeries::regular(train_vals),
            test: MultivariateSeries::regular(test_vals),
            test_labels: labels,
            test_noise: LabelGrid::new(1, 500),
            train_noise: LabelGrid::new(1, 500),
        };
        let mut det = AbsDetector;
        let out = run_detection(&mut det, &ds, PotConfig { level: 0.98, q: 1e-3 }).unwrap();
        assert_eq!(out.metrics.recall, 1.0);
        assert!(out.metrics.precision > 0.5, "precision = {}", out.metrics.precision);
        assert!(out.timing.train_secs >= 0.0);
    }

    #[test]
    fn detector_error_display() {
        let e = DetectorError::Invalid("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
