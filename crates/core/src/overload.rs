//! Overload control for the streaming detector (DESIGN.md §11): admission
//! control, priority load shedding, and a deadline-aware degradation ladder.
//!
//! A GWAC-class ingest node sees frames arrive faster than it can score them
//! whenever a backlog flushes after a network partition or several camera
//! feeds land on one worker. Left alone, [`OnlineAero`] would buffer that
//! pressure in its caller: memory grows without bound and every star's
//! verdict falls uniformly behind realtime. [`StreamGovernor`] wraps the
//! stream behind three mechanisms, all **deterministic functions of arrival
//! order** so the crash-recovery and thread-count bitwise gates keep holding:
//!
//! 1. **Admission control** — [`StreamGovernor::offer`] places each arriving
//!    frame in a bounded queue; at capacity the frame is [`Admission::Rejected`]
//!    (explicit backpressure, counted in
//!    [`OverloadCounters::frames_rejected`]), which bounds resident memory.
//! 2. **Priority load shedding** — while the queue runs above its high
//!    watermark, [`StreamGovernor::poll`] sheds the cheapest stars from the
//!    frame being serviced: quarantined stars first, then degraded, then
//!    nominal — and *never* anomaly-suspect stars (a star whose recent
//!    verdict was anomalous), so the alerts the telescope exists to catch
//!    are the last thing sacrificed.
//! 3. **Degradation ladder** — sustained pressure steps every non-suspect
//!    star down a rung: full two-stage AERO → Stage-1-only (`|E|`) →
//!    spectral-residual fallback (model-free, via an injected
//!    [`FallbackScorer`]) → hold-last-verdict. Sustained headroom steps back
//!    up, with hysteresis (different streak lengths down vs up) so the
//!    ladder doesn't chatter at a watermark.
//!
//! Deadline awareness is advisory: when the supervision policy sets a
//! per-attempt deadline, its misses corroborate the queue-depth signal, but
//! the queue depth — reproducible from the offer/poll interleaving alone —
//! is what actually drives stepping. The interleaving itself is written
//! ahead to the WAL (each offered frame carries the number of polls since
//! the previous offer), so [`StreamGovernor::resume_wal`] replays bitwise
//! into the same ladder state; recovery granularity is the offer boundary
//! (polls after the final offer are re-executed, reproducing the same
//! verdicts).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use aero_parallel::WorkBudget;

use crate::detector::{DetectorError, DetectorResult};
use crate::model::ScoreMode;
use crate::online::{FrameDisposition, FrameVerdict, OnlineAero, StarStatus};
use crate::wal::{WalConfig, WalRecovery, WalWriter};

/// One star's rung on the degradation ladder, cheapest last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderLevel {
    /// Full two-stage AERO: score is the noise-cancelled residual `|R|`.
    FullAero,
    /// Stage-1 only: score is the raw reconstruction error `|E|`.
    Stage1Only,
    /// Model skipped; the star's buffered window is scored by the injected
    /// model-free [`FallbackScorer`] (spectral residual in the CLI wiring).
    SrFallback,
    /// No scoring at all: the star's previous verdict is re-emitted.
    HoldLast,
}

impl LadderLevel {
    /// One rung cheaper. Without a fallback scorer the `SrFallback` rung is
    /// vacuous and is skipped.
    fn down(self, has_fallback: bool) -> Self {
        match self {
            Self::FullAero => Self::Stage1Only,
            Self::Stage1Only if has_fallback => Self::SrFallback,
            Self::Stage1Only | Self::SrFallback | Self::HoldLast => Self::HoldLast,
        }
    }

    /// One rung richer.
    fn up(self, has_fallback: bool) -> Self {
        match self {
            Self::HoldLast if has_fallback => Self::SrFallback,
            Self::HoldLast | Self::SrFallback => Self::Stage1Only,
            Self::Stage1Only | Self::FullAero => Self::FullAero,
        }
    }

    /// The model work this rung requests from [`OnlineAero::push_with_modes`].
    fn score_mode(self) -> ScoreMode {
        match self {
            Self::FullAero => ScoreMode::Full,
            Self::Stage1Only => ScoreMode::Stage1,
            Self::SrFallback | Self::HoldLast => ScoreMode::Skip,
        }
    }
}

/// Shedding priority of one star, shed in ascending order. `Suspect` stars
/// (recent anomalous verdict) are never shed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Quarantined data quality: its verdict is suppressed anyway.
    Quarantined,
    /// Degraded data quality: verdict is already less trustworthy.
    Degraded,
    /// Healthy star with a quiet recent history.
    Nominal,
    /// Recently anomalous: the one class overload must not touch.
    Suspect,
}

/// Why an offer was turned away at the door. The reason is part of the wire
/// contract (`aero serve` echoes it to clients), so each carries a distinct
/// back-off story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission queue at capacity: the whole service is saturated. Retry
    /// after backing off for a few service ticks.
    Backpressure,
    /// The offering tenant's token bucket is empty: *this client* is over
    /// its fair share while the service may be healthy. Retry next tick.
    QuotaExceeded,
    /// The service is draining toward shutdown and accepts no new work.
    /// Reconnect after the successor process comes up.
    Draining,
}

impl RejectReason {
    /// Stable lowercase label used on the wire and in JSON summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Backpressure => "backpressure",
            Self::QuotaExceeded => "quota_exceeded",
            Self::Draining => "draining",
        }
    }
}

/// Outcome of [`StreamGovernor::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Frame queued; `depth` is the queue depth including it.
    Accepted {
        /// Queue depth after admission.
        depth: usize,
    },
    /// The frame was dropped at the door. Explicit backpressure: the caller
    /// may retry after the reason's back-off contract.
    Rejected {
        /// Why the frame was turned away.
        reason: RejectReason,
        /// Queue depth that caused (or witnessed) the rejection.
        depth: usize,
    },
}

impl Admission {
    /// True when the frame was queued.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Self::Accepted { .. })
    }

    /// Converts backpressure into the pipeline's error type for callers that
    /// treat a full queue as fatal: `Accepted` yields the queue depth,
    /// `Rejected` a [`DetectorError::Overload`].
    pub fn into_result(self) -> DetectorResult<usize> {
        match self {
            Self::Accepted { depth } => Ok(depth),
            Self::Rejected { reason, depth } => Err(DetectorError::Overload(format!(
                "admission rejected ({}) at depth {depth}",
                reason.label()
            ))),
        }
    }
}

/// Deterministic per-tenant token-bucket quota. The clock is the service
/// poll (never wall time), so every admission decision stays a pure function
/// of the offer/poll interleaving — the same property the ladder and the
/// crash-recovery gates rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Bucket capacity: the largest burst of frames one tenant can have
    /// admitted back-to-back without waiting for refills.
    pub burst: u32,
    /// Tokens returned to every bucket per serviced poll.
    pub refill_per_poll: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self { burst: 32, refill_per_poll: 1 }
    }
}

impl TenantQuota {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.burst == 0 {
            return Err("tenant burst must be at least 1".into());
        }
        Ok(())
    }
}

/// One tenant's admission ledger: the per-tenant slice of the overload
/// accounting, embedded in [`crate::online::HealthReport::tenants`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Wire tenant id (0..32767).
    pub tenant: u32,
    /// Frames this tenant offered.
    pub offered: usize,
    /// Frames admitted into the queue.
    pub admitted: usize,
    /// Star-frames shed while servicing this tenant's admitted frames.
    pub shed: usize,
    /// Offers rejected because the shared queue was at capacity.
    pub rejected_backpressure: usize,
    /// Offers rejected because this tenant's bucket was empty.
    pub rejected_quota: usize,
}

impl TenantCounters {
    /// Total rejections of either kind.
    pub fn rejected(&self) -> usize {
        self.rejected_backpressure + self.rejected_quota
    }
}

/// Per-tenant rollup: lanes sorted by tenant id so iteration, JSON output,
/// and fleet aggregation are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantRollup {
    lanes: Vec<TenantCounters>,
}

impl TenantRollup {
    /// The lanes, ascending by tenant id.
    pub fn lanes(&self) -> &[TenantCounters] {
        &self.lanes
    }

    /// True when no tenant has been seen.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// True when no tenant was ever rejected or shed.
    pub fn is_clean(&self) -> bool {
        self.lanes.iter().all(|l| l.rejected() == 0 && l.shed == 0)
    }

    /// The lane for `tenant`, created on first touch.
    pub fn lane_mut(&mut self, tenant: u32) -> &mut TenantCounters {
        let at = match self.lanes.binary_search_by_key(&tenant, |l| l.tenant) {
            Ok(at) => at,
            Err(at) => {
                self.lanes.insert(at, TenantCounters { tenant, ..TenantCounters::default() });
                at
            }
        };
        &mut self.lanes[at]
    }

    /// Merges another rollup into this one (fleet aggregation): lanes with
    /// the same tenant id sum counter-by-counter, new tenants are inserted
    /// in id order.
    pub fn absorb(&mut self, other: &TenantRollup) {
        for lane in &other.lanes {
            let mine = self.lane_mut(lane.tenant);
            mine.offered += lane.offered;
            mine.admitted += lane.admitted;
            mine.shed += lane.shed;
            mine.rejected_backpressure += lane.rejected_backpressure;
            mine.rejected_quota += lane.rejected_quota;
        }
    }
}

/// Tunables for the governor. Defaults are sized for a queue that absorbs
/// short bursts untouched, starts degrading at half full, and recovers
/// lazily (hysteresis: stepping up takes much longer than stepping down).
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPolicy {
    /// Bounded admission-queue capacity; offers beyond it are rejected.
    pub queue_capacity: usize,
    /// Depth above which polls count as pressure (shedding and down-steps).
    pub high_watermark: usize,
    /// Depth at or below which polls count as headroom (up-steps).
    pub low_watermark: usize,
    /// Consecutive pressure polls before every non-suspect star steps down.
    pub down_streak: usize,
    /// Consecutive headroom polls before every star steps up.
    pub up_streak: usize,
    /// Serviced frames for which an anomalous verdict pins its star as
    /// [`PriorityClass::Suspect`] (never shed, always scored at full rung).
    pub suspect_hold: usize,
    /// Anomaly threshold for [`FallbackScorer`] scores. The fallback's scale
    /// is unrelated to the POT-calibrated model threshold, so it gets its
    /// own conservative cut.
    pub fallback_threshold: f32,
    /// Per-tenant token-bucket quota for [`StreamGovernor::offer_from`].
    /// `None` (the default) disables tenancy: plain [`StreamGovernor::offer`]
    /// keeps its exact pre-tenant behavior and WAL bytes.
    pub tenant_quota: Option<TenantQuota>,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            high_watermark: 32,
            low_watermark: 8,
            down_streak: 3,
            up_streak: 16,
            suspect_hold: 128,
            fallback_threshold: 3.0,
            tenant_quota: None,
        }
    }
}

impl OverloadPolicy {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.high_watermark >= self.queue_capacity {
            return Err(format!(
                "high_watermark {} must be below queue_capacity {}",
                self.high_watermark, self.queue_capacity
            ));
        }
        if self.low_watermark > self.high_watermark {
            return Err(format!(
                "low_watermark {} must not exceed high_watermark {}",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.down_streak == 0 || self.up_streak == 0 {
            return Err("down_streak and up_streak must be at least 1".into());
        }
        if let Some(quota) = &self.tenant_quota {
            quota.validate()?;
        }
        Ok(())
    }
}

/// Overload accounting embedded in [`crate::online::HealthReport`].
/// `queue_depth`, `queue_peak`, `stars_below_full`, and `frames_behind` are
/// gauges (newest state); everything else is cumulative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadCounters {
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Deepest the queue has been.
    pub queue_peak: usize,
    /// Offers rejected at the door (queue at capacity).
    pub frames_rejected: usize,
    /// Star-frames shed (one star skipped for one serviced frame).
    pub star_sheds: usize,
    /// Per-star down-steps taken by the degradation ladder.
    pub ladder_steps_down: usize,
    /// Per-star up-steps taken by the degradation ladder.
    pub ladder_steps_up: usize,
    /// Stars currently below the full two-stage rung.
    pub stars_below_full: usize,
    /// Verdicts produced by the model-free fallback scorer.
    pub fallback_scores: usize,
    /// Verdicts re-emitted from a star's previous poll (hold-last rung).
    pub held_verdicts: usize,
    /// Frames queued behind the one just serviced (backlog gauge).
    pub frames_behind: usize,
}

impl OverloadCounters {
    /// True when overload never forced any decision. Gauges (and up-steps,
    /// which only ever follow down-steps) are excluded: a drained queue is
    /// not degradation.
    pub fn is_clean(&self) -> bool {
        self.frames_rejected == 0
            && self.star_sheds == 0
            && self.ladder_steps_down == 0
            && self.fallback_scores == 0
            && self.held_verdicts == 0
    }

    /// Adds another governor's counters into this one (fleet rollups).
    /// Cumulative counters sum exactly; gauges and peaks also sum, so the
    /// rolled-up `queue_depth`/`frames_behind` read as fleet-wide backlog
    /// and `queue_peak` as an upper bound on simultaneous depth.
    pub fn absorb(&mut self, other: &OverloadCounters) {
        self.queue_depth += other.queue_depth;
        self.queue_peak += other.queue_peak;
        self.frames_rejected += other.frames_rejected;
        self.star_sheds += other.star_sheds;
        self.ladder_steps_down += other.ladder_steps_down;
        self.ladder_steps_up += other.ladder_steps_up;
        self.stars_below_full += other.stars_below_full;
        self.fallback_scores += other.fallback_scores;
        self.held_verdicts += other.held_verdicts;
        self.frames_behind += other.frames_behind;
    }
}

impl fmt::Display for OverloadCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue {} (peak {}) | rejected {} | shed {} star-frames | \
             ladder {} down / {} up ({} below full) | {} fallback / {} held | {} behind",
            self.queue_depth,
            self.queue_peak,
            self.frames_rejected,
            self.star_sheds,
            self.ladder_steps_down,
            self.ladder_steps_up,
            self.stars_below_full,
            self.fallback_scores,
            self.held_verdicts,
            self.frames_behind,
        )
    }
}

/// Signature of the injected fallback scoring function: a star's trailing
/// window in, a single anomaly score out.
pub type FallbackFn = dyn Fn(&[f32]) -> f32 + Send + Sync;

/// Model-free per-star scorer for the `SrFallback` rung: maps a star's
/// buffered window (oldest first) to an anomaly score. The CLI wires the
/// spectral-residual baseline here; core cannot depend on `aero-baselines`
/// (the dependency points the other way), hence the injection.
#[derive(Clone)]
pub struct FallbackScorer(Arc<FallbackFn>);

impl FallbackScorer {
    /// Wraps a window-scoring closure.
    pub fn new(f: impl Fn(&[f32]) -> f32 + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    fn score(&self, window: &[f32]) -> f32 {
        (self.0)(window)
    }
}

impl fmt::Debug for FallbackScorer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FallbackScorer(..)")
    }
}

/// A serviced frame's verdict plus the overload decisions behind it.
#[derive(Debug, Clone)]
pub struct GovernedVerdict {
    /// The per-star verdicts (fallback / held rungs already substituted).
    pub verdict: FrameVerdict,
    /// Which stars were shed for this frame.
    pub shed: Vec<bool>,
    /// Each star's ladder rung when the frame was serviced.
    pub levels: Vec<LadderLevel>,
    /// Each star's shedding priority when the frame was serviced.
    pub classes: Vec<PriorityClass>,
}

/// A frame parked in the admission queue.
#[derive(Debug, Clone)]
struct QueuedFrame {
    timestamp: f64,
    values: Vec<f32>,
    /// Offering tenant (shed attribution), `None` for untenanted offers.
    tenant: Option<u32>,
}

/// Highest tenant id representable in the packed WAL meta word (15 bits).
pub const MAX_TENANT_ID: u32 = (1 << 15) - 1;

/// Tenant ids ride in the governor's WAL meta word so quota state replays
/// bitwise: bit 31 flags the packed layout, bits 16..31 hold `tenant id + 0`
/// (15 bits), bits 0..16 the polls-since-previous-offer count (saturated).
/// Untenanted offers keep the legacy bare-polls word, so pre-tenant WALs
/// replay unchanged.
const TENANT_META_FLAG: u32 = 1 << 31;

fn pack_meta(tenant: u32, polls: u32) -> u32 {
    TENANT_META_FLAG | (tenant << 16) | polls.min(0xFFFF)
}

/// Splits a WAL meta word into (tenant, polls-since-offer).
fn unpack_meta(meta: u32) -> (Option<u32>, u32) {
    if meta & TENANT_META_FLAG != 0 {
        (Some((meta >> 16) & MAX_TENANT_ID), meta & 0xFFFF)
    } else {
        (None, meta)
    }
}

/// How many of `max_sheddable` stars to shed at queue depth `depth`: zero at
/// the high watermark, scaling linearly to all of them at capacity.
fn shed_count(depth: usize, high: usize, capacity: usize, max_sheddable: usize) -> usize {
    if depth <= high {
        return 0;
    }
    let span = capacity.saturating_sub(high).max(1);
    let over = (depth - high).min(span);
    max_sheddable * over / span
}

/// Admission control + load shedding + degradation ladder around an
/// [`OnlineAero`]. See the module docs for the model; `core/tests/overload.rs`
/// holds the chaos harness that pins down the determinism contract.
#[derive(Debug)]
pub struct StreamGovernor {
    online: OnlineAero,
    policy: OverloadPolicy,
    queue: VecDeque<QueuedFrame>,
    /// Per-star ladder rung.
    levels: Vec<LadderLevel>,
    /// Serviced-frame index until which star `v` stays a suspect.
    suspect_until: Vec<usize>,
    /// Last emitted (score, anomalous) per star, for the hold-last rung.
    last_verdicts: Vec<(f32, bool)>,
    pressure_streak: usize,
    headroom_streak: usize,
    /// Frames serviced so far (the suspect clock).
    polls: usize,
    /// Polls since the previous offer — written as WAL metadata so resume
    /// replays the exact offer/poll interleaving.
    polls_since_offer: u32,
    wal: Option<WalWriter>,
    budget: WorkBudget,
    fallback: Option<FallbackScorer>,
    /// Per-tenant token buckets (present only when the policy enables
    /// tenancy). BTreeMap so refills iterate in tenant-id order.
    tenant_buckets: std::collections::BTreeMap<u32, u32>,
    /// Migration fence (see [`drain_fenced`](Self::drain_fenced)): while
    /// set, polls neither shed stars nor step the ladder — an
    /// administrative drain is not load.
    fenced: bool,
    /// Set when an append failed with [`DetectorError::WalFull`]: the log
    /// was detached and every star forced to `HoldLast` instead of
    /// crashing the stream.
    wal_exhausted: bool,
}

impl StreamGovernor {
    /// Wraps a stream with the default [`OverloadPolicy`].
    pub fn new(online: OnlineAero) -> DetectorResult<Self> {
        Self::with_policy(online, OverloadPolicy::default())
    }

    /// Wraps a stream with an explicit policy.
    pub fn with_policy(online: OnlineAero, policy: OverloadPolicy) -> DetectorResult<Self> {
        policy.validate().map_err(DetectorError::Invalid)?;
        let n = online.num_variates();
        let budget = WorkBudget::new(policy.queue_capacity.saturating_mul(n.max(1)));
        Ok(Self {
            online,
            policy,
            queue: VecDeque::new(),
            levels: vec![LadderLevel::FullAero; n],
            suspect_until: vec![0; n],
            last_verdicts: vec![(0.0, false); n],
            pressure_streak: 0,
            headroom_streak: 0,
            polls: 0,
            polls_since_offer: 0,
            wal: None,
            budget,
            fallback: None,
            tenant_buckets: std::collections::BTreeMap::new(),
            fenced: false,
            wal_exhausted: false,
        })
    }

    /// Installs (or clears) the model-free fallback scorer. Without one the
    /// ladder's `SrFallback` rung is skipped (stars drop straight from
    /// Stage-1-only to hold-last).
    pub fn set_fallback(&mut self, fallback: Option<FallbackScorer>) {
        self.fallback = fallback;
    }

    /// Routes the wrapped detector's Stage-1 through (or around) the batched
    /// cross-star path — see [`crate::Aero::set_batched`]. Bitwise identical
    /// either way; the switch exists for A/B benchmarking.
    pub fn set_batched_inference(&mut self, on: bool) {
        self.online.set_batched_inference(on);
    }

    /// Opts the wrapped detector's degraded rungs into int8 quantized
    /// Stage-1 GEMMs — see [`crate::Aero::set_quantized`]. Only
    /// `Stage1Only`/`SrFallback` stars are affected; `FullAero` stays on the
    /// f32 path bitwise.
    pub fn set_quantized_rungs(&mut self, on: bool) {
        self.online.set_quantized_rungs(on);
    }

    /// Attaches a write-ahead log. Every subsequent offer (accepted or
    /// rejected) is logged *with the polls-since-previous-offer count* before
    /// the admission decision, so [`StreamGovernor::resume_wal`] can replay
    /// the exact interleaving. The wrapped [`OnlineAero`] must not carry its
    /// own WAL — the governor owns logging.
    pub fn attach_wal(&mut self, wal: WalWriter) -> DetectorResult<()> {
        if self.online.wal().is_some() {
            return Err(DetectorError::Invalid(
                "detach the OnlineAero WAL before attaching one to the governor".into(),
            ));
        }
        self.wal = Some(wal);
        Ok(())
    }

    /// Detaches and returns the write-ahead log, if any.
    pub fn take_wal(&mut self) -> Option<WalWriter> {
        self.wal.take()
    }

    /// Offers one arriving frame for admission. The only errors are
    /// structural (frame width, WAL I/O); a full queue is the
    /// [`Admission::Rejected`] value, not an error.
    pub fn offer(&mut self, timestamp: f64, values: &[f32]) -> DetectorResult<Admission> {
        if values.len() != self.online.num_variates() {
            return Err(DetectorError::Invalid(format!(
                "frame width changed: expected {}, got {}",
                self.online.num_variates(),
                values.len()
            )));
        }
        // Write-ahead: even a frame about to be rejected is logged first —
        // the rejection is recomputed deterministically on replay from the
        // same queue state, and logging before deciding means a crash
        // between the two can't silently lose the decision.
        let meta = self.polls_since_offer;
        self.log_offer(timestamp, values, meta)?;
        self.polls_since_offer = 0;
        Ok(self.admit(None, timestamp, values))
    }

    /// [`offer`](Self::offer) on behalf of a tenant: the offer passes the
    /// tenant's token bucket before the shared queue, and both the quota and
    /// backpressure outcomes land in the tenant's
    /// [`TenantCounters`] lane. Requires [`OverloadPolicy::tenant_quota`].
    /// The tenant id rides in the WAL meta word, so a resumed governor
    /// replays bucket state and every per-tenant decision bitwise.
    pub fn offer_from(
        &mut self,
        tenant: u32,
        timestamp: f64,
        values: &[f32],
    ) -> DetectorResult<Admission> {
        if self.policy.tenant_quota.is_none() {
            return Err(DetectorError::Invalid(
                "offer_from requires OverloadPolicy::tenant_quota".into(),
            ));
        }
        if tenant > MAX_TENANT_ID {
            return Err(DetectorError::Invalid(format!(
                "tenant id {tenant} exceeds the {MAX_TENANT_ID} wire maximum"
            )));
        }
        if values.len() != self.online.num_variates() {
            return Err(DetectorError::Invalid(format!(
                "frame width changed: expected {}, got {}",
                self.online.num_variates(),
                values.len()
            )));
        }
        let meta = pack_meta(tenant, self.polls_since_offer);
        self.log_offer(timestamp, values, meta)?;
        self.polls_since_offer = 0;
        Ok(self.admit(Some(tenant), timestamp, values))
    }

    /// Appends one offer to the WAL, degrading instead of crashing when the
    /// device is full: on [`DetectorError::WalFull`] the log is detached
    /// (its on-disk prefix stays valid), every star drops to `HoldLast`,
    /// and the stream keeps serving from memory. Other errors propagate.
    fn log_offer(&mut self, timestamp: f64, values: &[f32], meta: u32) -> DetectorResult<()> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        match wal.append_with_meta(timestamp, values, meta) {
            Ok(_) => Ok(()),
            Err(DetectorError::WalFull(_)) => {
                self.wal = None;
                self.wal_exhausted = true;
                self.force_ladder_level(LadderLevel::HoldLast);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Whether the WAL was detached mid-run because the device filled up.
    /// While set, verdicts past the detach point are hold-last and are not
    /// recoverable by [`StreamGovernor::resume_wal`].
    pub fn wal_exhausted(&self) -> bool {
        self.wal_exhausted
    }

    /// The admission decision proper (shared by `offer`, `offer_from`, and
    /// WAL replay): tenant bucket first, then the shared bounded queue.
    fn admit(&mut self, tenant: Option<u32>, timestamp: f64, values: &[f32]) -> Admission {
        let n = self.online.num_variates();
        let depth = self.queue.len();
        if let Some(t) = tenant {
            let burst = self.policy.tenant_quota.map(|q| q.burst).unwrap_or(u32::MAX);
            let bucket = self.tenant_buckets.entry(t).or_insert(burst);
            let lane = self.online.health_mut().tenants.lane_mut(t);
            lane.offered += 1;
            if *bucket == 0 {
                lane.rejected_quota += 1;
                self.online.health_mut().overload.queue_depth = depth;
                return Admission::Rejected { reason: RejectReason::QuotaExceeded, depth };
            }
        }
        if depth >= self.policy.queue_capacity {
            if let Some(t) = tenant {
                self.online.health_mut().tenants.lane_mut(t).rejected_backpressure += 1;
            }
            let overload = &mut self.online.health_mut().overload;
            overload.frames_rejected += 1;
            overload.queue_depth = depth;
            return Admission::Rejected { reason: RejectReason::Backpressure, depth };
        }
        if let Some(t) = tenant {
            // Charge the token only on acceptance: quota measures admitted
            // work, not attempts the shared queue turned away.
            if let Some(bucket) = self.tenant_buckets.get_mut(&t) {
                *bucket -= 1;
            }
            self.online.health_mut().tenants.lane_mut(t).admitted += 1;
        }
        self.budget.try_charge(n.max(1));
        self.queue.push_back(QueuedFrame {
            timestamp,
            values: values.to_vec(),
            tenant,
        });
        let depth = self.queue.len();
        let overload = &mut self.online.health_mut().overload;
        overload.queue_depth = depth;
        overload.queue_peak = overload.queue_peak.max(depth);
        Admission::Accepted { depth }
    }

    /// Services the oldest queued frame: steps the ladder, picks the shed
    /// set, scores what remains, and substitutes the fallback / hold-last
    /// rungs. Returns `None` on an empty queue.
    pub fn poll(&mut self) -> DetectorResult<Option<GovernedVerdict>> {
        let depth = self.queue.len();
        let Some(frame) = self.queue.pop_front() else {
            let overload = &mut self.online.health_mut().overload;
            overload.queue_depth = 0;
            overload.frames_behind = 0;
            return Ok(None);
        };
        let n = self.online.num_variates();
        self.polls_since_offer = self.polls_since_offer.saturating_add(1);

        // The service poll is the tenant clock: every bucket refills here.
        // Only serviced polls count (empty polls are not WAL-recorded), so
        // replay ticks the buckets exactly as the live run did.
        if let Some(quota) = self.policy.tenant_quota {
            for bucket in self.tenant_buckets.values_mut() {
                *bucket = bucket.saturating_add(quota.refill_per_poll).min(quota.burst);
            }
        }

        // Pressure signal = depth at poll time (the frame being serviced
        // included): a pure function of the offer/poll interleaving. A
        // migration fence suppresses both the ladder and the shed set: the
        // backlog being flushed is administrative, not arrival pressure, and
        // a star must not leave its shard with a shed mark it would never
        // have earned in an uninterrupted run.
        let classes = self.classes();
        let shed = if self.fenced {
            vec![false; n]
        } else {
            self.step_ladder(depth);
            self.shed_set(depth, &classes)
        };

        let modes: Vec<ScoreMode> = (0..n)
            .map(|v| {
                if shed[v] {
                    ScoreMode::Skip
                } else if classes[v] == PriorityClass::Suspect {
                    // Suspects are pinned to the full pipeline whatever the
                    // ladder says: a candidate alert gets the best verdict
                    // the system can produce.
                    ScoreMode::Full
                } else {
                    self.levels[v].score_mode()
                }
            })
            .collect();

        let mut verdict = self
            .online
            .push_with_modes(frame.timestamp, &frame.values, &modes)?;
        self.budget.release(n.max(1));
        self.polls += 1;
        let scored = verdict.disposition == FrameDisposition::Scored;

        // Substitute the model-free rungs into the verdict. Quarantined
        // stars stay suppressed: SR on a mostly-imputed window would score
        // our own imputation, and a held verdict would predate the blackout.
        let mut fallback_scores = 0usize;
        let mut held_verdicts = 0usize;
        let mut star_sheds = 0usize;
        for v in 0..n {
            if shed[v] {
                star_sheds += 1;
                continue;
            }
            if !scored || classes[v] == PriorityClass::Suspect {
                continue;
            }
            let quarantined = verdict.stars[v].status == StarStatus::Quarantined;
            match self.levels[v] {
                LadderLevel::FullAero | LadderLevel::Stage1Only => {}
                LadderLevel::SrFallback => match (&self.fallback, quarantined) {
                    (Some(fb), false) => {
                        let score = fb.score(&self.online.star_window(v));
                        verdict.stars[v].score = score;
                        verdict.stars[v].anomalous = score >= self.policy.fallback_threshold;
                        fallback_scores += 1;
                    }
                    _ => {
                        // No scorer (or quarantined): behave as hold-last.
                        if !quarantined {
                            let (score, anomalous) = self.last_verdicts[v];
                            verdict.stars[v].score = score;
                            verdict.stars[v].anomalous = anomalous;
                            held_verdicts += 1;
                        }
                    }
                },
                LadderLevel::HoldLast => {
                    if !quarantined {
                        let (score, anomalous) = self.last_verdicts[v];
                        verdict.stars[v].score = score;
                        verdict.stars[v].anomalous = anomalous;
                        held_verdicts += 1;
                    }
                }
            }
        }

        // Bookkeeping: suspects, hold-last memory, gauges.
        let mut stars_below_full = 0usize;
        for (v, &was_shed) in shed.iter().enumerate() {
            let star = verdict.stars[v];
            if star.anomalous {
                self.suspect_until[v] = self.polls + self.policy.suspect_hold;
            }
            if scored && !was_shed {
                self.last_verdicts[v] = (star.score, star.anomalous);
            }
            if self.levels[v] != LadderLevel::FullAero {
                stars_below_full += 1;
            }
        }
        let backlog = self.queue.len();
        if let Some(t) = frame.tenant {
            self.online.health_mut().tenants.lane_mut(t).shed += star_sheds;
        }
        let overload = &mut self.online.health_mut().overload;
        overload.star_sheds += star_sheds;
        overload.fallback_scores += fallback_scores;
        overload.held_verdicts += held_verdicts;
        overload.stars_below_full = stars_below_full;
        overload.queue_depth = backlog;
        overload.frames_behind = backlog;

        Ok(Some(GovernedVerdict {
            verdict,
            shed,
            levels: self.levels.clone(),
            classes,
        }))
    }

    /// Polls until the queue is empty, collecting every verdict.
    pub fn drain(&mut self) -> DetectorResult<Vec<GovernedVerdict>> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(v) = self.poll()? {
            out.push(v);
        }
        Ok(out)
    }

    /// Polls until the queue is empty under a migration fence: no star is
    /// shed and the ladder holds still, so the drained verdicts are exactly
    /// what an unfenced, unpressured governor would have produced. This is
    /// phase 1 of a live handoff (DESIGN.md §16) — after it returns, the
    /// governor is quiescent and [`export_migration`](Self::export_migration)
    /// can snapshot it.
    pub fn drain_fenced(&mut self) -> DetectorResult<Vec<GovernedVerdict>> {
        self.fenced = true;
        let out = self.drain();
        self.fenced = false;
        out
    }

    /// Steps the hysteretic ladder from the queue-depth signal.
    fn step_ladder(&mut self, depth: usize) {
        if self.wal_exhausted {
            // Pinned to hold-last until the operator restarts with space:
            // stepping back up would emit unlogged (unrecoverable) verdicts.
            return;
        }
        let has_fallback = self.fallback.is_some();
        if depth > self.policy.high_watermark {
            self.pressure_streak += 1;
            self.headroom_streak = 0;
            if self.pressure_streak >= self.policy.down_streak {
                self.pressure_streak = 0;
                let mut steps = 0usize;
                for (v, level) in self.levels.iter_mut().enumerate() {
                    if self.suspect_until[v] > self.polls {
                        continue; // suspects never degrade
                    }
                    let next = level.down(has_fallback);
                    if next != *level {
                        *level = next;
                        steps += 1;
                    }
                }
                self.online.health_mut().overload.ladder_steps_down += steps;
            }
        } else if depth <= self.policy.low_watermark {
            self.headroom_streak += 1;
            self.pressure_streak = 0;
            if self.headroom_streak >= self.policy.up_streak {
                self.headroom_streak = 0;
                let mut steps = 0usize;
                for level in self.levels.iter_mut() {
                    let next = level.up(has_fallback);
                    if next != *level {
                        *level = next;
                        steps += 1;
                    }
                }
                self.online.health_mut().overload.ladder_steps_up += steps;
            }
        } else {
            // Between the watermarks: hold the current rungs and require the
            // streaks to restart — that's the hysteresis band.
            self.pressure_streak = 0;
            self.headroom_streak = 0;
        }
    }

    /// Current shedding priority of every star.
    fn classes(&self) -> Vec<PriorityClass> {
        self.online
            .star_status()
            .iter()
            .enumerate()
            .map(|(v, status)| {
                if self.suspect_until[v] > self.polls {
                    PriorityClass::Suspect
                } else {
                    match status {
                        StarStatus::Quarantined => PriorityClass::Quarantined,
                        StarStatus::Degraded => PriorityClass::Degraded,
                        StarStatus::Nominal => PriorityClass::Nominal,
                    }
                }
            })
            .collect()
    }

    /// Picks the shed set for this poll: lowest classes first, ties by star
    /// index, suspects excluded outright — so an anomaly-suspect star can
    /// never be shed while any lower-priority star survives.
    fn shed_set(&mut self, depth: usize, classes: &[PriorityClass]) -> Vec<bool> {
        let n = classes.len();
        let mut shed = vec![false; n];
        let sheddable: Vec<usize> = {
            let mut idx: Vec<usize> = (0..n)
                .filter(|&v| classes[v] != PriorityClass::Suspect)
                .collect();
            idx.sort_by_key(|&v| (classes[v], v));
            idx
        };
        let count = shed_count(
            depth,
            self.policy.high_watermark,
            self.policy.queue_capacity,
            sheddable.len(),
        );
        for &v in sheddable.iter().take(count) {
            shed[v] = true;
        }
        shed
    }

    /// Resumes a governed stream from its write-ahead log: recovers the
    /// longest valid prefix, then replays the recorded offer/poll
    /// interleaving through a freshly rebuilt `online` (same model, same
    /// calibration), reproducing queue, ladder, suspect set, and every
    /// counter bitwise. Returns the replayed verdicts so the caller can
    /// deduplicate against already-emitted output. Legacy records without
    /// interleaving metadata are replayed conservatively (drain fully, then
    /// offer), which reproduces an ungoverned `push` stream.
    pub fn resume_wal(
        online: OnlineAero,
        policy: OverloadPolicy,
        fallback: Option<FallbackScorer>,
        dir: &Path,
        config: WalConfig,
    ) -> DetectorResult<(Self, Vec<GovernedVerdict>, WalRecovery)> {
        if online.wal().is_some() {
            return Err(DetectorError::Invalid(
                "detach the OnlineAero WAL before resuming a governed stream".into(),
            ));
        }
        let (wal, frames, recovery) = WalWriter::resume(dir, config)?;
        let mut gov = Self::with_policy(online, policy)?;
        gov.fallback = fallback;
        let verdicts = gov.replay_frames(frames)?;
        gov.wal = Some(wal);
        Ok((gov, verdicts, recovery))
    }

    /// Replays recovered WAL frames through this governor, reproducing the
    /// recorded offer/poll interleaving (see [`resume_wal`](Self::resume_wal)
    /// for the semantics of the meta word and of legacy meta-less records).
    fn replay_frames(&mut self, frames: Vec<crate::wal::WalFrame>) -> DetectorResult<Vec<GovernedVerdict>> {
        let mut verdicts = Vec::new();
        for frame in frames {
            match frame.meta {
                Some(meta) => {
                    let (tenant, polls) = unpack_meta(meta);
                    for _ in 0..polls {
                        if let Some(v) = self.poll()? {
                            verdicts.push(v);
                        }
                    }
                    self.admit(tenant, frame.timestamp, &frame.values);
                    self.polls_since_offer = 0;
                }
                None => {
                    verdicts.extend(self.drain()?);
                    self.admit(None, frame.timestamp, &frame.values);
                    self.polls_since_offer = 0;
                    verdicts.extend(self.drain()?);
                }
            }
        }
        Ok(verdicts)
    }

    /// Resumes a governed stream from a WAL **on top of a seeded governor**:
    /// the post-commit half of a live shard migration (DESIGN.md §16). The
    /// caller builds the governor (fresh model, new membership), installs a
    /// [`crate::migrate::ShardSnapshot`] via
    /// [`install_migration`](Self::install_migration), and then replays the
    /// shard's *new* epoch directory here — frames appended after the
    /// handoff committed. The governor must not already own a WAL.
    pub fn resume_wal_into(
        &mut self,
        dir: &Path,
        config: WalConfig,
    ) -> DetectorResult<(Vec<GovernedVerdict>, WalRecovery)> {
        if self.wal.is_some() {
            return Err(DetectorError::Invalid(
                "governor already owns a WAL; detach it before resume_wal_into".into(),
            ));
        }
        let (wal, frames, recovery) = WalWriter::resume(dir, config)?;
        let verdicts = self.replay_frames(frames)?;
        self.wal = Some(wal);
        Ok((verdicts, recovery))
    }

    /// Snapshots the governor half of a shard for migration: poll clock,
    /// ladder/suspect/hold-last state per star, streaks, and tenant buckets.
    /// Requires a drained queue ([`drain_fenced`](Self::drain_fenced) first)
    /// — queued frames belong in the WAL, not the snapshot.
    pub fn export_migration(&self) -> DetectorResult<crate::migrate::GovernorState> {
        if !self.queue.is_empty() {
            return Err(DetectorError::Invalid(format!(
                "cannot export a governor with {} queued frames; drain first",
                self.queue.len()
            )));
        }
        Ok(crate::migrate::GovernorState {
            polls: self.polls as u64,
            polls_since_offer: self.polls_since_offer,
            pressure_streak: self.pressure_streak as u64,
            headroom_streak: self.headroom_streak as u64,
            tenant_buckets: self.tenant_buckets.iter().map(|(&t, &b)| (t, b)).collect(),
            stars: (0..self.levels.len())
                .map(|v| crate::migrate::GovernorStarState {
                    level: self.levels[v],
                    suspect_remaining: self.suspect_until[v].saturating_sub(self.polls) as u64,
                    last_score: self.last_verdicts[v].0,
                    last_anomalous: self.last_verdicts[v].1,
                })
                .collect(),
        })
    }

    /// Installs a migrated governor snapshot, rebasing each star's suspect
    /// deadline onto this governor's poll clock. `stars` maps each snapshot
    /// lane to a star index here (destination shards install a sub-slice of
    /// the source snapshot; a rebuilt shard installs all lanes in order).
    pub fn install_migration(
        &mut self,
        state: &crate::migrate::GovernorState,
        stars: &[(usize, usize)],
    ) -> DetectorResult<()> {
        if !self.queue.is_empty() {
            return Err(DetectorError::Invalid(
                "cannot install migration state over a non-empty queue".into(),
            ));
        }
        for &(from, to) in stars {
            let lane = state.stars.get(from).ok_or_else(|| {
                DetectorError::Invalid(format!("snapshot lane {from} out of range"))
            })?;
            if to >= self.levels.len() {
                return Err(DetectorError::Invalid(format!(
                    "star index {to} out of range for {}-star governor",
                    self.levels.len()
                )));
            }
            self.levels[to] = lane.level;
            self.suspect_until[to] = self.polls + lane.suspect_remaining as usize;
            self.last_verdicts[to] = (lane.last_score, lane.last_anomalous);
        }
        Ok(())
    }

    /// Installs the shard-wide governor clocks from a snapshot (full-shard
    /// rebuild only — a destination merging one star keeps its own clocks).
    pub fn install_clocks(&mut self, state: &crate::migrate::GovernorState) {
        self.polls = state.polls as usize;
        self.polls_since_offer = state.polls_since_offer;
        self.pressure_streak = state.pressure_streak as usize;
        self.headroom_streak = state.headroom_streak as usize;
        self.tenant_buckets = state.tenant_buckets.iter().copied().collect();
    }

    /// Forces every star onto one rung (benchmarks and operator runbooks;
    /// the ladder keeps stepping from here).
    pub fn force_ladder_level(&mut self, level: LadderLevel) {
        for slot in self.levels.iter_mut() {
            *slot = level;
        }
    }

    /// The wrapped stream (health counters, thresholds, star status).
    pub fn online(&self) -> &OnlineAero {
        &self.online
    }

    /// Consumes the governor, returning the wrapped stream.
    pub fn into_online(self) -> OnlineAero {
        self.online
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Each star's current ladder rung.
    pub fn levels(&self) -> &[LadderLevel] {
        &self.levels
    }

    /// The memory/work accountant (peak tracks the deepest backlog).
    pub fn budget(&self) -> &WorkBudget {
        &self.budget
    }

    /// Frames serviced so far.
    pub fn polls(&self) -> usize {
        self.polls
    }

    /// The active policy.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_steps_skip_vacuous_fallback_rung() {
        // With a fallback scorer the ladder walks every rung.
        let mut level = LadderLevel::FullAero;
        let mut walked = vec![level];
        for _ in 0..4 {
            level = level.down(true);
            walked.push(level);
        }
        assert_eq!(
            walked,
            vec![
                LadderLevel::FullAero,
                LadderLevel::Stage1Only,
                LadderLevel::SrFallback,
                LadderLevel::HoldLast,
                LadderLevel::HoldLast,
            ]
        );
        // Without one, SrFallback is skipped in both directions.
        assert_eq!(LadderLevel::Stage1Only.down(false), LadderLevel::HoldLast);
        assert_eq!(LadderLevel::HoldLast.up(false), LadderLevel::Stage1Only);
        assert_eq!(LadderLevel::HoldLast.up(true), LadderLevel::SrFallback);
        assert_eq!(LadderLevel::FullAero.up(true), LadderLevel::FullAero);
    }

    #[test]
    fn shed_count_scales_between_watermark_and_capacity() {
        // high = 32, capacity = 64, 10 sheddable stars.
        assert_eq!(shed_count(0, 32, 64, 10), 0);
        assert_eq!(shed_count(32, 32, 64, 10), 0);
        assert_eq!(shed_count(48, 32, 64, 10), 5);
        assert_eq!(shed_count(64, 32, 64, 10), 10);
        assert_eq!(shed_count(1000, 32, 64, 10), 10, "clamped past capacity");
        assert_eq!(shed_count(64, 32, 64, 0), 0, "nothing sheddable");
        // Degenerate watermark geometry must not divide by zero.
        assert_eq!(shed_count(5, 4, 4, 3), 3);
    }

    #[test]
    fn admission_into_result_maps_rejection_to_overload_error() {
        assert_eq!(Admission::Accepted { depth: 3 }.into_result().unwrap(), 3);
        let err = Admission::Rejected { reason: RejectReason::Backpressure, depth: 64 }
            .into_result()
            .unwrap_err();
        assert!(matches!(err, DetectorError::Overload(_)));
        assert!(err.to_string().contains("64"));
        assert!(err.to_string().contains("backpressure"));
        let err = Admission::Rejected { reason: RejectReason::QuotaExceeded, depth: 1 }
            .into_result()
            .unwrap_err();
        assert!(err.to_string().contains("quota_exceeded"));
    }

    #[test]
    fn tenant_meta_word_round_trips_and_saturates() {
        assert_eq!(unpack_meta(pack_meta(0, 0)), (Some(0), 0));
        assert_eq!(unpack_meta(pack_meta(7, 12)), (Some(7), 12));
        assert_eq!(unpack_meta(pack_meta(MAX_TENANT_ID, 5)), (Some(MAX_TENANT_ID), 5));
        // Poll counts saturate at the 16-bit field instead of corrupting
        // the tenant bits.
        assert_eq!(unpack_meta(pack_meta(3, 1 << 20)), (Some(3), 0xFFFF));
        // Legacy bare-polls words stay untenanted.
        assert_eq!(unpack_meta(42), (None, 42));
        assert_eq!(unpack_meta(0), (None, 0));
    }

    #[test]
    fn tenant_rollup_merges_lanes_by_id() {
        let mut a = TenantRollup::default();
        a.lane_mut(3).admitted = 5;
        a.lane_mut(1).offered = 2;
        let mut b = TenantRollup::default();
        b.lane_mut(3).admitted = 7;
        b.lane_mut(3).rejected_quota = 1;
        b.lane_mut(9).shed = 4;
        a.absorb(&b);
        let ids: Vec<u32> = a.lanes().iter().map(|l| l.tenant).collect();
        assert_eq!(ids, vec![1, 3, 9], "lanes stay sorted by tenant id");
        assert_eq!(a.lanes()[1].admitted, 12);
        assert_eq!(a.lanes()[1].rejected(), 1);
        assert_eq!(a.lanes()[2].shed, 4);
        assert!(!a.is_clean());
        assert!(TenantRollup::default().is_clean());
    }

    #[test]
    fn tenant_quota_validation() {
        assert!(TenantQuota::default().validate().is_ok());
        assert!(TenantQuota { burst: 0, refill_per_poll: 1 }.validate().is_err());
        let policy = OverloadPolicy {
            tenant_quota: Some(TenantQuota { burst: 0, refill_per_poll: 1 }),
            ..OverloadPolicy::default()
        };
        assert!(policy.validate().is_err());
    }

    #[test]
    fn policy_validation_rejects_inverted_watermarks() {
        assert!(OverloadPolicy::default().validate().is_ok());
        let bad = OverloadPolicy { high_watermark: 64, ..OverloadPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = OverloadPolicy { low_watermark: 33, ..OverloadPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = OverloadPolicy { queue_capacity: 0, ..OverloadPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = OverloadPolicy { up_streak: 0, ..OverloadPolicy::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn counters_cleanliness_ignores_gauges() {
        let mut c = OverloadCounters::default();
        assert!(c.is_clean());
        c.queue_depth = 10;
        c.queue_peak = 20;
        c.frames_behind = 10;
        c.ladder_steps_up = 1; // only reachable after a down-step in practice
        assert!(c.is_clean(), "gauges are not degradation");
        c.star_sheds = 1;
        assert!(!c.is_clean());
        let shown = c.to_string();
        assert!(shown.contains("shed 1 star-frames"), "{shown}");
    }

    #[test]
    fn priority_classes_order_suspect_last() {
        let mut classes = vec![
            PriorityClass::Suspect,
            PriorityClass::Nominal,
            PriorityClass::Quarantined,
            PriorityClass::Degraded,
        ];
        classes.sort();
        assert_eq!(
            classes,
            vec![
                PriorityClass::Quarantined,
                PriorityClass::Degraded,
                PriorityClass::Nominal,
                PriorityClass::Suspect,
            ]
        );
    }
}
