//! Named ablation variants (paper Table IV).

use crate::config::{AeroConfig, GraphMode};

/// The seven Table IV variants plus the full model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// The complete AERO model.
    Full,
    /// 1i — remove the temporal reconstruction module.
    WithoutTemporal,
    /// 1ii — feed the temporal module multivariate (joint) input.
    WithoutUnivariateInput,
    /// 1iii — remove the short-window decoder input (ω = W).
    WithoutShortWindow,
    /// 2i — remove the concurrent-noise reconstruction module.
    WithoutConcurrentNoise,
    /// 2ii — remove the noise module *and* use multivariate input.
    WithoutConcurrentNoiseAndUnivariate,
    /// 2iii — replace the window-wise graph with a static complete graph.
    StaticGraph,
    /// 2iv — replace it with an ESG-style dynamic (EWMA-evolving) graph.
    DynamicGraph,
}

impl AblationVariant {
    /// All variants in the order of Table IV.
    pub const ALL: [AblationVariant; 8] = [
        Self::Full,
        Self::WithoutTemporal,
        Self::WithoutUnivariateInput,
        Self::WithoutShortWindow,
        Self::WithoutConcurrentNoise,
        Self::WithoutConcurrentNoiseAndUnivariate,
        Self::StaticGraph,
        Self::DynamicGraph,
    ];

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Full => "AERO",
            Self::WithoutTemporal => "1) i   w/o temporal",
            Self::WithoutUnivariateInput => "1) ii  w/o univariate input",
            Self::WithoutShortWindow => "1) iii w/o short window",
            Self::WithoutConcurrentNoise => "2) i   w/o concurrent noise",
            Self::WithoutConcurrentNoiseAndUnivariate => "2) ii  w/o noise & univariate",
            Self::StaticGraph => "2) iii w/o window-wise (static)",
            Self::DynamicGraph => "2) iv  w/o window-wise (dynamic)",
        }
    }

    /// Applies the ablation to a base configuration.
    pub fn configure(&self, base: &AeroConfig) -> AeroConfig {
        let mut cfg = base.clone();
        match self {
            Self::Full => {}
            Self::WithoutTemporal => cfg.use_temporal = false,
            Self::WithoutUnivariateInput => cfg.univariate_input = false,
            Self::WithoutShortWindow => cfg.use_short_window = false,
            Self::WithoutConcurrentNoise => cfg.use_noise_module = false,
            Self::WithoutConcurrentNoiseAndUnivariate => {
                cfg.use_noise_module = false;
                cfg.univariate_input = false;
            }
            Self::StaticGraph => cfg.graph_mode = GraphMode::StaticComplete,
            Self::DynamicGraph => cfg.graph_mode = GraphMode::DynamicEwma { beta: 0.9 },
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_produce_valid_configs() {
        let base = AeroConfig::tiny();
        for v in AblationVariant::ALL {
            let cfg = v.configure(&base);
            assert!(cfg.validate().is_ok(), "{v:?}");
        }
    }

    #[test]
    fn variants_change_the_right_switch() {
        let base = AeroConfig::tiny();
        assert!(!AblationVariant::WithoutTemporal.configure(&base).use_temporal);
        assert!(!AblationVariant::WithoutUnivariateInput
            .configure(&base)
            .univariate_input);
        assert!(!AblationVariant::WithoutShortWindow
            .configure(&base)
            .use_short_window);
        assert!(!AblationVariant::WithoutConcurrentNoise
            .configure(&base)
            .use_noise_module);
        let both = AblationVariant::WithoutConcurrentNoiseAndUnivariate.configure(&base);
        assert!(!both.use_noise_module && !both.univariate_input);
        assert_eq!(
            AblationVariant::StaticGraph.configure(&base).graph_mode,
            GraphMode::StaticComplete
        );
        assert!(matches!(
            AblationVariant::DynamicGraph.configure(&base).graph_mode,
            GraphMode::DynamicEwma { .. }
        ));
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = AblationVariant::ALL.iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), AblationVariant::ALL.len());
    }
}
