//! Model persistence: save a trained [`Aero`] to JSON and load it back —
//! train once offline, deploy in the online monitor.
//!
//! # Format v3: backbone once, deltas per star
//!
//! A v3 file stores the shared trunk — configuration plus every parameter
//! tensor — **once**, followed by one kilobyte-scale
//! [`StarDelta`](crate::model::StarDelta) per star (scaler column + trained
//! adapter head), and an integrity checksum over the whole numeric payload.
//! Loading rebuilds the module structure deterministically (same config
//! seed ⇒ same parameter registration order) and reassembles the detector
//! via [`Aero::from_backbone`], verifying names, shapes, delta
//! well-formedness, and the checksum. v2 files (monolithic, pre-adapter)
//! remain loadable; v1 files predate any deployed release and are rejected.
//!
//! # Crash safety
//!
//! [`save_model`] never writes the target path directly: it writes a
//! sibling temporary file, fsyncs it, and atomically renames it over the
//! destination. A crash (or `kill -9`) at any instant therefore leaves
//! either the previous complete checkpoint or the new complete checkpoint
//! at `path` — never a truncated hybrid. An abandoned `.tmp` sibling may
//! survive a crash, but it is not at the load path and [`load_model`]
//! rejects partial content anyway.
//!
//! # Error taxonomy
//!
//! - [`DetectorError::Io`] — the OS failed to read/write (missing file,
//!   permissions, full disk). Retryable; nothing is known about the data.
//! - [`DetectorError::Corrupt`] — a file exists but its contents are
//!   unusable: unparseable JSON, truncation, checksum mismatch, shape or
//!   name drift, or an incompatible format version.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use aero_timeseries::MinMaxScaler;

use crate::adapter::StarAdapter;
use crate::config::AeroConfig;
use crate::detector::{DetectorError, DetectorResult};
use crate::model::{Aero, BackboneSnapshot, StarDelta};

/// On-disk representation of a trained model (format v3): the shared trunk
/// stored once, plus one delta per star.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SavedAero {
    /// Format version for forward compatibility.
    version: u32,
    config: AeroConfig,
    num_variates: usize,
    /// `(name, rows, cols, values)` per trunk parameter, in registration
    /// order — stored exactly once no matter how many stars share it.
    params: Vec<(String, usize, usize, Vec<f32>)>,
    /// One per star, in variate order.
    deltas: Vec<SavedDelta>,
    /// FNV-1a over the numeric payload bits; see [`payload_checksum`].
    checksum: u64,
}

/// One star's persisted delta: scaler column + optional adapter head.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SavedDelta {
    scaler_min: f32,
    scaler_range: f32,
    #[serde(default)]
    adapter: Option<SavedAdapter>,
}

/// A serialized [`StarAdapter`].
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SavedAdapter {
    omega: usize,
    rank: usize,
    p: Vec<f32>,
    q: Vec<f32>,
    bias: f32,
    mean: f32,
    var: f32,
    updates: u64,
}

/// The monolithic v2 layout: full scaler vectors at top level, no deltas.
/// Still read (v2 files in the field keep loading); never written.
#[derive(Debug, serde::Deserialize)]
struct SavedAeroV2 {
    config: AeroConfig,
    num_variates: usize,
    scaler_mins: Vec<f32>,
    scaler_ranges: Vec<f32>,
    params: Vec<(String, usize, usize, Vec<f32>)>,
    checksum: u64,
}

/// Version 2 added the integrity checksum (monolithic layout); version 3
/// split the file into backbone-once + per-star deltas. Version-1 files
/// (no checksum) predate any deployed release and are rejected.
const FORMAT_VERSION: u32 = 3;
/// The newest *legacy* version still accepted by [`load_model`].
const LEGACY_VERSION: u32 = 2;

/// Incremental FNV-1a 64-bit hasher — the integrity scheme shared by the
/// checkpoint format (v2) and the write-ahead log (`crate::wal`).
#[derive(Debug, Clone)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Self(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes the trunk parameters into `h` (shared by both format versions).
fn hash_params(h: &mut Fnv64, params: &[(String, usize, usize, Vec<f32>)]) {
    for (name, rows, cols, values) in params {
        h.write(name.as_bytes());
        h.write(&(*rows as u64).to_le_bytes());
        h.write(&(*cols as u64).to_le_bytes());
        for &v in values {
            h.write(&v.to_bits().to_le_bytes());
        }
    }
}

/// FNV-1a 64-bit over the v3 bit-exact payload: variate count, every trunk
/// parameter's name/shape/values, and every star delta. Catches bit flips
/// and silent truncation that still happen to parse as JSON.
fn payload_checksum(
    num_variates: usize,
    params: &[(String, usize, usize, Vec<f32>)],
    deltas: &[SavedDelta],
) -> u64 {
    let mut h = Fnv64::new();
    h.write(&(num_variates as u64).to_le_bytes());
    hash_params(&mut h, params);
    for d in deltas {
        h.write(&d.scaler_min.to_bits().to_le_bytes());
        h.write(&d.scaler_range.to_bits().to_le_bytes());
        match &d.adapter {
            None => h.write(&[0]),
            Some(a) => {
                h.write(&[1]);
                h.write(&(a.omega as u64).to_le_bytes());
                h.write(&(a.rank as u64).to_le_bytes());
                for &v in a.p.iter().chain(&a.q) {
                    h.write(&v.to_bits().to_le_bytes());
                }
                for v in [a.bias, a.mean, a.var] {
                    h.write(&v.to_bits().to_le_bytes());
                }
                h.write(&a.updates.to_le_bytes());
            }
        }
    }
    h.finish()
}

/// The v2 (monolithic) checksum: variate count, scaler vectors, parameters.
fn payload_checksum_v2(
    num_variates: usize,
    mins: &[f32],
    ranges: &[f32],
    params: &[(String, usize, usize, Vec<f32>)],
) -> u64 {
    let mut h = Fnv64::new();
    h.write(&(num_variates as u64).to_le_bytes());
    for &v in mins.iter().chain(ranges) {
        h.write(&v.to_bits().to_le_bytes());
    }
    hash_params(&mut h, params);
    h.finish()
}

/// Converts a live adapter head into its on-disk form.
fn saved_adapter(head: &StarAdapter) -> SavedAdapter {
    SavedAdapter {
        omega: head.omega(),
        rank: head.rank(),
        p: head.p.clone(),
        q: head.q.clone(),
        bias: head.bias,
        mean: head.mean,
        var: head.var,
        updates: head.updates(),
    }
}

/// Saves a trained model to `path` as JSON (format v3), atomically.
pub fn save_model(model: &Aero, path: &Path) -> DetectorResult<()> {
    if !model.is_trained() {
        return Err(DetectorError::Invalid("cannot save an untrained model".into()));
    }
    let store = model.store();
    let params: Vec<(String, usize, usize, Vec<f32>)> = store
        .iter()
        .map(|(_, p)| {
            let v = p.value();
            (p.name().to_string(), v.rows(), v.cols(), v.as_slice().to_vec())
        })
        .collect();
    let num_variates = model.scaler().mins().len();
    let deltas: Vec<SavedDelta> = (0..num_variates)
        .map(|v| {
            let d = model.star_delta(v)?;
            Ok(SavedDelta {
                scaler_min: d.scaler_min,
                scaler_range: d.scaler_range,
                adapter: d.adapter.as_ref().map(saved_adapter),
            })
        })
        .collect::<DetectorResult<_>>()?;
    let checksum = payload_checksum(num_variates, &params, &deltas);
    let saved = SavedAero {
        version: FORMAT_VERSION,
        config: model.config().clone(),
        num_variates,
        params,
        deltas,
        checksum,
    };
    let json = serde_json::to_string(&saved)
        .map_err(|e| DetectorError::Invalid(format!("serialize: {e}")))?;

    // Write-temp, fsync, rename: the destination path transitions
    // atomically from old-complete to new-complete.
    let tmp = temp_sibling(path);
    let result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        // Best-effort cleanup; the partial temp must not be mistaken for a
        // checkpoint, and it is unloadable regardless.
        std::fs::remove_file(&tmp).ok();
        return Err(DetectorError::Io(format!("write {}: {e}", path.display())));
    }
    Ok(())
}

/// Sibling temp path in the same directory (rename must not cross
/// filesystems to stay atomic).
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        ToOwned::to_owned,
    );
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Loads a trained model from `path`, verifying format version, parameter
/// names/shapes, and the integrity checksum.
pub fn load_model(path: &Path) -> DetectorResult<Aero> {
    // Read raw bytes, not a string: a garbage (non-UTF-8) file is corrupt
    // content, not an I/O failure, and must be classified as such.
    let bytes = std::fs::read(path)
        .map_err(|e| DetectorError::Io(format!("read {}: {e}", path.display())))?;
    let json = std::str::from_utf8(&bytes)
        .map_err(|e| DetectorError::Corrupt(format!("parse: not valid UTF-8: {e}")))?;
    // Probe the version before deserializing the full payload: an old or
    // future file whose schema drifted must still produce the version
    // diagnostic, not a field-level parse error.
    #[derive(serde::Deserialize)]
    struct VersionProbe {
        version: u32,
    }
    let probe: VersionProbe = serde_json::from_str(json)
        .map_err(|e| DetectorError::Corrupt(format!("parse: {e}")))?;
    match probe.version {
        FORMAT_VERSION => load_v3(json, path),
        LEGACY_VERSION => load_v2(json),
        other => {
            let hint = if other < LEGACY_VERSION {
                "re-train and save with this build, or migrate the file by loading \
                 it with the release that wrote it and re-saving"
            } else {
                "this file was written by a newer release — upgrade this build to load it"
            };
            Err(DetectorError::Corrupt(format!(
                "{} is model format version {other}, but this build reads versions \
                 {LEGACY_VERSION} (monolithic) and {FORMAT_VERSION} (backbone+deltas): {hint}",
                path.display(),
            )))
        }
    }
}

/// Loads a v3 (backbone + deltas) checkpoint: verifies the checksum, then
/// reassembles the detector through the same [`Aero::from_backbone`] path a
/// fleet uses — bitwise identical to the model that was saved.
fn load_v3(json: &str, path: &Path) -> DetectorResult<Aero> {
    let saved: SavedAero = serde_json::from_str(json)
        .map_err(|e| DetectorError::Corrupt(format!("parse: {e}")))?;
    let expect = payload_checksum(saved.num_variates, &saved.params, &saved.deltas);
    if expect != saved.checksum {
        return Err(DetectorError::Corrupt(format!(
            "checksum mismatch: file claims {:#018x}, payload hashes to {expect:#018x}",
            saved.checksum
        )));
    }
    if saved.deltas.len() != saved.num_variates {
        return Err(DetectorError::Corrupt(format!(
            "{} claims {} variates but carries {} star deltas",
            path.display(),
            saved.num_variates,
            saved.deltas.len()
        )));
    }
    let params: Vec<(String, Arc<aero_tensor::Matrix>)> = saved
        .params
        .into_iter()
        .map(|(name, rows, cols, values)| {
            let m = aero_tensor::Matrix::from_vec(rows, cols, values)
                .map_err(|e| DetectorError::Corrupt(format!("parameter {name}: {e}")))?;
            Ok((name, Arc::new(m)))
        })
        .collect::<DetectorResult<_>>()?;
    let backbone = BackboneSnapshot::from_parts(saved.config, params)
        .map_err(|e| DetectorError::Corrupt(format!("backbone: {e}")))?;
    let deltas: Vec<StarDelta> = saved
        .deltas
        .into_iter()
        .enumerate()
        .map(|(v, d)| {
            let adapter = match d.adapter {
                None => None,
                Some(a) => Some(
                    StarAdapter::from_parts(
                        a.omega, a.rank, a.p, a.q, a.bias, a.mean, a.var, a.updates,
                    )
                    .map_err(|e| corrupt_delta(v, &e))?,
                ),
            };
            Ok(StarDelta { scaler_min: d.scaler_min, scaler_range: d.scaler_range, adapter })
        })
        .collect::<DetectorResult<_>>()?;
    Aero::from_backbone(&backbone, &deltas)
        .map_err(|e| DetectorError::Corrupt(format!("reassemble: {e}")))
}

/// A star's delta failed structural validation: a typed [`Corrupt`]
/// (`DetectorError::Corrupt`) naming both format versions, so the operator
/// knows the v3 file is damaged while their v2 checkpoints stay loadable.
fn corrupt_delta(star: usize, cause: &DetectorError) -> DetectorError {
    DetectorError::Corrupt(format!(
        "star {star}'s adapter delta rejected while loading a version {FORMAT_VERSION} \
         checkpoint (version {LEGACY_VERSION} monolithic files carry no deltas and remain \
         loadable): {cause}"
    ))
}

/// Loads a legacy v2 (monolithic) checkpoint.
fn load_v2(json: &str) -> DetectorResult<Aero> {
    let saved: SavedAeroV2 = serde_json::from_str(json)
        .map_err(|e| DetectorError::Corrupt(format!("parse: {e}")))?;
    let expect = payload_checksum_v2(
        saved.num_variates,
        &saved.scaler_mins,
        &saved.scaler_ranges,
        &saved.params,
    );
    if expect != saved.checksum {
        return Err(DetectorError::Corrupt(format!(
            "checksum mismatch: file claims {:#018x}, payload hashes to {expect:#018x}",
            saved.checksum
        )));
    }

    let mut model = Aero::new(saved.config)?;
    model.build_modules(saved.num_variates)?;

    // Overwrite the deterministic initialization with the saved values.
    let store = model.store_mut();
    if store.len() != saved.params.len() {
        return Err(DetectorError::Corrupt(format!(
            "parameter count mismatch: store has {}, file has {}",
            store.len(),
            saved.params.len()
        )));
    }
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for (id, (name, rows, cols, values)) in ids.into_iter().zip(saved.params) {
        let current = store.get(id)?;
        if current.name() != name {
            return Err(DetectorError::Corrupt(format!(
                "parameter order mismatch: expected {}, file has {name}",
                current.name()
            )));
        }
        let m = aero_tensor::Matrix::from_vec(rows, cols, values)
            .map_err(|e| DetectorError::Corrupt(format!("parameter {name}: {e}")))?;
        store.set_value(id, m)?;
    }

    let scaler = MinMaxScaler::from_parts(saved.scaler_mins, saved.scaler_ranges)
        .map_err(|e| DetectorError::Corrupt(format!("scaler: {e}")))?;
    model.restore(scaler);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeroConfig;
    use crate::detector::Detector;
    use aero_datagen::SyntheticConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("aero_persist_{}_{name}", std::process::id()))
    }

    fn trained_model() -> (Aero, aero_timeseries::Dataset) {
        let ds = SyntheticConfig::tiny(500).build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 2;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&ds.train).unwrap();
        (model, ds)
    }

    #[test]
    fn save_load_roundtrips_scores() {
        let (mut model, ds) = trained_model();
        let original = model.score(&ds.test).unwrap();

        let path = tmp("roundtrip.json");
        save_model(&model, &path).unwrap();
        let mut loaded = load_model(&path).unwrap();
        assert!(loaded.is_trained());
        let restored = loaded.score(&ds.test).unwrap();
        assert_eq!(original, restored, "loaded model must score identically");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn adapter_heads_roundtrip_through_v3() {
        let ds = SyntheticConfig::tiny(500).build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 2;
        cfg.adapter_rank = 2;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&ds.train).unwrap();
        // Move star 1's head off identity so the delta actually carries state.
        for _ in 0..5 {
            model.adapt_star(1, &ds.test).unwrap();
        }
        assert!(!model.adapters().unwrap().head(1).unwrap().is_identity());
        let original = model.score(&ds.test).unwrap();

        let path = tmp("adapter_roundtrip.json");
        save_model(&model, &path).unwrap();
        let mut loaded = load_model(&path).unwrap();
        assert_eq!(
            model.adapters().unwrap(),
            loaded.adapters().unwrap(),
            "adapter heads must roundtrip exactly"
        );
        let restored = loaded.score(&ds.test).unwrap();
        assert_eq!(original, restored, "adapted model must score identically after reload");
        std::fs::remove_file(&path).ok();
    }

    /// The v2 writer, as the previous release shipped it (kept here so the
    /// legacy load path is tested against real v2 bytes, not a fixture that
    /// could drift).
    #[derive(serde::Serialize)]
    struct SavedAeroV2Out {
        version: u32,
        config: AeroConfig,
        num_variates: usize,
        scaler_mins: Vec<f32>,
        scaler_ranges: Vec<f32>,
        params: Vec<(String, usize, usize, Vec<f32>)>,
        checksum: u64,
    }

    fn write_v2(model: &Aero, path: &std::path::Path) {
        let params: Vec<(String, usize, usize, Vec<f32>)> = model
            .store()
            .iter()
            .map(|(_, p)| {
                let v = p.value();
                (p.name().to_string(), v.rows(), v.cols(), v.as_slice().to_vec())
            })
            .collect();
        let num_variates = model.scaler().mins().len();
        let checksum = payload_checksum_v2(
            num_variates,
            model.scaler().mins(),
            model.scaler().ranges(),
            &params,
        );
        let saved = SavedAeroV2Out {
            version: LEGACY_VERSION,
            config: model.config().clone(),
            num_variates,
            scaler_mins: model.scaler().mins().to_vec(),
            scaler_ranges: model.scaler().ranges().to_vec(),
            params,
            checksum,
        };
        std::fs::write(path, serde_json::to_string(&saved).unwrap()).unwrap();
    }

    #[test]
    fn v2_monolithic_file_still_loads() {
        // The v2→v3 migration path: a file written by the previous release
        // (monolithic layout, no `deltas`, no adapter config fields) must
        // load into this build and score bitwise identically — and saving
        // it back produces a v3 file.
        let (mut model, ds) = trained_model();
        let original = model.score(&ds.test).unwrap();

        let v2_path = tmp("legacy_v2.json");
        write_v2(&model, &v2_path);
        let mut loaded = load_model(&v2_path).unwrap();
        assert!(loaded.is_trained());
        assert_eq!(loaded.config().adapter_rank, 0, "v2 files predate adapters");
        let restored = loaded.score(&ds.test).unwrap();
        assert_eq!(original, restored, "v2 file must load bitwise");

        let v3_path = tmp("migrated_v3.json");
        save_model(&loaded, &v3_path).unwrap();
        let rewritten = std::fs::read_to_string(&v3_path).unwrap();
        assert!(rewritten.contains("\"version\":3"), "re-saved file must be v3");
        let mut migrated = load_model(&v3_path).unwrap();
        assert_eq!(original, migrated.score(&ds.test).unwrap());
        std::fs::remove_file(&v2_path).ok();
        std::fs::remove_file(&v3_path).ok();
    }

    #[test]
    fn corrupt_adapter_delta_rejected_naming_both_versions() {
        // A v3 file whose checksum is valid but whose star-delta payload is
        // structurally broken (truncated adapter weights — NaN can't be used
        // here because JSON renders it as null, which fails at parse before
        // the delta validator runs) must be rejected by the delta validator
        // with a typed Corrupt error that names both the v3 format and the
        // still-loadable v2 format.
        let ds = SyntheticConfig::tiny(500).build();
        let mut cfg = AeroConfig::tiny();
        cfg.max_epochs = 2;
        cfg.adapter_rank = 2;
        let mut model = Aero::new(cfg).unwrap();
        model.fit(&ds.train).unwrap();
        model.adapt_star(0, &ds.test).unwrap();

        // Rebuild the save payload by hand with star 0's `q` poisoned, and a
        // checksum computed over the *poisoned* bits so the corruption gate
        // that fires is the structural one, not the bit-flip one.
        let params: Vec<(String, usize, usize, Vec<f32>)> = model
            .store()
            .iter()
            .map(|(_, p)| {
                let v = p.value();
                (p.name().to_string(), v.rows(), v.cols(), v.as_slice().to_vec())
            })
            .collect();
        let num_variates = model.scaler().mins().len();
        let mut deltas: Vec<SavedDelta> = (0..num_variates)
            .map(|v| {
                let d = model.star_delta(v).unwrap();
                SavedDelta {
                    scaler_min: d.scaler_min,
                    scaler_range: d.scaler_range,
                    adapter: d.adapter.as_ref().map(saved_adapter),
                }
            })
            .collect();
        deltas[0].adapter.as_mut().unwrap().q.pop();
        let checksum = payload_checksum(num_variates, &params, &deltas);
        let saved = SavedAero {
            version: FORMAT_VERSION,
            config: model.config().clone(),
            num_variates,
            params,
            deltas,
            checksum,
        };
        let path = tmp("poisoned_delta.json");
        std::fs::write(&path, serde_json::to_string(&saved).unwrap()).unwrap();

        match load_model(&path) {
            Err(DetectorError::Corrupt(msg)) => {
                assert!(msg.contains("star 0"), "names the damaged star: {msg}");
                assert!(msg.contains("version 3"), "names the file's format: {msg}");
                assert!(msg.contains("version 2"), "names the legacy format: {msg}");
                assert!(msg.contains("shape mismatch"), "names the cause: {msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn untrained_model_refuses_to_save() {
        let model = Aero::new(AeroConfig::tiny()).unwrap();
        assert!(save_model(&model, &tmp("untrained.json")).is_err());
    }

    #[test]
    fn v1_file_rejected_with_migration_hint() {
        // A syntactically valid pre-checksum (version 1) file: the version
        // gate must fire before any payload validation and tell the operator
        // both the file's version and what to do about it.
        let path = tmp("v1.json");
        std::fs::write(
            &path,
            r#"{"version":1,"config":{},"num_variates":0,"scaler_mins":[],"scaler_ranges":[],"params":[],"checksum":0}"#,
        )
        .unwrap();
        match load_model(&path) {
            Err(DetectorError::Corrupt(msg)) => {
                assert!(msg.contains("version 1"), "names the file's version: {msg}");
                assert!(msg.contains("re-train"), "offers re-train: {msg}");
                assert!(msg.contains("migrate"), "offers migration: {msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_rejected_with_upgrade_hint() {
        let path = tmp("v99.json");
        std::fs::write(
            &path,
            r#"{"version":99,"config":{},"num_variates":0,"scaler_mins":[],"scaler_ranges":[],"params":[],"checksum":0}"#,
        )
        .unwrap();
        match load_model(&path) {
            Err(DetectorError::Corrupt(msg)) => {
                assert!(msg.contains("version 99"), "names the file's version: {msg}");
                assert!(msg.contains("newer release"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_header_rejected_as_corrupt() {
        // Binary junk that is not JSON at all — the parse gate, not the
        // version gate, must reject it, still as Corrupt (the file exists
        // and was readable; its *contents* are the problem).
        let path = tmp("garbage.bin");
        std::fs::write(&path, [0x7fu8, b'E', b'L', b'F', 0, 1, 2, 3, 0xff, 0xfe]).unwrap();
        match load_model(&path) {
            Err(DetectorError::Corrupt(msg)) => assert!(msg.contains("parse"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_file_rejected_as_corrupt() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(load_model(&path), Err(DetectorError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_model(Path::new("/definitely/not/here.json")),
            Err(DetectorError::Io(_))
        ));
    }

    #[test]
    fn save_does_not_leave_temp_files() {
        let (model, _) = trained_model();
        let path = tmp("clean.json");
        save_model(&model, &path).unwrap();
        let dir = path.parent().unwrap();
        let strays: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("aero_persist_") && n.ends_with(".tmp"))
            .collect();
        assert!(strays.is_empty(), "leftover temp files: {strays:?}");
        std::fs::remove_file(&path).ok();
    }
}
